"""repro: WCET and stack-usage verification by abstract interpretation.

A from-scratch reproduction of the system described in Heckmann &
Ferdinand, *Verifying Safety-Critical Timing and Memory-Usage Properties
of Embedded Software by Abstract Interpretation* (DATE 2005): the aiT
WCET analyzer pipeline (CFG reconstruction, value analysis, loop-bound
analysis, cache analysis, pipeline analysis, ILP path analysis) and
StackAnalyzer, targeting the KRISC embedded processor model.

Quickstart::

    from repro import assemble, analyze_wcet, analyze_stack

    program = assemble(SOURCE)
    result = analyze_wcet(program)
    print(result.wcet_cycles)
    print(analyze_stack(program).bound)
"""

__version__ = "1.0.0"

from .isa import Instruction, Opcode, Program, assemble, disassemble
from .lang import compile_program
from .sim import run_program
from .stack import analyze_stack, analyze_system_stack
from .verify import verify_bounds
from .wcet import analyze_wcet

__all__ = [
    "Instruction", "Opcode", "Program", "assemble", "disassemble",
    "compile_program", "run_program", "analyze_stack",
    "analyze_system_stack", "verify_bounds", "analyze_wcet",
    "__version__",
]
