"""StackAnalyzer: verified worst-case stack usage (paper Section 2).

"By concentrating on the value of the stack pointer during value
analysis, the tool can figure out how the stack increases and decreases
along the various control-flow paths."  The analysis walks every
reachable program point, takes the lower bound of the stack-pointer
interval, and reports ``stack_base - min(SP)`` — an upper bound on the
stack usage of *any* run, unlike testing which "cannot guarantee that
the maximum stack usage is ever observed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Type

from ..analysis.domain import AbstractValue
from ..analysis.interval import Interval
from ..analysis.transfer import transfer_instruction
from ..analysis.valueanalysis import ValueAnalysisResult, analyze_values
from ..cfg.builder import build_cfg
from ..cfg.expand import NodeId, expand_task
from ..isa.program import Program
from ..isa.registers import SP


class StackAnalysisError(ValueError):
    """The stack pointer escaped the analysable range (e.g. SP computed
    from unknown input), so no finite bound exists."""


@dataclass
class StackAnalysisResult:
    """Verified stack bound for one task."""

    program: Program
    bound: int                       # bytes, >= any run's usage
    worst_node: Optional[NodeId]     # where the minimum SP is reached
    per_function: Dict[str, int]     # deepest usage while in function
    overflows: bool                  # bound exceeds the reserved region

    @property
    def stack_capacity(self) -> int:
        return self.program.memory_map.stack_capacity()

    def summary(self) -> str:
        verdict = "OVERFLOW POSSIBLE" if self.overflows else "fits"
        return (f"worst-case stack usage: {self.bound} bytes of "
                f"{self.stack_capacity} reserved ({verdict})")


class StackAnalyzer:
    """Whole-task stack usage analysis built on value analysis."""

    def __init__(self, program: Program,
                 domain: Type[AbstractValue] = Interval,
                 values: Optional[ValueAnalysisResult] = None,
                 register_ranges: Optional[
                     Dict[int, Tuple[int, int]]] = None,
                 indirect_targets: Optional[
                     Dict[int, Sequence[int]]] = None):
        self.program = program
        if values is None:
            graph = expand_task(build_cfg(program,
                                          indirect_targets=indirect_targets))
            values = analyze_values(graph, domain=domain,
                                    register_ranges=register_ranges)
        self.values = values

    def analyze(self) -> StackAnalysisResult:
        base = self.program.memory_map.stack_base
        graph = self.values.graph
        min_sp = base
        worst_node: Optional[NodeId] = None
        per_function: Dict[str, int] = {}

        for node in graph.nodes():
            state = self.values.fixpoint.state_at(node)
            if state is None or state.is_bottom():
                continue
            node_min = self._min_sp_in_block(node, state)
            if node_min is None:
                raise StackAnalysisError(
                    f"stack pointer unbounded in block {node!r}")
            if node_min < min_sp:
                min_sp = node_min
                worst_node = node
            name = graph.function_name(node)
            usage = base - node_min
            if usage > per_function.get(name, 0):
                per_function[name] = usage

        bound = base - min_sp
        return StackAnalysisResult(
            program=self.program,
            bound=bound,
            worst_node=worst_node,
            per_function=per_function,
            overflows=bound > self.program.memory_map.stack_capacity())

    def _min_sp_in_block(self, node: NodeId, entry_state) -> Optional[int]:
        """Minimum SP lower bound at any point within the block."""
        state = entry_state.copy()
        lo, _hi = state.get(SP).signed_bounds()
        minimum = lo
        if state.get(SP).is_top():
            return None
        for instr in self.values.graph.blocks[node]:
            state = transfer_instruction(state, instr)
            if state.is_bottom():
                break
            sp = state.get(SP)
            if sp.is_top():
                return None
            lo, _hi = sp.signed_bounds()
            minimum = min(minimum, lo)
        return minimum


def analyze_stack(program: Program,
                  register_ranges: Optional[
                      Dict[int, Tuple[int, int]]] = None,
                  indirect_targets: Optional[
                      Dict[int, Sequence[int]]] = None
                  ) -> StackAnalysisResult:
    """Run StackAnalyzer on a task binary."""
    return StackAnalyzer(program, register_ranges=register_ranges,
                         indirect_targets=indirect_targets).analyze()
