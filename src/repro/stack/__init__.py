"""StackAnalyzer and OSEK system-level stack analysis (Section 2)."""

from .analyzer import (StackAnalysisError, StackAnalysisResult,
                       StackAnalyzer, analyze_stack)
from .osek import (OSEKStackAnalysis, SystemStackResult, TaskSpec,
                   analyze_system_stack)

__all__ = [
    "StackAnalysisError", "StackAnalysisResult", "StackAnalyzer",
    "analyze_stack",
    "OSEKStackAnalysis", "SystemStackResult", "TaskSpec",
    "analyze_system_stack",
]
