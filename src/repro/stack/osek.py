"""System-level stack analysis for OSEK/VDX-style task systems.

Reference [3] of the paper (Janz, "Das OSEK Echtzeitbetriebssystem,
Stackverwaltung und statische Stackbedarfsanalyse") describes how the
per-task worst-case stack bounds from StackAnalyzer combine into a
bound for *all* tasks sharing one stack on an Electronic Control Unit:
under fixed-priority preemptive scheduling a task can only be preempted
by strictly higher-priority work, so the worst case is the costliest
*preemption chain*, not the sum of all tasks.

The model supports OSEK's internal resources via *preemption
thresholds*: task ``U`` can preempt task ``T`` iff
``U.priority > T.threshold`` (``threshold`` defaults to the task's own
priority; a group of cooperating tasks shares a threshold).  ISRs are
ordinary high-priority entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TaskSpec:
    """One task (or ISR) of the ECU."""

    name: str
    stack_bound: int              # bytes, from StackAnalyzer
    priority: int                 # higher = more urgent
    threshold: Optional[int] = None   # preemption threshold (>= priority)

    @property
    def effective_threshold(self) -> int:
        return self.priority if self.threshold is None else self.threshold

    def __post_init__(self):
        if self.stack_bound < 0:
            raise ValueError("stack_bound must be non-negative")
        if self.threshold is not None and self.threshold < self.priority:
            raise ValueError(
                f"threshold of {self.name} below its priority")


@dataclass
class SystemStackResult:
    """Whole-system bound plus the witness preemption chain."""

    bound: int
    chain: List[TaskSpec]
    naive_sum: int                 # Σ all tasks (no preemption analysis)
    kernel_overhead: int

    @property
    def savings(self) -> int:
        """Bytes saved versus reserving the naive sum."""
        return self.naive_sum - self.bound

    def summary(self) -> str:
        names = " -> ".join(task.name for task in self.chain)
        return (f"system stack bound: {self.bound} bytes "
                f"(chain: {names}; naive sum {self.naive_sum})")


class OSEKStackAnalysis:
    """Worst-case shared-stack usage of a preemptive task system."""

    def __init__(self, tasks: Sequence[TaskSpec],
                 kernel_overhead_per_preemption: int = 0):
        if not tasks:
            raise ValueError("task set is empty")
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise ValueError("duplicate task names")
        self.tasks = sorted(tasks, key=lambda task: task.priority)
        self.kernel_overhead = kernel_overhead_per_preemption

    def analyze(self) -> SystemStackResult:
        """Longest preemption chain by dynamic programming.

        Chains are sequences ``t1, t2, ...`` with
        ``priority(t_{i+1}) > threshold(t_i)``; since thresholds are at
        least priorities, chains are strictly priority-increasing, so a
        DP over tasks in priority order is exact.
        """
        n = len(self.tasks)
        best_total: List[int] = [0] * n
        best_prev: List[Optional[int]] = [None] * n
        for i, task in enumerate(self.tasks):
            best_total[i] = task.stack_bound
            for j in range(i):
                lower = self.tasks[j]
                if task.priority > lower.effective_threshold:
                    candidate = best_total[j] + task.stack_bound \
                        + self.kernel_overhead
                    if candidate > best_total[i]:
                        best_total[i] = candidate
                        best_prev[i] = j
        best_index = max(range(n), key=lambda i: best_total[i])
        chain: List[TaskSpec] = []
        cursor: Optional[int] = best_index
        while cursor is not None:
            chain.append(self.tasks[cursor])
            cursor = best_prev[cursor]
        chain.reverse()
        # The naive reference (every task's stack simply summed) must
        # charge kernel overhead under the *same* preemption-
        # eligibility rule as the chains above: a task contributes a
        # preemption only if it can actually preempt some other task
        # (priority above that task's threshold).  Charging a flat
        # (n-1) would overstate the naive bound — and so the reported
        # savings — for threshold-grouped sets where nothing nests.
        preemptors = sum(
            1 for task in self.tasks
            if any(task.priority > other.effective_threshold
                   for other in self.tasks if other is not task))
        naive = sum(task.stack_bound for task in self.tasks) + \
            self.kernel_overhead * min(preemptors, len(self.tasks) - 1)
        return SystemStackResult(
            bound=best_total[best_index],
            chain=chain,
            naive_sum=naive,
            kernel_overhead=self.kernel_overhead)


def analyze_system_stack(tasks: Sequence[TaskSpec],
                         kernel_overhead_per_preemption: int = 0
                         ) -> SystemStackResult:
    """Bound the shared stack of an OSEK-style task system (ref [3])."""
    analysis = OSEKStackAnalysis(tasks, kernel_overhead_per_preemption)
    return analysis.analyze()
