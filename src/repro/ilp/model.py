"""Linear/integer program model objects.

The paper combines abstract interpretation "with ILP (Integer Linear
Programming) techniques to safely predict the worst-case execution time
and a corresponding worst-case execution path" (Section 3).  This
module is the model layer; :mod:`repro.ilp.simplex` and
:mod:`repro.ilp.branchbound` solve it, with ``scipy.optimize.linprog``
available as an independent cross-check in the tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass
class Variable:
    """A decision variable with bounds."""

    name: str
    index: int
    lower: float = 0.0
    upper: Optional[float] = None   # None = unbounded above
    is_integer: bool = True


@dataclass
class Constraint:
    """``sum(coeff * var) <sense> rhs``."""

    coefficients: Dict[int, float]
    sense: Sense
    rhs: float
    name: str = ""


class LinearProgram:
    """A (mixed-integer) linear program: maximise ``objective``."""

    def __init__(self, name: str = "lp"):
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective: Dict[int, float] = {}
        self._by_name: Dict[str, Variable] = {}

    # -- Building -----------------------------------------------------------

    def add_variable(self, name: str, lower: float = 0.0,
                     upper: Optional[float] = None,
                     is_integer: bool = True) -> Variable:
        if name in self._by_name:
            raise ValueError(f"duplicate variable {name!r}")
        variable = Variable(name, len(self.variables), lower, upper,
                            is_integer)
        self.variables.append(variable)
        self._by_name[name] = variable
        return variable

    def variable(self, name: str) -> Variable:
        return self._by_name[name]

    def add_constraint(self, coefficients: Dict[int, float], sense: Sense,
                       rhs: float, name: str = "") -> None:
        clean = {index: value for index, value in coefficients.items()
                 if value != 0.0}
        self.constraints.append(Constraint(clean, sense, rhs, name))

    def set_objective_coefficient(self, variable: Variable,
                                  value: float) -> None:
        if value:
            self.objective[variable.index] = \
                self.objective.get(variable.index, 0.0) + value

    # -- Introspection ----------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def __repr__(self) -> str:
        return (f"LinearProgram({self.name!r}, {self.num_variables} vars, "
                f"{self.num_constraints} constraints)")


@dataclass
class Solution:
    """Solver output."""

    status: str                       # "optimal" | "infeasible" | "unbounded"
    objective: Optional[float] = None
    values: Dict[int, float] = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    def value_of(self, variable: Variable) -> float:
        return self.values.get(variable.index, 0.0)

    def is_integral(self, tolerance: float = 1e-6) -> bool:
        return all(abs(v - round(v)) <= tolerance
                   for v in self.values.values())


class InfeasibleError(ValueError):
    """The program admits no feasible point."""


class UnboundedError(ValueError):
    """The objective is unbounded above (for IPET: a loop without a
    bound constraint)."""
