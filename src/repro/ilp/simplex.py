"""LP solving entry point: presolve + sparse revised simplex.

``solve_lp`` keeps the historical signature (one
:class:`~repro.ilp.model.LinearProgram` in, one
:class:`~repro.ilp.model.Solution` out) but now runs the staged
pipeline::

    presolve  ->  CoreLP (equality form, native bounds)  ->
    bounded-variable revised simplex  ->  postsolve

The dense two-phase tableau this replaced lives on in
:mod:`repro.ilp.dense` as the differential-test oracle.
"""

from __future__ import annotations

from typing import Optional

from .model import LinearProgram, Solution
from .presolve import PresolvedLP, presolve
from .revised import CoreLP, RevisedSimplex
from .stats import ILPStats


def solve_lp(program: LinearProgram,
             stats: Optional[ILPStats] = None,
             bland_threshold: int = 32) -> Solution:
    """Solve the LP relaxation of ``program`` (maximisation).

    ``stats`` accumulates solver counters across calls;
    ``bland_threshold`` is the number of consecutive degenerate pivots
    tolerated before pricing falls back to Bland's rule (0 = always
    Bland, the fully-guarded mode the cycling regression test uses).
    """
    pre = presolve(program, stats)
    if pre.status == "infeasible":
        return Solution("infeasible")
    if pre.num_rows == 0:
        if pre.unbounded_pending:
            return Solution("unbounded")
        return pre.postsolve(_EMPTY)

    core = CoreLP(pre)
    simplex = RevisedSimplex(core, stats, bland_threshold=bland_threshold)
    status = simplex.solve_two_phase()
    if status == "infeasible":
        return Solution("infeasible")
    if status == "unbounded" or pre.unbounded_pending:
        return Solution("unbounded")
    return pre.postsolve(simplex.structural_values())


_EMPTY = ()
