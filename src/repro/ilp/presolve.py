"""LP presolve: shrink the program before the simplex ever factorises.

IPET programs carry a lot of structure the solver should not pay for:
``infeasible``/``unreachable`` rows are equality-to-zero singletons that
pin a variable, pinned variables cascade through the flow-conservation
rows, and bound-implied rows (e.g. a loop constraint dominated by
variable bounds) are redundant.  This module applies the classic
reductions to a fixpoint:

* empty rows           — drop (or report infeasibility),
* singleton rows       — convert to a variable bound, drop the row,
* doubleton equalities — substitute one variable by the other (IPET
  flow rows alias every single-entry edge count to its node count),
* fixed variables      — substitute into rows and objective,
* empty columns        — set to the bound the objective prefers,
* redundant rows       — drop rows implied by the variable bounds.

Every reduction is exact: the reduced LP has the same optimum value as
the input, and :meth:`PresolvedLP.postsolve` reconstructs a full
solution vector.  Bounds, not rows, carry the eliminated facts — the
revised simplex handles bounds natively, so each removed row shrinks
the basis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .model import LinearProgram, Sense, Solution
from .stats import ILPStats

_TOL = 1e-9
_FEAS_TOL = 1e-7


@dataclass
class PresolvedLP:
    """The reduced program plus everything needed to undo the reduction."""

    program: LinearProgram
    #: "infeasible" if presolve proved infeasibility, else None.
    status: Optional[str]
    #: An empty objective-improving column is unbounded above; the LP is
    #: unbounded *if* the rest of the program is feasible.
    unbounded_pending: bool
    #: Original indices of the variables that kept a column.
    kept: List[int]
    #: Rows over core column ids: (coefficients, sense, rhs).
    rows: List[Tuple[Dict[int, float], Sense, float]]
    lower: np.ndarray
    upper: np.ndarray
    is_integer: np.ndarray
    objective: np.ndarray
    #: Values of eliminated variables, by original index.
    fixed_values: Dict[int, float] = field(default_factory=dict)
    #: Doubleton substitutions ``x_i = alpha + beta * x_j`` in the
    #: order applied; postsolve replays them in reverse.
    substitutions: List[Tuple[int, float, float, int]] = \
        field(default_factory=list)
    #: True if an *integer* variable was pinned to a fractional value
    #: (the LP is still valid; the ILP is infeasible).
    fractional_int_fix: bool = False

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_cols(self) -> int:
        return len(self.kept)

    def postsolve(self, core_values: np.ndarray) -> Solution:
        """Expand core-column values into a full optimal solution."""
        values: Dict[int, float] = dict(self.fixed_values)
        for col, orig in enumerate(self.kept):
            values[orig] = float(core_values[col])
        for idx, alpha, beta, other in reversed(self.substitutions):
            values[idx] = alpha + beta * values[other]
        objective = sum(coeff * values.get(idx, 0.0)
                        for idx, coeff in self.program.objective.items())
        return Solution("optimal", float(objective), values)


def _substitute_doubleton(i, rows, col_rows, lower, upper, is_integer,
                          objective, integral, substitutions,
                          round_bounds) -> bool:
    """Eliminate one variable of the doubleton equality ``rows[i]``
    (``a x_e + b x_k = rhs``) as ``x_e = alpha + beta x_k``.

    Only coefficients of magnitude one qualify for elimination (IPET
    rows always are; it also keeps the arithmetic exact), and under
    ``integral`` the relation must map integers to integers.  Returns
    False if no variable qualifies.  The eliminated variable's bounds
    are transferred to the keeper; the caller checks the transfer for
    infeasibility.
    """
    coeffs, _sense, rhs = rows[i]
    (v1, a1), (v2, a2) = coeffs.items()

    def eliminable(idx, coeff, other_idx, other_coeff):
        if abs(abs(coeff) - 1.0) > _TOL:
            return False
        if integral and is_integer[idx]:
            alpha = rhs / coeff
            beta = -other_coeff / coeff
            if not is_integer[other_idx]:
                return False
            if abs(alpha - round(alpha)) > _TOL or \
                    abs(beta - round(beta)) > _TOL:
                return False
        return True

    candidates = [(idx, coeff, other)
                  for idx, coeff, other, oc
                  in ((v1, a1, v2, a2), (v2, a2, v1, a1))
                  if eliminable(idx, coeff, other, oc)]
    if not candidates:
        return False
    # Eliminate the variable that appears in fewer rows (less fill-in);
    # ties break on the smaller index for determinism.
    candidates.sort(key=lambda t: (len(col_rows.get(t[0], ())), t[0]))
    elim, coeff, keep = candidates[0]
    other_coeff = coeffs[keep]
    alpha = rhs / coeff
    beta = -other_coeff / coeff

    # Transfer the eliminated variable's bounds to the keeper.
    if beta > 0:
        keep_lo = (lower[elim] - alpha) / beta
        keep_hi = (upper[elim] - alpha) / beta
    else:
        keep_lo = (upper[elim] - alpha) / beta
        keep_hi = (lower[elim] - alpha) / beta
    lower[keep] = max(lower[keep], keep_lo)
    upper[keep] = min(upper[keep], keep_hi)
    round_bounds(keep)

    # Replace x_elim in every other row that mentions it.
    for r in col_rows.get(elim, ()):
        row = rows[r]
        if r == i or row is None or elim not in row[0]:
            continue
        rcoeffs = row[0]
        factor = rcoeffs.pop(elim)
        row[2] -= factor * alpha
        new_coeff = rcoeffs.get(keep, 0.0) + factor * beta
        if abs(new_coeff) <= 1e-12:
            rcoeffs.pop(keep, None)
        else:
            rcoeffs[keep] = new_coeff
            col_rows.setdefault(keep, set()).add(r)

    # The constant term c_elim * alpha needs no bookkeeping: objective
    # values are always recomputed from the original program by
    # postsolve, which replays the substitution.
    if objective[elim]:
        objective[keep] += objective[elim] * beta
        objective[elim] = 0.0

    substitutions.append((elim, alpha, beta, keep))
    rows[i] = None
    return True


def presolve(program: LinearProgram,
             stats: Optional[ILPStats] = None,
             integral: bool = False) -> PresolvedLP:
    """Reduce ``program``; exact — optimum value is preserved.

    With ``integral=True`` (the ILP entry point) bounds derived for
    integer variables are rounded to the nearest contained integer —
    exact for the *integer* program, but a strict tightening of the LP
    relaxation, so the pure-LP callers must leave it off.
    """
    n = program.num_variables
    lower = np.array([v.lower for v in program.variables], dtype=float)
    upper = np.array([np.inf if v.upper is None else v.upper
                      for v in program.variables], dtype=float)
    is_integer = np.array([v.is_integer for v in program.variables],
                          dtype=bool)

    def round_bounds(idx: int) -> None:
        if integral and is_integer[idx]:
            lower[idx] = np.ceil(lower[idx] - 1e-6)
            if np.isfinite(upper[idx]):
                upper[idx] = np.floor(upper[idx] + 1e-6)

    for idx in range(n):
        round_bounds(idx)
    objective = np.zeros(n)
    for idx, coeff in program.objective.items():
        objective[idx] = coeff

    rows: List[Optional[List]] = [
        [dict(c.coefficients), c.sense, float(c.rhs)]
        for c in program.constraints]
    fixed: Dict[int, float] = {}
    substitutions: List[Tuple[int, float, float, int]] = []
    substituted: set = set()
    rows_removed = 0
    infeasible = False

    # Which rows currently mention each variable (kept as a superset:
    # entries are validated against the live row before use).
    col_rows: Dict[int, set] = {}
    for i, row in enumerate(rows):
        for idx in row[0]:
            col_rows.setdefault(idx, set()).add(i)

    def fix(idx: int, value: float) -> None:
        fixed[idx] = value
        lower[idx] = upper[idx] = value

    changed = True
    while changed and not infeasible:
        changed = False

        # Substitute newly fixed variables into the surviving rows.
        pinned = {idx for idx in range(n)
                  if idx not in fixed and idx not in substituted
                  and upper[idx] - lower[idx] <= _TOL}
        for idx in sorted(pinned):
            if lower[idx] > upper[idx] + _TOL:
                infeasible = True
                break
            fix(idx, lower[idx])
            changed = True
        if infeasible:
            break
        if pinned:
            for row in rows:
                if row is None:
                    continue
                coeffs, _sense, _rhs = row
                for idx in list(coeffs):
                    if idx in fixed:
                        row[2] -= coeffs.pop(idx) * fixed[idx]

        for i, row in enumerate(rows):
            if row is None:
                continue
            coeffs, sense, rhs = row

            if not coeffs:                        # empty row
                sat = (abs(rhs) <= _FEAS_TOL if sense is Sense.EQ
                       else rhs >= -_FEAS_TOL if sense is Sense.LE
                       else rhs <= _FEAS_TOL)
                if not sat:
                    infeasible = True
                    break
                rows[i] = None
                rows_removed += 1
                changed = True
                continue

            if len(coeffs) == 1:                  # singleton row -> bound
                (idx, a), = coeffs.items()
                bound = rhs / a
                if sense is Sense.EQ:
                    if bound < lower[idx] - _FEAS_TOL or \
                            bound > upper[idx] + _FEAS_TOL:
                        infeasible = True
                        break
                    if integral and is_integer[idx] and \
                            abs(bound - round(bound)) > 1e-6:
                        infeasible = True
                        break
                    lower[idx] = upper[idx] = bound
                elif (sense is Sense.LE) == (a > 0):   # a*x <= rhs, a>0
                    upper[idx] = min(upper[idx], bound)
                    round_bounds(idx)
                else:
                    lower[idx] = max(lower[idx], bound)
                    round_bounds(idx)
                if lower[idx] > upper[idx] + _FEAS_TOL:
                    infeasible = True
                    break
                rows[i] = None
                rows_removed += 1
                changed = True
                continue

            if sense is Sense.EQ and len(coeffs) == 2:
                if _substitute_doubleton(
                        i, rows, col_rows, lower, upper, is_integer,
                        objective, integral, substitutions, round_bounds):
                    substituted.add(substitutions[-1][0])
                    rows_removed += 1
                    changed = True
                    if lower[substitutions[-1][3]] > \
                            upper[substitutions[-1][3]] + _FEAS_TOL:
                        infeasible = True
                        break
                    continue

            # Bound-implied (redundant) or bound-contradicted rows.
            min_act = max_act = 0.0
            for idx, a in coeffs.items():
                if a > 0:
                    min_act += a * lower[idx]
                    max_act += a * upper[idx]
                else:
                    min_act += a * upper[idx]
                    max_act += a * lower[idx]
            if sense is Sense.LE:
                if min_act > rhs + _FEAS_TOL:
                    infeasible = True
                    break
                if max_act <= rhs + _TOL:
                    rows[i] = None
                    rows_removed += 1
                    changed = True
            elif sense is Sense.GE:
                if max_act < rhs - _FEAS_TOL:
                    infeasible = True
                    break
                if min_act >= rhs - _TOL:
                    rows[i] = None
                    rows_removed += 1
                    changed = True
            else:
                if min_act > rhs + _FEAS_TOL or max_act < rhs - _FEAS_TOL:
                    infeasible = True
                    break

    alive = [row for row in rows if row is not None]
    referenced = set()
    for coeffs, _sense, _rhs in alive:
        referenced.update(coeffs)

    # Empty columns: pick the bound the objective prefers.
    unbounded_pending = False
    fractional_int_fix = False
    for idx in range(n):
        if idx in fixed or idx in referenced or idx in substituted:
            continue
        coeff = objective[idx]
        if coeff > _TOL and np.isinf(upper[idx]):
            unbounded_pending = True
            fixed[idx] = lower[idx]
        elif coeff > _TOL:
            fixed[idx] = upper[idx]
        else:
            fixed[idx] = lower[idx]

    for idx, value in fixed.items():
        if is_integer[idx] and abs(value - round(value)) > 1e-6:
            fractional_int_fix = True

    kept = sorted(referenced)
    core_of = {orig: col for col, orig in enumerate(kept)}
    core_rows = [({core_of[idx]: a for idx, a in coeffs.items()},
                  sense, rhs) for coeffs, sense, rhs in alive]

    if stats is not None:
        stats.presolve_rows_removed += rows_removed
        stats.presolve_cols_removed += n - len(kept)

    return PresolvedLP(
        program=program,
        status="infeasible" if infeasible else None,
        unbounded_pending=unbounded_pending,
        kept=kept,
        rows=core_rows,
        lower=lower[kept] if kept else np.zeros(0),
        upper=upper[kept] if kept else np.zeros(0),
        is_integer=is_integer[kept] if kept else np.zeros(0, dtype=bool),
        objective=objective[kept] if kept else np.zeros(0),
        fixed_values=fixed,
        substitutions=substitutions,
        fractional_int_fix=fractional_int_fix)
