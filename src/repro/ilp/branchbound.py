"""Branch-and-bound integer programming on top of the simplex.

IPET relaxations are network-flow-like and usually integral; when they
are not, branch and bound recovers the exact integer optimum.  Because
IPET *maximises*, any LP relaxation value is itself a sound WCET bound,
so the solver can also be used in relaxation-only mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .model import LinearProgram, Sense, Solution
from .simplex import solve_lp

_INT_TOLERANCE = 1e-6


@dataclass
class BranchStats:
    """Search statistics for diagnostics."""

    nodes_explored: int = 0
    depth_reached: int = 0


def solve_ilp(program: LinearProgram, max_nodes: int = 10_000
              ) -> Tuple[Solution, BranchStats]:
    """Maximise ``program`` with integrality on its integer variables.

    Depth-first branch and bound with best-bound pruning.  Raises
    ``RuntimeError`` if the node budget is exhausted (callers can then
    fall back to the relaxation bound, which is sound for WCET).
    """
    stats = BranchStats()
    root = solve_lp(program)
    if not root.is_optimal:
        return root, stats
    incumbent: Optional[Solution] = None
    # Each stack entry: list of extra bound constraints (var, sense, rhs).
    stack: List[List[Tuple[int, Sense, float]]] = [[]]
    while stack:
        extra = stack.pop()
        stats.nodes_explored += 1
        stats.depth_reached = max(stats.depth_reached, len(extra))
        if stats.nodes_explored > max_nodes:
            raise RuntimeError("branch-and-bound node budget exhausted")
        relaxed = _solve_with_extra(program, extra)
        if not relaxed.is_optimal:
            continue
        if incumbent is not None and \
                relaxed.objective <= incumbent.objective + 1e-9:
            continue   # cannot beat the incumbent
        fractional = _most_fractional(program, relaxed)
        if fractional is None:
            rounded = Solution(
                "optimal", relaxed.objective,
                {k: round(v) if program.variables[k].is_integer else v
                 for k, v in relaxed.values.items()})
            incumbent = rounded
            continue
        index, value = fractional
        stack.append(extra + [(index, Sense.GE, math.ceil(value))])
        stack.append(extra + [(index, Sense.LE, math.floor(value))])
    if incumbent is None:
        return Solution("infeasible"), stats
    return incumbent, stats


def _solve_with_extra(program: LinearProgram,
                      extra: List[Tuple[int, Sense, float]]) -> Solution:
    if not extra:
        return solve_lp(program)
    from .model import Constraint
    clone = LinearProgram(program.name)
    clone.variables = program.variables
    clone.objective = program.objective
    clone._by_name = program._by_name
    clone.constraints = list(program.constraints) + [
        Constraint({index: 1.0}, sense, rhs, "branch")
        for index, sense, rhs in extra]
    return solve_lp(clone)


def _most_fractional(program: LinearProgram,
                     solution: Solution) -> Optional[Tuple[int, float]]:
    best: Optional[Tuple[int, float]] = None
    best_score = _INT_TOLERANCE
    for variable in program.variables:
        if not variable.is_integer:
            continue
        value = solution.values.get(variable.index, 0.0)
        score = abs(value - round(value))
        if score > best_score:
            best_score = score
            best = (variable.index, value)
    return best
