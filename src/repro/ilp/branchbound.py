"""Branch-and-bound integer programming on top of the revised simplex.

IPET relaxations are network-flow-like and usually integral; when they
are not, branch and bound recovers the exact integer optimum.  Because
IPET *maximises*, any LP relaxation value is itself a sound WCET bound,
so the solver can also be used in relaxation-only mode.

Branching is on *variable bounds*, which the bounded-variable revised
simplex handles natively: a child node tightens one bound, the parent's
optimal basis stays dual-feasible, and the node is re-optimised by a
handful of dual simplex pivots from the parent basis (a warm start)
instead of a two-phase cold solve.  The parent basis is snapshotted
once and shared by both children; nodes whose dual re-optimisation
stalls numerically fall back to a cold solve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .model import LinearProgram, Solution
from .presolve import presolve
from .revised import CoreLP, RevisedSimplex
from .stats import ILPStats

_INT_TOLERANCE = 1e-6


@dataclass
class BranchStats:
    """Search statistics for diagnostics."""

    nodes_explored: int = 0
    depth_reached: int = 0


def solve_ilp(program: LinearProgram, max_nodes: int = 10_000,
              stats: Optional[ILPStats] = None
              ) -> Tuple[Solution, BranchStats]:
    """Maximise ``program`` with integrality on its integer variables.

    Depth-first branch and bound with best-bound pruning.  Raises
    ``RuntimeError`` if the node budget is exhausted (callers can then
    fall back to the relaxation bound, which is sound for WCET).
    """
    stats = stats if stats is not None else ILPStats()
    bstats = BranchStats()

    pre = presolve(program, stats, integral=True)
    if pre.status == "infeasible":
        return Solution("infeasible"), bstats
    if pre.num_rows == 0:
        if pre.unbounded_pending:
            return Solution("unbounded"), bstats
        if pre.fractional_int_fix:
            return Solution("infeasible"), bstats
        bstats.nodes_explored = 1
        stats.bb_nodes += 1
        return _rounded(program, pre.postsolve(())), bstats

    core = CoreLP(pre)
    simplex = RevisedSimplex(core, stats)
    status = simplex.solve_two_phase()
    stats.cold_solves += 1
    if status != "optimal":
        return Solution(status), bstats
    if pre.unbounded_pending:
        return Solution("unbounded"), bstats
    if pre.fractional_int_fix:
        return Solution("infeasible"), bstats

    int_cols = np.flatnonzero(pre.is_integer)

    incumbent_obj: Optional[float] = None
    incumbent_vals: Optional[np.ndarray] = None

    # Each node: cumulative original-space bound overrides for branched
    # columns, the parent's basis snapshot (None = root, already solved
    # in ``simplex``), and the branching depth.
    Node = Tuple[Dict[int, Tuple[float, float]], Optional[tuple], int]
    stack = [({}, None, 0)]  # type: list[Node]

    while stack:
        delta, snap, depth = stack.pop()
        bstats.nodes_explored += 1
        stats.bb_nodes += 1
        bstats.depth_reached = max(bstats.depth_reached, depth)
        if bstats.nodes_explored > max_nodes:
            raise RuntimeError("branch-and-bound node budget exhausted")

        if snap is None:
            solved = True             # root: solved above
        else:
            simplex.restore(snap)
            for col, (lo, hi) in delta.items():
                clo, chi = core.set_structural_bounds(col, lo, hi)
                simplex.lower[col] = clo
                simplex.upper[col] = chi
            outcome = simplex.reoptimize_dual()
            if outcome == "fallback":
                simplex = RevisedSimplex(core, stats)
                for col, (lo, hi) in delta.items():
                    clo, chi = core.set_structural_bounds(col, lo, hi)
                    simplex.lower[col] = clo
                    simplex.upper[col] = chi
                outcome = simplex.solve_two_phase()
                stats.cold_solves += 1
            else:
                stats.warm_start_hits += 1
            solved = outcome == "optimal"
        if not solved:
            continue                  # infeasible subtree

        values = simplex.structural_values()
        # Full-program objective (postsolve replays presolve's variable
        # eliminations, so every folded-out term is accounted exactly).
        objective = pre.postsolve(values).objective
        if incumbent_obj is not None and \
                objective <= incumbent_obj + 1e-9:
            continue                  # cannot beat the incumbent

        fractional = _most_fractional(int_cols, values)
        if fractional is None:
            incumbent_obj = objective
            incumbent_vals = values.copy()
            continue
        col, value = fractional
        cur_lo, cur_hi = delta.get(
            col, (float(pre.lower[col]), float(pre.upper[col])))
        parent_snap = simplex.snapshot()
        stack.append(({**delta, col: (float(math.ceil(value)), cur_hi)},
                      parent_snap, depth + 1))
        stack.append(({**delta, col: (cur_lo, float(math.floor(value)))},
                      parent_snap, depth + 1))

    if incumbent_vals is None:
        return Solution("infeasible"), bstats
    solution = pre.postsolve(incumbent_vals)
    return Solution("optimal", incumbent_obj,
                    _rounded(program, solution).values), bstats


def _rounded(program: LinearProgram, solution: Solution) -> Solution:
    values = {k: float(round(v)) if program.variables[k].is_integer else v
              for k, v in solution.values.items()}
    return Solution(solution.status, solution.objective, values)


def _most_fractional(int_cols: np.ndarray,
                     values: np.ndarray) -> Optional[Tuple[int, float]]:
    best: Optional[Tuple[int, float]] = None
    best_score = _INT_TOLERANCE
    for col in int_cols:
        value = float(values[col])
        score = abs(value - round(value))
        if score > best_score:
            best_score = score
            best = (int(col), value)
    return best
