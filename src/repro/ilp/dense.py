"""Dense two-phase primal simplex (reference implementation).

The original from-scratch LP solver: Bland's anti-cycling rule on a
dense numpy tableau whose last column is the right-hand side, with
variable upper bounds expanded into extra constraint rows.  Superseded
on the hot path by the sparse revised simplex
(:mod:`repro.ilp.revised`), but kept as an independent oracle — the
differential tests solve every IPET program with both engines and
require the optima to agree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .model import LinearProgram, Sense, Solution

_EPS = 1e-9


def solve_lp_dense(program: LinearProgram) -> Solution:
    """Solve the LP relaxation of ``program`` (maximisation)."""
    a, b, c, num_original, shifts, objective_shift = \
        _to_standard_form(program)
    m, total = a.shape

    if m == 0:
        return _solve_unconstrained(program, shifts, objective_shift)

    # Phase 1: minimise the sum of artificial variables.
    tableau = np.hstack([a, np.eye(m), b.reshape(-1, 1)])
    basis = list(range(total, total + m))
    phase1_cost = np.concatenate([np.zeros(total), np.ones(m)])
    status = _iterate(tableau, basis, phase1_cost)
    if status != "optimal":  # pragma: no cover - phase 1 is bounded
        return Solution("infeasible")
    if float(phase1_cost[basis] @ tableau[:, -1]) > 1e-7:
        return Solution("infeasible")

    # Drive artificials out of the basis; drop redundant rows.
    keep_rows = []
    for row in range(len(basis)):
        if basis[row] < total:
            keep_rows.append(row)
            continue
        pivot_col = next((j for j in range(total)
                          if abs(tableau[row, j]) > _EPS), None)
        if pivot_col is None:
            continue  # redundant constraint
        _pivot(tableau, basis, row, pivot_col)
        keep_rows.append(row)
    tableau = tableau[keep_rows, :]
    basis = [basis[row] for row in keep_rows]

    # Phase 2: original costs, artificial columns removed.
    tableau = np.hstack([tableau[:, :total], tableau[:, -1:]])
    status = _iterate(tableau, basis, c)
    if status == "unbounded":
        return Solution("unbounded")

    values_std = np.zeros(total)
    for row, variable in enumerate(basis):
        values_std[variable] = tableau[row, -1]
    objective = -float(c[:total] @ values_std) + objective_shift
    values = {}
    for variable in program.variables:
        value = values_std[variable.index] + shifts[variable.index]
        values[variable.index] = value
    return Solution("optimal", objective, values)


def _solve_unconstrained(program: LinearProgram, shifts: np.ndarray,
                         objective_shift: float) -> Solution:
    values = {v.index: v.lower for v in program.variables}
    objective = objective_shift
    for index, coeff in program.objective.items():
        variable = program.variables[index]
        if coeff > 0:
            if variable.upper is None:
                return Solution("unbounded")
            values[index] = variable.upper
            objective += coeff * (variable.upper - variable.lower)
    return Solution("optimal", objective, values)


def _to_standard_form(program: LinearProgram):
    """Convert to ``A x = b`` (``b >= 0``), ``x >= 0``, min ``c x``."""
    n = program.num_variables
    shifts = np.array([v.lower for v in program.variables], dtype=float)

    rows: List[Tuple[Dict[int, float], Sense, float]] = []
    for constraint in program.constraints:
        shift_amount = sum(coeff * shifts[idx]
                           for idx, coeff in constraint.coefficients.items())
        rows.append((constraint.coefficients, constraint.sense,
                     constraint.rhs - shift_amount))
    for variable in program.variables:
        if variable.upper is not None:
            rows.append(({variable.index: 1.0}, Sense.LE,
                         variable.upper - variable.lower))

    num_slack = sum(1 for _, sense, _ in rows if sense is not Sense.EQ)
    total = n + num_slack
    a = np.zeros((len(rows), total))
    b = np.zeros(len(rows))
    slack_cursor = n
    for i, (coeffs, sense, rhs) in enumerate(rows):
        for idx, coeff in coeffs.items():
            a[i, idx] = coeff
        b[i] = rhs
        if sense is Sense.LE:
            a[i, slack_cursor] = 1.0
            slack_cursor += 1
        elif sense is Sense.GE:
            a[i, slack_cursor] = -1.0
            slack_cursor += 1
    for i in range(len(rows)):
        if b[i] < 0:
            a[i, :] *= -1
            b[i] *= -1

    c = np.zeros(total)
    for idx, coeff in program.objective.items():
        c[idx] = -coeff   # maximise -> minimise
    objective_shift = float(sum(coeff * shifts[idx]
                                for idx, coeff in
                                program.objective.items()))
    return a, b, c, n, shifts, objective_shift


def _iterate(tableau: np.ndarray, basis: List[int], cost: np.ndarray,
             max_iterations: int = 200_000) -> str:
    """Run primal simplex on a tableau whose last column is the RHS.

    ``cost`` covers all structural columns (length = columns - 1).
    Mutates ``tableau`` and ``basis``; returns "optimal" or "unbounded".
    """
    m = tableau.shape[0]
    ncols = tableau.shape[1] - 1

    # Make basis columns canonical (identity) under the current tableau.
    for row in range(m):
        pivot = tableau[row, basis[row]]
        if abs(pivot) <= _EPS:  # pragma: no cover - defensive
            continue
        if abs(pivot - 1.0) > _EPS:
            tableau[row, :] /= pivot
        for other in range(m):
            if other != row and abs(tableau[other, basis[row]]) > _EPS:
                tableau[other, :] -= \
                    tableau[other, basis[row]] * tableau[row, :]

    for _ in range(max_iterations):
        reduced = cost[:ncols] - cost[basis] @ tableau[:, :ncols]
        entering = None
        for j in range(ncols):
            if reduced[j] < -1e-9:
                entering = j          # Bland's rule: first eligible
                break
        if entering is None:
            return "optimal"
        column = tableau[:, entering]
        best_row, best_ratio = None, None
        for row in range(m):
            if column[row] > _EPS:
                ratio = tableau[row, -1] / column[row]
                if best_ratio is None or ratio < best_ratio - _EPS or (
                        abs(ratio - best_ratio) <= _EPS
                        and basis[row] < basis[best_row]):
                    best_ratio, best_row = ratio, row
        if best_row is None:
            return "unbounded"
        _pivot(tableau, basis, best_row, entering)
    raise RuntimeError("simplex iteration limit exceeded")


def _pivot(tableau: np.ndarray, basis: List[int], row: int,
           col: int) -> None:
    tableau[row, :] /= tableau[row, col]
    for other in range(tableau.shape[0]):
        if other != row and abs(tableau[other, col]) > _EPS:
            tableau[other, :] -= tableau[other, col] * tableau[row, :]
    basis[row] = col
