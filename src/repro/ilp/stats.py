"""Work counters of the LP/ILP engine.

Mirrors :class:`repro.analysis.fixpoint.FixpointStats`: one object per
``analyze_paths`` call, accumulated across presolve, the root LP solve,
and every branch-and-bound node, surfaced through
``WCETResult.solver_stats["path"]`` and the text report so solver cost
is visible next to the fixpoint counters of the earlier phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class ILPStats:
    """Counters for one LP/ILP solve (or a whole branch-and-bound run)."""

    #: Primal simplex pivots spent reaching feasibility (phase 1).
    phase1_pivots: int = 0
    #: Primal simplex pivots spent optimising (phase 2).
    phase2_pivots: int = 0
    #: Dual simplex pivots spent warm-starting branch-and-bound nodes.
    dual_pivots: int = 0
    #: Nonbasic bound flips (no basis change).
    bound_flips: int = 0
    #: Basis-inverse rebuilds (periodic numerical hygiene).
    refactorizations: int = 0
    #: Pivots taken under the Bland anti-cycling fallback.
    bland_pivots: int = 0
    #: Constraints eliminated by presolve.
    presolve_rows_removed: int = 0
    #: Variables fixed/eliminated by presolve.
    presolve_cols_removed: int = 0
    #: Branch-and-bound nodes explored (0 = relaxation was integral).
    bb_nodes: int = 0
    #: Nodes re-optimised from the parent basis by the dual simplex.
    warm_start_hits: int = 0
    #: Nodes solved from a cold (two-phase) start.
    cold_solves: int = 0

    @property
    def pivots(self) -> int:
        """Total simplex pivots across all phases and nodes."""
        return self.phase1_pivots + self.phase2_pivots + self.dual_pivots

    def absorb(self, other: "ILPStats") -> None:
        """Fold a follow-up solve of the *same program* into this
        object: work counters accumulate (the work really happened),
        but the presolve reduction is a property of the program, so a
        re-presolve must not double-count it."""
        self.phase1_pivots += other.phase1_pivots
        self.phase2_pivots += other.phase2_pivots
        self.dual_pivots += other.dual_pivots
        self.bound_flips += other.bound_flips
        self.refactorizations += other.refactorizations
        self.bland_pivots += other.bland_pivots
        self.bb_nodes += other.bb_nodes
        self.warm_start_hits += other.warm_start_hits
        self.cold_solves += other.cold_solves
        self.presolve_rows_removed = max(self.presolve_rows_removed,
                                         other.presolve_rows_removed)
        self.presolve_cols_removed = max(self.presolve_cols_removed,
                                         other.presolve_cols_removed)

    def as_dict(self) -> Dict[str, int]:
        return {
            "pivots": self.pivots,
            "phase1_pivots": self.phase1_pivots,
            "phase2_pivots": self.phase2_pivots,
            "dual_pivots": self.dual_pivots,
            "bound_flips": self.bound_flips,
            "refactorizations": self.refactorizations,
            "bland_pivots": self.bland_pivots,
            "presolve_rows_removed": self.presolve_rows_removed,
            "presolve_cols_removed": self.presolve_cols_removed,
            "bb_nodes": self.bb_nodes,
            "warm_start_hits": self.warm_start_hits,
            "cold_solves": self.cold_solves,
        }

    def __str__(self) -> str:
        return (f"{self.pivots} pivots "
                f"({self.phase1_pivots} p1 / {self.phase2_pivots} p2 / "
                f"{self.dual_pivots} dual), presolve "
                f"-{self.presolve_rows_removed} rows / "
                f"-{self.presolve_cols_removed} cols, "
                f"{self.bb_nodes} B&B nodes "
                f"({self.warm_start_hits} warm)")
