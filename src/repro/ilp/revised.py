"""Bounded-variable revised simplex on sparse data.

Replaces the dense two-phase tableau: the constraint matrix stays
sparse (:class:`~repro.ilp.sparse.SparseMatrix`), only the ``m x m``
basis inverse is dense, and variable upper bounds are handled natively
by the ratio test (nonbasic-at-upper states and bound flips) instead of
being expanded into extra constraint rows.  Pricing is Dantzig (most
negative reduced cost) with Bland's rule as a degeneracy fallback, so
the common case pays for the cheap rule and cycling is still
impossible.  The dual simplex entry point re-optimises after bound
changes from a still-dual-feasible basis — the warm start that makes
branch-and-bound nodes cheap.

Internally the program is the equality-form core ``maximise c x
s.t. A x = b, lo <= x <= hi`` built by :class:`CoreLP` from a presolved
program: structural columns shifted to zero lower bound, one slack per
inequality row, and artificial columns only for rows whose slack cannot
start basic-feasible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .model import Sense
from .presolve import PresolvedLP
from .sparse import SparseMatrix
from .stats import ILPStats

NB_LOWER, NB_UPPER, BASIC = 0, 1, 2

_DUAL_TOL = 1e-9      # reduced-cost optimality tolerance
_FEAS_TOL = 1e-7      # primal feasibility tolerance
_PIVOT_TOL = 1e-8     # minimum acceptable pivot magnitude


class CoreLP:
    """Equality-form core of a presolved LP (see module docstring)."""

    def __init__(self, pre: PresolvedLP):
        self.pre = pre
        n = pre.num_cols
        m = pre.num_rows
        self.n_struct = n
        self.m = m
        #: Original-space lower bounds of the structurals (the shift).
        self.shift = pre.lower.copy()

        triplets: List[Tuple[int, int, float]] = []
        b = np.zeros(m)
        slack_of_row = np.full(m, -1, dtype=np.intp)
        art_rows: List[int] = []
        basis_col_of_row = np.zeros(m, dtype=np.intp)
        slack_cursor = n

        prepared = []
        for i, (coeffs, sense, rhs) in enumerate(pre.rows):
            shifted = rhs - sum(a * self.shift[j]
                                for j, a in coeffs.items())
            if sense is Sense.GE:
                coeffs = {j: -a for j, a in coeffs.items()}
                shifted = -shifted
                sense = Sense.LE
            sign = -1.0 if shifted < 0 else 1.0
            prepared.append((
                {j: sign * a for j, a in coeffs.items()},
                sense, sign * shifted, sign))
            if sense is Sense.LE:
                slack_of_row[i] = slack_cursor
                slack_cursor += 1
        n_slack = slack_cursor - n

        art_cursor = slack_cursor
        for i, (coeffs, sense, rhs, sign) in enumerate(prepared):
            for j, a in coeffs.items():
                triplets.append((i, j, a))
            b[i] = rhs
            if slack_of_row[i] >= 0:
                triplets.append((i, slack_of_row[i], sign))
            if sense is Sense.LE and sign > 0:
                basis_col_of_row[i] = slack_of_row[i]
            else:
                # EQ row, or a negated inequality whose slack enters
                # with coefficient -1: needs an artificial to start.
                triplets.append((i, art_cursor, 1.0))
                basis_col_of_row[i] = art_cursor
                art_rows.append(i)
                art_cursor += 1

        self.ncols = art_cursor
        self.art_start = slack_cursor
        self.A = SparseMatrix(m, self.ncols, triplets)
        self.b = b
        self.initial_basis = basis_col_of_row

        self.c = np.zeros(self.ncols)
        self.c[:n] = pre.objective
        self.lower = np.zeros(self.ncols)
        self.upper = np.full(self.ncols, np.inf)
        self.upper[:n] = pre.upper - self.shift

    def set_structural_bounds(self, col: int, lo: float,
                              hi: float) -> Tuple[float, float]:
        """Shift original-space bounds of a structural column into core
        space (callers assign the result into a solver's arrays)."""
        return lo - self.shift[col], hi - self.shift[col]


class RevisedSimplex:
    """One solver instance: mutable bounds + basis over a CoreLP."""

    def __init__(self, core: CoreLP, stats: Optional[ILPStats] = None,
                 bland_threshold: int = 32, refactor_every: int = 64,
                 max_iterations: int = 200_000):
        self.core = core
        self.stats = stats if stats is not None else ILPStats()
        self.bland_threshold = bland_threshold
        self.refactor_every = refactor_every
        self.max_iterations = max_iterations

        self.lower = core.lower.copy()
        self.upper = core.upper.copy()
        self.basis = core.initial_basis.copy()
        self.vstat = np.full(core.ncols, NB_LOWER, dtype=np.int8)
        self.vstat[self.basis] = BASIC
        self.Binv = np.eye(core.m)
        self.xB = core.b.copy()
        self._pivots_since_refactor = 0

    # -- Basis bookkeeping ---------------------------------------------------

    def snapshot(self):
        return (self.basis.copy(), self.vstat.copy(), self.Binv.copy(),
                self.lower.copy(), self.upper.copy())

    def restore(self, snap) -> None:
        basis, vstat, binv, lower, upper = snap
        self.basis = basis.copy()
        self.vstat = vstat.copy()
        self.Binv = binv.copy()
        self.lower = lower.copy()
        self.upper = upper.copy()
        self.xB = self._compute_xB()
        self._pivots_since_refactor = 0

    def _nonbasic_values(self) -> np.ndarray:
        x = np.where(self.vstat == NB_UPPER,
                     np.where(np.isfinite(self.upper), self.upper, 0.0),
                     self.lower)
        x[self.vstat == BASIC] = 0.0
        return x

    def _compute_xB(self) -> np.ndarray:
        xn = self._nonbasic_values()
        return self.Binv @ (self.core.b - self.core.A.dot(xn))

    def values(self) -> np.ndarray:
        """Full solution vector in core (shifted) space."""
        x = self._nonbasic_values()
        x[self.basis] = self.xB
        return x

    def structural_values(self) -> np.ndarray:
        """Structural solution in original space."""
        return self.values()[:self.core.n_struct] + self.core.shift

    def objective(self) -> float:
        return float(self.core.c @ self.values())

    def _refactor(self) -> None:
        B = self.core.A.dense_submatrix(self.basis)
        self.Binv = np.linalg.inv(B)
        self.xB = self._compute_xB()
        self._pivots_since_refactor = 0
        self.stats.refactorizations += 1

    def _update_basis_inverse(self, w: np.ndarray, r: int) -> None:
        pivot = w[r]
        self.Binv[r, :] /= pivot
        column = w.copy()
        column[r] = 0.0
        self.Binv -= np.outer(column, self.Binv[r, :])

    def _reduced_costs(self, c: np.ndarray) -> np.ndarray:
        y = c[self.basis] @ self.Binv
        return c - self.core.A.t_dot(y)

    # -- Primal simplex ------------------------------------------------------

    def solve_two_phase(self) -> str:
        """Cold start: phase 1 to feasibility, phase 2 to optimality."""
        core = self.core
        if core.art_start < core.ncols:
            c1 = np.zeros(core.ncols)
            c1[core.art_start:] = -1.0
            status = self._primal(c1, phase=1)
            if status != "optimal":  # pragma: no cover - phase 1 bounded
                raise RuntimeError("phase 1 terminated " + status)
            art_value = -float(c1 @ self.values())
            if art_value > _FEAS_TOL:
                return "infeasible"
            # Pin artificials at zero; basic ones stay harmlessly basic.
            self.upper[core.art_start:] = 0.0
        return self._primal(core.c, phase=2)

    def _primal(self, c: np.ndarray, phase: int) -> str:
        degenerate_run = 0
        bland = False
        for _ in range(self.max_iterations):
            d = self._reduced_costs(c)
            movable = self.upper > self.lower
            at_lower = (self.vstat == NB_LOWER) & movable & (d > _DUAL_TOL)
            at_upper = (self.vstat == NB_UPPER) & movable & (d < -_DUAL_TOL)
            eligible = np.flatnonzero(at_lower | at_upper)
            if len(eligible) == 0:
                return "optimal"
            if bland:
                j = int(eligible[0])
                self.stats.bland_pivots += 1
            else:
                j = int(eligible[np.argmax(np.abs(d[eligible]))])

            step = self._primal_step(j)
            if step is None:
                return "unbounded"
            delta = step
            if delta > _FEAS_TOL:
                degenerate_run = 0
                bland = False
            else:
                degenerate_run += 1
                if degenerate_run > self.bland_threshold:
                    bland = True
            if phase == 1:
                self.stats.phase1_pivots += 1
            else:
                self.stats.phase2_pivots += 1
        raise RuntimeError("simplex iteration limit exceeded")

    def _primal_step(self, j: int) -> Optional[float]:
        """Advance entering column ``j``; returns the step length, or
        None when the LP is unbounded in that direction."""
        t = 1.0 if self.vstat[j] == NB_LOWER else -1.0
        w = self.Binv @ self.core.A.dense_col(j)
        coef = -t * w                      # d(xB)/d(step)

        lowB = self.lower[self.basis]
        upB = self.upper[self.basis]
        ratios = np.full(self.core.m, np.inf)
        dec = coef < -_PIVOT_TOL
        inc = coef > _PIVOT_TOL
        with np.errstate(invalid="ignore"):
            ratios[dec] = (self.xB[dec] - lowB[dec]) / (-coef[dec])
            ratios[inc] = (upB[inc] - self.xB[inc]) / coef[inc]
        np.maximum(ratios, 0.0, out=ratios)

        bound_gap = self.upper[j] - self.lower[j]
        row_min = float(ratios.min()) if self.core.m else np.inf

        if bound_gap <= row_min:
            if np.isinf(bound_gap):
                return None
            # Bound flip: j runs to its other bound, basis unchanged.
            self.xB += coef * bound_gap
            self.vstat[j] = NB_UPPER if t > 0 else NB_LOWER
            self.stats.bound_flips += 1
            return float(bound_gap)

        if np.isinf(row_min):
            return None
        # Leaving row: smallest ratio, ties by smallest variable index
        # (the Bland tie-break, also used by the dense reference).
        candidates = np.flatnonzero(ratios <= row_min + _DUAL_TOL)
        r = int(candidates[np.argmin(self.basis[candidates])])

        entering_value = (self.lower[j] if t > 0 else self.upper[j]) \
            + t * row_min
        self.xB += coef * row_min
        leaving = self.basis[r]
        self.vstat[leaving] = NB_LOWER if coef[r] < 0 else NB_UPPER
        self.vstat[j] = BASIC
        self.basis[r] = j
        self.xB[r] = entering_value
        self._update_basis_inverse(w, r)
        self._pivots_since_refactor += 1
        if self._pivots_since_refactor >= self.refactor_every:
            self._refactor()
        return row_min

    # -- Dual simplex (warm-started re-optimisation) -------------------------

    def reoptimize_dual(self, max_iterations: int = 2_000) -> str:
        """Re-optimise after bound changes, starting from the current
        (still dual-feasible) basis.  Returns "optimal", "infeasible",
        or "fallback" when the caller should cold-start instead."""
        core = self.core
        if np.any(self.lower > self.upper + _FEAS_TOL):
            return "infeasible"
        self.xB = self._compute_xB()
        c = core.c
        for _ in range(max_iterations):
            lowB = self.lower[self.basis]
            upB = self.upper[self.basis]
            viol_low = lowB - self.xB
            viol_up = self.xB - upB
            viol = np.maximum(viol_low, viol_up)
            worst = float(viol.max()) if core.m else 0.0
            if worst <= _FEAS_TOL:
                return "optimal"
            rows = np.flatnonzero(viol >= worst - _DUAL_TOL)
            r = int(rows[np.argmin(self.basis[rows])])
            below = viol_low[r] >= viol_up[r]

            alpha = core.A.t_dot(self.Binv[r, :])
            # Leaving at its violated bound; entering must move x_Br
            # toward it.  Folding the direction into alpha unifies the
            # below/above cases (see dual ratio test derivation).
            alpha_dir = alpha if below else -alpha
            movable = self.upper > self.lower
            at_lower = (self.vstat == NB_LOWER) & movable & \
                (alpha_dir < -_PIVOT_TOL)
            at_upper = (self.vstat == NB_UPPER) & movable & \
                (alpha_dir > _PIVOT_TOL)
            eligible = np.flatnonzero(at_lower | at_upper)
            if len(eligible) == 0:
                return "infeasible"

            d = self._reduced_costs(c)
            # Clamp tiny dual infeasibilities so ratios stay >= 0.
            dd = np.where(self.vstat == NB_LOWER,
                          np.minimum(d, 0.0), np.maximum(d, 0.0))
            ratios = dd[eligible] / alpha_dir[eligible]
            best = float(ratios.min())
            ties = eligible[np.flatnonzero(ratios <= best + _DUAL_TOL)]
            j = int(ties[0])

            w = self.Binv @ core.A.dense_col(j)
            if abs(w[r]) < _PIVOT_TOL:
                return "fallback"
            self.vstat[self.basis[r]] = NB_LOWER if below else NB_UPPER
            self.vstat[j] = BASIC
            self.basis[r] = j
            self._update_basis_inverse(w, r)
            self._pivots_since_refactor += 1
            self.stats.dual_pivots += 1
            if self._pivots_since_refactor >= self.refactor_every:
                self._refactor()
            else:
                self.xB = self._compute_xB()
        return "fallback"
