"""Sparse matrix storage for the revised simplex.

The IPET constraint matrix is extremely sparse (flow rows touch only a
node's incident edges), so the solver never materialises the dense
``m x n`` matrix.  :class:`SparseMatrix` keeps the nonzeros once in
coordinate form (for the two matrix-vector products the revised
simplex needs) and once column-sliced (CSC, for pulling single columns
into the basis routines).  Both layouts are immutable after
construction — bound changes in branch-and-bound never touch the
matrix itself.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np


class SparseMatrix:
    """An immutable ``m x n`` sparse matrix (COO + CSC views)."""

    def __init__(self, m: int, n: int,
                 triplets: Iterable[Tuple[int, int, float]]):
        self.m = m
        self.n = n
        entries = [(r, c, v) for r, c, v in triplets if v != 0.0]
        if entries:
            rows, cols, vals = zip(*entries)
        else:
            rows, cols, vals = (), (), ()
        # COO, sorted by (column, row): doubles as CSC payload.
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        vals = np.asarray(vals, dtype=np.float64)
        order = np.lexsort((rows, cols))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if len(rows):
            # Coalesce duplicate positions so every view (products,
            # column slices, dense basis extraction) agrees on A.
            first = np.empty(len(rows), dtype=bool)
            first[0] = True
            first[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            starts = np.flatnonzero(first)
            vals = np.add.reduceat(vals, starts)
            rows, cols = rows[starts], cols[starts]
            keep = vals != 0.0
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self.col_ptr = np.searchsorted(self.cols, np.arange(n + 1))

    @property
    def nnz(self) -> int:
        return len(self.vals)

    # -- Column access -------------------------------------------------------

    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row indices and values of column ``j``."""
        lo, hi = self.col_ptr[j], self.col_ptr[j + 1]
        return self.rows[lo:hi], self.vals[lo:hi]

    def dense_col(self, j: int) -> np.ndarray:
        out = np.zeros(self.m)
        lo, hi = self.col_ptr[j], self.col_ptr[j + 1]
        out[self.rows[lo:hi]] = self.vals[lo:hi]
        return out

    def dense_submatrix(self, columns: np.ndarray) -> np.ndarray:
        """Dense ``m x len(columns)`` matrix of the given columns (the
        basis matrix for refactorisation)."""
        out = np.zeros((self.m, len(columns)))
        for k, j in enumerate(columns):
            rows, vals = self.col(j)
            out[rows, k] = vals
        return out

    # -- Matrix-vector products ----------------------------------------------

    def dot(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for a dense ``x`` (length n)."""
        contrib = x[self.cols] * self.vals
        return np.bincount(self.rows, weights=contrib,
                           minlength=self.m).astype(np.float64)

    def t_dot(self, y: np.ndarray) -> np.ndarray:
        """``A.T @ y`` for a dense ``y`` (length m)."""
        contrib = y[self.rows] * self.vals
        return np.bincount(self.cols, weights=contrib,
                           minlength=self.n).astype(np.float64)
