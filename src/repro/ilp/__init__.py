"""Linear and integer programming substrate for path analysis."""

from .branchbound import BranchStats, solve_ilp
from .model import (Constraint, InfeasibleError, LinearProgram, Sense,
                    Solution, UnboundedError, Variable)
from .simplex import solve_lp

__all__ = [
    "BranchStats", "solve_ilp", "Constraint", "InfeasibleError",
    "LinearProgram", "Sense", "Solution", "UnboundedError", "Variable",
    "solve_lp",
]
