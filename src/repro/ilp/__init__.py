"""Linear and integer programming substrate for path analysis.

The hot path is the staged sparse engine: :func:`presolve` shrinks the
program, :class:`~repro.ilp.revised.RevisedSimplex` solves it on sparse
data with native variable bounds, and :func:`solve_ilp` branches on
bounds with warm-started dual re-optimisation.  The historical dense
tableau (:func:`solve_lp_dense`) is retained as the differential-test
oracle.
"""

from .branchbound import BranchStats, solve_ilp
from .dense import solve_lp_dense
from .model import (Constraint, InfeasibleError, LinearProgram, Sense,
                    Solution, UnboundedError, Variable)
from .presolve import PresolvedLP, presolve
from .simplex import solve_lp
from .stats import ILPStats

__all__ = [
    "BranchStats", "solve_ilp", "Constraint", "InfeasibleError",
    "LinearProgram", "Sense", "Solution", "UnboundedError", "Variable",
    "solve_lp", "solve_lp_dense", "ILPStats", "PresolvedLP", "presolve",
]
