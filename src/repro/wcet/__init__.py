"""aiT-style WCET analysis driver (all phases, Section 3)."""

from .ait import WCETResult, analyze_wcet

__all__ = ["WCETResult", "analyze_wcet"]
