"""The aiT-style WCET analyzer: all phases end to end.

"AbsInt's WCET tool aiT determines the WCET of a program task in
several phases: CFG building ...; value analysis ...; loop bound
analysis ...; cache analysis ...; pipeline analysis ...; path analysis"
(Section 3).  :func:`analyze_wcet` runs exactly this pipeline over a
KRISC binary and returns a :class:`WCETResult` carrying every
intermediate artifact plus per-phase runtimes (experiment E7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Type

from ..analysis.domain import AbstractValue
from ..analysis.fixpoint import FixpointStats
from ..analysis.interval import Interval
from ..analysis.loopbounds import LoopBound, analyze_loop_bounds
from ..analysis.valueanalysis import ValueAnalysisResult, analyze_values
from ..cache.analysis import (DCacheResult, ICacheResult, analyze_dcache,
                              analyze_icache)
from ..cache.config import MachineConfig
from ..cfg.builder import BinaryCFG, build_cfg
from ..cfg.contexts import ContextPolicy
from ..cfg.expand import NodeId, TaskGraph, expand_task
from ..isa.program import Program
from ..path.ipet import PathAnalysisResult, analyze_paths
from ..pipeline.analysis import TimingModel, analyze_pipeline


@dataclass
class WCETResult:
    """Everything the analyzer derived about one task."""

    program: Program
    config: MachineConfig
    binary_cfg: BinaryCFG
    graph: TaskGraph
    values: ValueAnalysisResult
    loop_bounds: Dict[NodeId, LoopBound]
    icache: ICacheResult
    dcache: DCacheResult
    timing: TimingModel
    path: PathAnalysisResult
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Work counters per solver phase: the shared WTO kernel's
    #: :class:`FixpointStats` for "value"/"icache"/"dcache"/"pipeline",
    #: and the LP/ILP engine's :class:`~repro.ilp.stats.ILPStats` for
    #: "path" — alongside the wall clocks in :attr:`phase_seconds`.
    solver_stats: Dict[str, object] = field(default_factory=dict)
    #: The context-sensitivity policy the task graph was expanded under.
    context_policy: Optional[ContextPolicy] = None

    @property
    def wcet_cycles(self) -> int:
        """The verified upper bound on execution time in cycles."""
        return self.path.wcet_cycles

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def unbounded_loops(self) -> Sequence[NodeId]:
        return [header for header, bound in self.loop_bounds.items()
                if not bound.is_bounded]

    def summary(self) -> str:
        """One-paragraph textual summary (full report in repro.report)."""
        stats = self.values.precision()
        lines = [
            f"WCET bound: {self.wcet_cycles} cycles "
            f"(LP relaxation {self.path.lp_bound:.1f}, "
            f"{'integral' if self.path.integral else 'fractional'}, "
            f"{self.timing.model} timing model)",
            f"Task graph: {self.graph.node_count()} blocks, "
            f"{self.graph.edge_count()} edges, "
            f"{len(self.graph.contexts())} contexts "
            f"[{self.graph.policy.describe()}]",
            f"Value analysis: {stats.exact}/{stats.total} accesses exact "
            f"({100 * stats.exact_ratio:.1f}%)",
            f"I-cache: {self.icache.stats.always_hit} AH / "
            f"{self.icache.stats.always_miss} AM / "
            f"{self.icache.stats.persistent} PS / "
            f"{self.icache.stats.not_classified} NC",
            f"D-cache: {self.dcache.stats.always_hit} AH / "
            f"{self.dcache.stats.always_miss} AM / "
            f"{self.dcache.stats.persistent} PS / "
            f"{self.dcache.stats.not_classified} NC",
            f"Infeasible edges pruned: "
            f"{len(self.values.infeasible_edges)}",
            f"Analysis time: {self.total_seconds * 1000:.1f} ms",
        ]
        return "\n".join(lines)


def analyze_wcet(program: Program,
                 config: Optional[MachineConfig] = None,
                 entry: Optional[int] = None,
                 register_ranges: Optional[
                     Dict[int, Tuple[int, int]]] = None,
                 manual_loop_bounds: Optional[Dict[int, int]] = None,
                 indirect_targets: Optional[Dict[int, Sequence[int]]] = None,
                 domain: Type[AbstractValue] = Interval,
                 use_infeasible_paths: bool = True,
                 use_value_analysis_for_dcache: bool = True,
                 use_widening_thresholds: bool = True,
                 narrowing_passes: int = 2,
                 integer: bool = True,
                 context_policy: Optional[ContextPolicy] = None,
                 pipeline_model: Optional[str] = None,
                 memory_ranges: Optional[Dict[int, Tuple[int, int]]] = None
                 ) -> WCETResult:
    """Run the complete aiT pipeline on ``program``.

    Annotation parameters mirror aiT's user inputs:

    * ``register_ranges`` — value ranges of input registers at entry,
    * ``memory_ranges`` — value ranges of memory words the environment
      fills before the task runs (input buffers); without them the
      analysis would treat input data as the constants of the binary
      image, and bounds would not cover runs on other inputs,
    * ``manual_loop_bounds`` — iteration bounds for loops the analysis
      cannot bound, keyed by loop-header address (under a peeling
      policy the annotation still states the *full* iteration count;
      the analysis accounts the peeled copies itself),
    * ``indirect_targets`` — possible targets of indirect branches.

    ``context_policy`` selects the context-sensitivity scheme (VIVU
    loop peeling, k-limited call strings); the default reproduces the
    historical full-call-string expansion.  ``pipeline_model``
    overrides the config's timing model (``"additive"`` or
    ``"krisc5"``).  Ablation switches (DESIGN.md D1-D5) default to the
    full analysis.
    """
    config = config or MachineConfig.default()
    if pipeline_model is not None:
        config = config.with_model(pipeline_model)
    phases: Dict[str, float] = {}

    def timed(name):
        class _Timer:
            def __enter__(self):
                self.start = time.perf_counter()

            def __exit__(self, *exc):
                phases[name] = time.perf_counter() - self.start
        return _Timer()

    with timed("cfg"):
        binary_cfg = build_cfg(program, entry, indirect_targets)
        graph = expand_task(binary_cfg, policy=context_policy)
    with timed("value"):
        values = analyze_values(
            graph, domain=domain, register_ranges=register_ranges,
            narrowing_passes=narrowing_passes,
            use_widening_thresholds=use_widening_thresholds,
            memory_ranges=memory_ranges)
    with timed("loopbounds"):
        loop_bounds = analyze_loop_bounds(values, manual_loop_bounds)
    with timed("icache"):
        icache = analyze_icache(graph, config.icache)
    with timed("dcache"):
        dcache = analyze_dcache(graph, config.dcache, values,
                                use_value_analysis_for_dcache)
    with timed("pipeline"):
        timing = analyze_pipeline(graph, config, icache, dcache)
    with timed("path"):
        path = analyze_paths(graph, timing, loop_bounds, values,
                             use_infeasible_paths, integer)

    solver_stats = {}
    if values.fixpoint.stats is not None:
        solver_stats["value"] = values.fixpoint.stats
    if icache.fixpoint_stats is not None:
        solver_stats["icache"] = icache.fixpoint_stats
    if dcache.fixpoint_stats is not None:
        solver_stats["dcache"] = dcache.fixpoint_stats
    if timing.fixpoint_stats is not None:
        solver_stats["pipeline"] = timing.fixpoint_stats
    if path.solver_stats is not None:
        solver_stats["path"] = path.solver_stats
    return WCETResult(program, config, binary_cfg, graph, values,
                      loop_bounds, icache, dcache, timing, path, phases,
                      solver_stats=solver_stats,
                      context_policy=graph.policy)
