"""The aiT-style WCET analyzer: all phases end to end.

"AbsInt's WCET tool aiT determines the WCET of a program task in
several phases: CFG building ...; value analysis ...; loop bound
analysis ...; cache analysis ...; pipeline analysis ...; path analysis"
(Section 3).  :func:`analyze_wcet` runs exactly this pipeline over a
KRISC binary and returns a :class:`WCETResult` carrying every
intermediate artifact plus per-phase runtimes (experiment E7).

Each phase is a named, individually-cacheable step (:data:`PHASES`):
:func:`analyze_wcet` drives them through a :class:`PhaseRunner`, which
can consult an optional content-addressed artifact cache (the batch
sweep engine's :class:`~repro.batch.cachestore.ArtifactCache`).  Phase
cache keys chain — each phase's key material embeds the keys of the
phases it consumes — so any upstream input change transparently
invalidates every downstream artifact, while unrelated inputs share:
e.g. the expanded task graph and the value analysis are keyed only by
(program, entry, indirect targets, context policy[, value parameters]),
so both pipeline timing models reuse them.
"""

from __future__ import annotations

import cProfile
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Type)

from ..analysis.domain import AbstractValue
from ..domainimpl import resolve_domain_impl
from ..analysis.fixpoint import FixpointStats
from ..analysis.interval import Interval
from ..analysis.loopbounds import LoopBound, analyze_loop_bounds
from ..analysis.valueanalysis import ValueAnalysisResult, analyze_values
from ..cache.analysis import (DCacheResult, ICacheResult, analyze_dcache,
                              analyze_icache)
from ..cache.config import CacheConfig, MachineConfig
from ..cfg.builder import BinaryCFG, build_cfg
from ..cfg.contexts import DEFAULT_POLICY, ContextPolicy
from ..cfg.expand import NodeId, TaskGraph, expand_task
from ..isa.program import Program
from ..path.ipet import PathAnalysisResult, analyze_paths
from ..pipeline.analysis import TimingModel, analyze_pipeline


@dataclass
class WCETResult:
    """Everything the analyzer derived about one task."""

    program: Program
    config: MachineConfig
    binary_cfg: BinaryCFG
    graph: TaskGraph
    values: ValueAnalysisResult
    loop_bounds: Dict[NodeId, LoopBound]
    icache: ICacheResult
    dcache: DCacheResult
    timing: TimingModel
    path: PathAnalysisResult
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Work counters per solver phase: the shared WTO kernel's
    #: :class:`FixpointStats` for "value"/"icache"/"dcache"/"pipeline",
    #: and the LP/ILP engine's :class:`~repro.ilp.stats.ILPStats` for
    #: "path" — alongside the wall clocks in :attr:`phase_seconds`.
    solver_stats: Dict[str, object] = field(default_factory=dict)
    #: The context-sensitivity policy the task graph was expanded under.
    context_policy: Optional[ContextPolicy] = None
    #: Artifact-cache provenance: phase name -> "hit" | "miss".  Empty
    #: when the analysis ran without a phase cache.
    cache_events: Dict[str, str] = field(default_factory=dict)
    #: The abstract-domain implementation the analysis ran under
    #: (:mod:`repro.domainimpl`); bounds are identical either way.
    domain_impl: Optional[str] = None
    #: Per-phase ``cProfile.Profile`` objects when the analysis ran
    #: with ``profile=True`` (``repro wcet --profile``).
    profiles: Dict[str, object] = field(default_factory=dict)

    @property
    def wcet_cycles(self) -> int:
        """The verified upper bound on execution time in cycles."""
        return self.path.wcet_cycles

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def unbounded_loops(self) -> Sequence[NodeId]:
        return [header for header, bound in self.loop_bounds.items()
                if not bound.is_bounded]

    def summary(self) -> str:
        """One-paragraph textual summary (full report in repro.report)."""
        stats = self.values.precision()
        lines = [
            f"WCET bound: {self.wcet_cycles} cycles "
            f"(LP relaxation {self.path.lp_bound:.1f}, "
            f"{'integral' if self.path.integral else 'fractional'}, "
            f"{self.timing.model} timing model)",
            f"Task graph: {self.graph.node_count()} blocks, "
            f"{self.graph.edge_count()} edges, "
            f"{len(self.graph.contexts())} contexts "
            f"[{self.graph.policy.describe()}]",
            f"Value analysis: {stats.exact}/{stats.total} accesses exact "
            f"({100 * stats.exact_ratio:.1f}%)",
            f"I-cache: {self.icache.stats.always_hit} AH / "
            f"{self.icache.stats.always_miss} AM / "
            f"{self.icache.stats.persistent} PS / "
            f"{self.icache.stats.not_classified} NC",
            f"D-cache: {self.dcache.stats.always_hit} AH / "
            f"{self.dcache.stats.always_miss} AM / "
            f"{self.dcache.stats.persistent} PS / "
            f"{self.dcache.stats.not_classified} NC",
            f"Infeasible edges pruned: "
            f"{len(self.values.infeasible_edges)}",
            f"Analysis time: {self.total_seconds * 1000:.1f} ms",
        ]
        return "\n".join(lines)


# -- Named analysis phases ------------------------------------------------------

#: The aiT pipeline's phases in execution order.  Every phase is one
#: :class:`PhaseTask` descriptor built by :func:`phase_plan`, run under
#: a shared :class:`PhaseRunner`.
PHASES = ("cfg", "value", "loopbounds", "icache", "dcache", "pipeline",
          "path")


@dataclass(frozen=True)
class PhaseTask:
    """Descriptor of one pipeline phase: everything a scheduler needs
    to key, order, and run the phase *without* executing it.

    ``material`` maps the cache keys of the phase's dependencies (name
    -> key) to the phase's own key material; ``compute`` maps the
    dependency artifacts (name -> artifact) to the phase's artifact.
    The split is what lets the batch layer schedule phases of *many*
    jobs as one deduplicated DAG: task identity is the cache key, and
    a key can be derived from upstream keys alone.
    """

    name: str
    deps: Tuple[str, ...]
    material: Callable[[Mapping[str, str]], str]
    compute: Callable[[Mapping[str, Any]], Any]


class PhaseRunner:
    """Runs named phases, consulting an optional artifact cache.

    The cache protocol (implemented by
    :class:`repro.batch.cachestore.ArtifactCache`) is three methods:
    ``key(material) -> str`` (digest the key material, mixing in the
    cache's code-version salt), ``lookup(key) -> (hit, value)``, and
    ``store(key, value)``.  Without a cache the runner just computes.

    Phases must execute in dependency order under one runner: a
    phase's key material references the keys of its upstream phases
    (:meth:`key_of`), which is what makes invalidation transitive.
    """

    def __init__(self, cache=None):
        self.cache = cache
        self.keys: Dict[str, str] = {}
        self.events: Dict[str, str] = {}

    def key_of(self, phase: str) -> str:
        """The cache key an already-run upstream phase was stored under."""
        return self.keys[phase]

    def run(self, name, material, compute):
        """Run phase ``name``: serve ``compute()``'s value from the
        cache when the digest of ``material()`` is present, computing
        and storing it otherwise."""
        if self.cache is None:
            return compute()
        key = self.cache.key(material())
        self.keys[name] = key
        hit, value = self.cache.lookup(key)
        if hit:
            self.events[name] = "hit"
            return value
        value = compute()
        self.cache.store(key, value)
        self.events[name] = "miss"
        return value

    def run_task(self, task: PhaseTask,
                 results: Mapping[str, Any]) -> Any:
        """Run one :class:`PhaseTask` against already-computed upstream
        ``results`` (name -> artifact)."""
        deps = {name: results[name] for name in task.deps}
        return self.run(task.name,
                        lambda: task.material(self.keys),
                        lambda: task.compute(deps))


def _mapping_material(mapping: Optional[Mapping]) -> str:
    """Stable key-material encoding of an annotation mapping."""
    if not mapping:
        return "-"
    parts = []
    for key in sorted(mapping):
        value = mapping[key]
        if isinstance(value, (list, tuple)):
            value = ",".join(str(item) for item in value)
        parts.append(f"{key}={value}")
    return ";".join(parts)


def _cache_config_material(config: CacheConfig) -> str:
    return (f"{config.num_sets}x{config.associativity}x"
            f"{config.line_size}p{config.miss_penalty}")


# -- Key-material builders -------------------------------------------------------
#
# One function per phase, shared by the in-process pipeline below and
# the batch layer's DAG scheduler, so both address the same artifacts:
# a sweep's cold DAG run and a later sequential warm run hit the same
# cache objects.

def material_cfg(program: Program, entry: Optional[int],
                 indirect_targets: Optional[Dict[int, Sequence[int]]],
                 policy: ContextPolicy) -> str:
    # Keyed on the call-graph-reachable *code slice* rather than the
    # monolithic content digest: editing a function the analyzed entry
    # never reaches leaves this key — and through it every downstream
    # phase key — stable.  reachable_slice() degrades to a
    # content_digest()-derived key whenever its scan is imprecise, so
    # this is never a weaker key than the whole-image one it replaced.
    code_slice = program.reachable_slice(entry, indirect_targets).code
    return (f"cfg|{code_slice}|entry={entry}"
            f"|indirect={_mapping_material(indirect_targets)}"
            f"|policy={policy.describe()}")


def material_value(cfg_key: str, domain: Type[AbstractValue],
                   register_ranges: Optional[Dict[int, Tuple[int, int]]],
                   narrowing_passes: int, use_widening_thresholds: bool,
                   memory_ranges: Optional[Dict[int, Tuple[int, int]]],
                   effective_impl: str, data_digest: str) -> str:
    # The value phase is the only one that reads initial data memory,
    # so it alone carries the data-slice digest: a data-only edit
    # invalidates value and its dependents while cfg/icache keep their
    # keys (and their cached artifacts).
    return (f"value|{cfg_key}"
            f"|domain={domain.__module__}.{domain.__qualname__}"
            f"|regs={_mapping_material(register_ranges)}"
            f"|narrow={narrowing_passes}"
            f"|wthresh={use_widening_thresholds}"
            f"|mem={_mapping_material(memory_ranges)}"
            f"|impl={effective_impl}"
            f"|data={data_digest}")


def material_loopbounds(value_key: str,
                        manual_loop_bounds: Optional[Dict[int, int]]
                        ) -> str:
    return (f"loopbounds|{value_key}"
            f"|manual={_mapping_material(manual_loop_bounds)}")


def material_icache(cfg_key: str, config: CacheConfig,
                    effective_impl: str) -> str:
    return (f"icache|{cfg_key}"
            f"|{_cache_config_material(config)}"
            f"|impl={effective_impl}")


def material_dcache(cfg_key: str, value_key: str, config: CacheConfig,
                    use_value_analysis: bool,
                    effective_impl: str) -> str:
    return (f"dcache|{cfg_key}|{value_key}"
            f"|{_cache_config_material(config)}"
            f"|usevalue={use_value_analysis}"
            f"|impl={effective_impl}")


def material_pipeline(cfg_key: str, icache_key: str, dcache_key: str,
                      config: MachineConfig) -> str:
    return (f"pipeline|{cfg_key}"
            f"|{icache_key}|{dcache_key}"
            f"|model={config.pipeline_model}"
            f"|cap={config.pipeline_state_cap}"
            f"|bp={config.branch_penalty}|mul={config.mul_extra}"
            f"|lus={config.load_use_stall}")


def material_path(cfg_key: str, pipeline_key: str, loopbounds_key: str,
                  value_key: str, use_infeasible_paths: bool,
                  integer: bool) -> str:
    return (f"path|{cfg_key}|{pipeline_key}"
            f"|{loopbounds_key}|{value_key}"
            f"|infeasible={use_infeasible_paths}|integer={integer}")


def value_effective_impl(domain: Type[AbstractValue],
                         impl: Optional[str]) -> str:
    """The domain implementation the value phase actually executes.

    Non-interval domains always run the python implementation; keying
    the artifact by the executing implementation keeps cached states
    (which embed their memory representation) from mixing.
    """
    effective = resolve_domain_impl(impl)
    if domain is not Interval:
        effective = "python"
    return effective


def loopbounds_task(manual_loop_bounds: Optional[Dict[int, int]]
                    ) -> PhaseTask:
    """The loop-bound phase descriptor for a known annotation mapping.

    Split out of :func:`phase_plan` because the batch DAG needs to
    build it *late*: for workloads that follow the discover-then-
    annotate workflow, the manual mapping is itself the product of an
    upstream task.
    """
    return PhaseTask(
        "loopbounds", ("value",),
        lambda keys: material_loopbounds(keys["value"],
                                         manual_loop_bounds),
        lambda deps: analyze_loop_bounds(deps["value"],
                                         manual_loop_bounds))


def phase_plan(program: Program,
               config: Optional[MachineConfig] = None,
               entry: Optional[int] = None,
               register_ranges: Optional[
                   Dict[int, Tuple[int, int]]] = None,
               manual_loop_bounds: Optional[Dict[int, int]] = None,
               indirect_targets: Optional[Dict[int, Sequence[int]]] = None,
               domain: Type[AbstractValue] = Interval,
               use_infeasible_paths: bool = True,
               use_value_analysis_for_dcache: bool = True,
               use_widening_thresholds: bool = True,
               narrowing_passes: int = 2,
               integer: bool = True,
               context_policy: Optional[ContextPolicy] = None,
               pipeline_model: Optional[str] = None,
               memory_ranges: Optional[Dict[int, Tuple[int, int]]] = None,
               domain_impl: Optional[str] = None) -> List[PhaseTask]:
    """Build the full pipeline as a list of :class:`PhaseTask`
    descriptors in execution order, without running anything.

    Parameters mirror :func:`analyze_wcet` exactly; running the plan's
    tasks in order under one :class:`PhaseRunner` *is* the pipeline.
    The batch layer instead feeds the descriptors of many jobs into
    one deduplicated task DAG (:mod:`repro.batch.dag`).
    """
    config = config or MachineConfig.default()
    if pipeline_model is not None:
        config = config.with_model(pipeline_model)
    policy = context_policy or DEFAULT_POLICY
    impl = resolve_domain_impl(
        domain_impl if domain_impl is not None else config.domain_impl)
    value_impl = value_effective_impl(domain, impl)

    def compute_cfg(deps):
        binary_cfg = build_cfg(program, entry, indirect_targets)
        graph = expand_task(binary_cfg, policy=policy)
        return binary_cfg, graph

    def compute_value(deps):
        _, graph = deps["cfg"]
        # Pass the submitted program explicitly: a cached cfg artifact
        # embeds the Program it was built from, which under slice-based
        # keys may be an *older* binary with identical reachable code
        # but different data — its initial_memory() would be stale.
        return analyze_values(
            graph, domain=domain, register_ranges=register_ranges,
            narrowing_passes=narrowing_passes,
            use_widening_thresholds=use_widening_thresholds,
            memory_ranges=memory_ranges, domain_impl=value_impl,
            program=program)

    def compute_icache(deps):
        _, graph = deps["cfg"]
        return analyze_icache(graph, config.icache, impl=impl)

    def compute_dcache(deps):
        _, graph = deps["cfg"]
        return analyze_dcache(graph, config.dcache, deps["value"],
                              use_value_analysis_for_dcache, impl=impl)

    def compute_pipeline(deps):
        _, graph = deps["cfg"]
        return analyze_pipeline(graph, config, deps["icache"],
                                deps["dcache"])

    def compute_path(deps):
        _, graph = deps["cfg"]
        return analyze_paths(graph, deps["pipeline"],
                             deps["loopbounds"], deps["value"],
                             use_infeasible_paths, integer)

    return [
        PhaseTask(
            "cfg", (),
            lambda keys: material_cfg(program, entry, indirect_targets,
                                      policy),
            compute_cfg),
        PhaseTask(
            "value", ("cfg",),
            lambda keys: material_value(
                keys["cfg"], domain, register_ranges, narrowing_passes,
                use_widening_thresholds, memory_ranges, value_impl,
                program.reachable_slice(entry, indirect_targets).data),
            compute_value),
        loopbounds_task(manual_loop_bounds),
        PhaseTask(
            "icache", ("cfg",),
            lambda keys: material_icache(keys["cfg"], config.icache,
                                         impl),
            compute_icache),
        PhaseTask(
            "dcache", ("cfg", "value"),
            lambda keys: material_dcache(
                keys["cfg"], keys["value"], config.dcache,
                use_value_analysis_for_dcache, impl),
            compute_dcache),
        PhaseTask(
            "pipeline", ("cfg", "icache", "dcache"),
            lambda keys: material_pipeline(
                keys["cfg"], keys["icache"], keys["dcache"], config),
            compute_pipeline),
        PhaseTask(
            "path", ("cfg", "pipeline", "loopbounds", "value"),
            lambda keys: material_path(
                keys["cfg"], keys["pipeline"], keys["loopbounds"],
                keys["value"], use_infeasible_paths, integer),
            compute_path),
    ]


def collect_solver_stats(values: ValueAnalysisResult,
                         icache: ICacheResult, dcache: DCacheResult,
                         timing: TimingModel,
                         path: PathAnalysisResult) -> Dict[str, object]:
    """The per-phase work counters a :class:`WCETResult` carries."""
    solver_stats: Dict[str, object] = {}
    if values.fixpoint.stats is not None:
        solver_stats["value"] = values.fixpoint.stats
    if icache.fixpoint_stats is not None:
        solver_stats["icache"] = icache.fixpoint_stats
    if dcache.fixpoint_stats is not None:
        solver_stats["dcache"] = dcache.fixpoint_stats
    if timing.fixpoint_stats is not None:
        solver_stats["pipeline"] = timing.fixpoint_stats
    if path.solver_stats is not None:
        solver_stats["path"] = path.solver_stats
    return solver_stats


def build_wcet_result(program: Program, config: MachineConfig,
                      artifacts: Mapping[str, Any],
                      phase_seconds: Dict[str, float],
                      cache_events: Dict[str, str],
                      domain_impl: Optional[str] = None,
                      profiles: Optional[Dict[str, object]] = None
                      ) -> WCETResult:
    """Assemble a :class:`WCETResult` from the seven phase artifacts.

    Used by :func:`analyze_wcet` after running the plan in-process and
    by the batch DAG scheduler after collecting the same artifacts from
    distributed tasks — both directions produce identical results.
    """
    binary_cfg, graph = artifacts["cfg"]
    values = artifacts["value"]
    icache = artifacts["icache"]
    dcache = artifacts["dcache"]
    timing = artifacts["pipeline"]
    path = artifacts["path"]
    return WCETResult(
        program, config, binary_cfg, graph, values,
        artifacts["loopbounds"], icache, dcache, timing, path,
        phase_seconds,
        solver_stats=collect_solver_stats(values, icache, dcache,
                                          timing, path),
        context_policy=graph.policy, cache_events=cache_events,
        domain_impl=domain_impl, profiles=profiles or {})


def analyze_loop_annotations(program: Program,
                             memory_ranges: Optional[
                                 Dict[int, Tuple[int, int]]] = None,
                             phase_cache=None,
                             domain_impl: Optional[str] = None
                             ) -> Dict[NodeId, LoopBound]:
    """The *discover* half of aiT's annotate workflow: run the
    default-parameter cfg/value/loopbounds prefix of the pipeline and
    return the loop-bound table, from which callers pick the unbounded
    headers to annotate manually.  Uses the same phase steps (and hence
    shares cached artifacts) as :func:`analyze_wcet`.
    """
    plan = phase_plan(program, memory_ranges=memory_ranges,
                      domain_impl=domain_impl)
    runner = PhaseRunner(phase_cache)
    results: Dict[str, Any] = {}
    for task in plan:
        results[task.name] = runner.run_task(task, results)
        if task.name == "loopbounds":
            return results["loopbounds"]
    raise AssertionError("phase plan lacks a loopbounds phase")


def analyze_wcet(program: Program,
                 config: Optional[MachineConfig] = None,
                 entry: Optional[int] = None,
                 register_ranges: Optional[
                     Dict[int, Tuple[int, int]]] = None,
                 manual_loop_bounds: Optional[Dict[int, int]] = None,
                 indirect_targets: Optional[Dict[int, Sequence[int]]] = None,
                 domain: Type[AbstractValue] = Interval,
                 use_infeasible_paths: bool = True,
                 use_value_analysis_for_dcache: bool = True,
                 use_widening_thresholds: bool = True,
                 narrowing_passes: int = 2,
                 integer: bool = True,
                 context_policy: Optional[ContextPolicy] = None,
                 pipeline_model: Optional[str] = None,
                 memory_ranges: Optional[Dict[int, Tuple[int, int]]] = None,
                 phase_cache=None,
                 domain_impl: Optional[str] = None,
                 profile: bool = False
                 ) -> WCETResult:
    """Run the complete aiT pipeline on ``program``.

    Annotation parameters mirror aiT's user inputs:

    * ``register_ranges`` — value ranges of input registers at entry,
    * ``memory_ranges`` — value ranges of memory words the environment
      fills before the task runs (input buffers); without them the
      analysis would treat input data as the constants of the binary
      image, and bounds would not cover runs on other inputs,
    * ``manual_loop_bounds`` — iteration bounds for loops the analysis
      cannot bound, keyed by loop-header address (under a peeling
      policy the annotation still states the *full* iteration count;
      the analysis accounts the peeled copies itself),
    * ``indirect_targets`` — possible targets of indirect branches.

    ``context_policy`` selects the context-sensitivity scheme (VIVU
    loop peeling, k-limited call strings); the default reproduces the
    historical full-call-string expansion.  ``pipeline_model``
    overrides the config's timing model (``"additive"`` or
    ``"krisc5"``).  Ablation switches (DESIGN.md D1-D5) default to the
    full analysis.

    ``phase_cache`` plugs in a content-addressed artifact cache (see
    :mod:`repro.batch`): each phase is then served from the cache when
    its exact inputs were analyzed before, and
    :attr:`WCETResult.cache_events` records the per-phase hit/miss
    provenance.  Cached and uncached analyses produce bit-identical
    results.

    ``domain_impl`` selects the abstract-domain implementation
    (``python``/``numpy``) for the value and cache phases; the explicit
    argument wins over ``config.domain_impl``, which wins over
    ``$REPRO_DOMAIN_IMPL``.  ``profile=True`` wraps each phase in a
    ``cProfile`` run, collected in :attr:`WCETResult.profiles`.
    """
    config = config or MachineConfig.default()
    if pipeline_model is not None:
        config = config.with_model(pipeline_model)
    impl = resolve_domain_impl(
        domain_impl if domain_impl is not None else config.domain_impl)
    plan = phase_plan(
        program, config=config, entry=entry,
        register_ranges=register_ranges,
        manual_loop_bounds=manual_loop_bounds,
        indirect_targets=indirect_targets, domain=domain,
        use_infeasible_paths=use_infeasible_paths,
        use_value_analysis_for_dcache=use_value_analysis_for_dcache,
        use_widening_thresholds=use_widening_thresholds,
        narrowing_passes=narrowing_passes, integer=integer,
        context_policy=context_policy, memory_ranges=memory_ranges,
        domain_impl=impl)
    phases: Dict[str, float] = {}
    profiles: Dict[str, object] = {}

    def timed(name):
        class _Timer:
            def __enter__(self):
                if profile:
                    self.profiler = cProfile.Profile()
                    self.profiler.enable()
                self.start = time.perf_counter()

            def __exit__(self, *exc):
                phases[name] = time.perf_counter() - self.start
                if profile:
                    self.profiler.disable()
                    profiles[name] = self.profiler
        return _Timer()

    runner = PhaseRunner(phase_cache)
    results: Dict[str, Any] = {}
    for task in plan:
        with timed(task.name):
            results[task.name] = runner.run_task(task, results)

    return build_wcet_result(program, config, results, phases,
                             dict(runner.events), domain_impl=impl,
                             profiles=profiles)
