"""The aiT-style WCET analyzer: all phases end to end.

"AbsInt's WCET tool aiT determines the WCET of a program task in
several phases: CFG building ...; value analysis ...; loop bound
analysis ...; cache analysis ...; pipeline analysis ...; path analysis"
(Section 3).  :func:`analyze_wcet` runs exactly this pipeline over a
KRISC binary and returns a :class:`WCETResult` carrying every
intermediate artifact plus per-phase runtimes (experiment E7).

Each phase is a named, individually-cacheable step (:data:`PHASES`):
:func:`analyze_wcet` drives them through a :class:`PhaseRunner`, which
can consult an optional content-addressed artifact cache (the batch
sweep engine's :class:`~repro.batch.cachestore.ArtifactCache`).  Phase
cache keys chain — each phase's key material embeds the keys of the
phases it consumes — so any upstream input change transparently
invalidates every downstream artifact, while unrelated inputs share:
e.g. the expanded task graph and the value analysis are keyed only by
(program, entry, indirect targets, context policy[, value parameters]),
so both pipeline timing models reuse them.
"""

from __future__ import annotations

import cProfile
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Type

from ..analysis.domain import AbstractValue
from ..domainimpl import resolve_domain_impl
from ..analysis.fixpoint import FixpointStats
from ..analysis.interval import Interval
from ..analysis.loopbounds import LoopBound, analyze_loop_bounds
from ..analysis.valueanalysis import ValueAnalysisResult, analyze_values
from ..cache.analysis import (DCacheResult, ICacheResult, analyze_dcache,
                              analyze_icache)
from ..cache.config import CacheConfig, MachineConfig
from ..cfg.builder import BinaryCFG, build_cfg
from ..cfg.contexts import DEFAULT_POLICY, ContextPolicy
from ..cfg.expand import NodeId, TaskGraph, expand_task
from ..isa.program import Program
from ..path.ipet import PathAnalysisResult, analyze_paths
from ..pipeline.analysis import TimingModel, analyze_pipeline


@dataclass
class WCETResult:
    """Everything the analyzer derived about one task."""

    program: Program
    config: MachineConfig
    binary_cfg: BinaryCFG
    graph: TaskGraph
    values: ValueAnalysisResult
    loop_bounds: Dict[NodeId, LoopBound]
    icache: ICacheResult
    dcache: DCacheResult
    timing: TimingModel
    path: PathAnalysisResult
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Work counters per solver phase: the shared WTO kernel's
    #: :class:`FixpointStats` for "value"/"icache"/"dcache"/"pipeline",
    #: and the LP/ILP engine's :class:`~repro.ilp.stats.ILPStats` for
    #: "path" — alongside the wall clocks in :attr:`phase_seconds`.
    solver_stats: Dict[str, object] = field(default_factory=dict)
    #: The context-sensitivity policy the task graph was expanded under.
    context_policy: Optional[ContextPolicy] = None
    #: Artifact-cache provenance: phase name -> "hit" | "miss".  Empty
    #: when the analysis ran without a phase cache.
    cache_events: Dict[str, str] = field(default_factory=dict)
    #: The abstract-domain implementation the analysis ran under
    #: (:mod:`repro.domainimpl`); bounds are identical either way.
    domain_impl: Optional[str] = None
    #: Per-phase ``cProfile.Profile`` objects when the analysis ran
    #: with ``profile=True`` (``repro wcet --profile``).
    profiles: Dict[str, object] = field(default_factory=dict)

    @property
    def wcet_cycles(self) -> int:
        """The verified upper bound on execution time in cycles."""
        return self.path.wcet_cycles

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def unbounded_loops(self) -> Sequence[NodeId]:
        return [header for header, bound in self.loop_bounds.items()
                if not bound.is_bounded]

    def summary(self) -> str:
        """One-paragraph textual summary (full report in repro.report)."""
        stats = self.values.precision()
        lines = [
            f"WCET bound: {self.wcet_cycles} cycles "
            f"(LP relaxation {self.path.lp_bound:.1f}, "
            f"{'integral' if self.path.integral else 'fractional'}, "
            f"{self.timing.model} timing model)",
            f"Task graph: {self.graph.node_count()} blocks, "
            f"{self.graph.edge_count()} edges, "
            f"{len(self.graph.contexts())} contexts "
            f"[{self.graph.policy.describe()}]",
            f"Value analysis: {stats.exact}/{stats.total} accesses exact "
            f"({100 * stats.exact_ratio:.1f}%)",
            f"I-cache: {self.icache.stats.always_hit} AH / "
            f"{self.icache.stats.always_miss} AM / "
            f"{self.icache.stats.persistent} PS / "
            f"{self.icache.stats.not_classified} NC",
            f"D-cache: {self.dcache.stats.always_hit} AH / "
            f"{self.dcache.stats.always_miss} AM / "
            f"{self.dcache.stats.persistent} PS / "
            f"{self.dcache.stats.not_classified} NC",
            f"Infeasible edges pruned: "
            f"{len(self.values.infeasible_edges)}",
            f"Analysis time: {self.total_seconds * 1000:.1f} ms",
        ]
        return "\n".join(lines)


# -- Named analysis phases ------------------------------------------------------

#: The aiT pipeline's phases in execution order.  Every phase is one
#: ``phase_*`` function below, run under a shared :class:`PhaseRunner`.
PHASES = ("cfg", "value", "loopbounds", "icache", "dcache", "pipeline",
          "path")


class PhaseRunner:
    """Runs named phases, consulting an optional artifact cache.

    The cache protocol (implemented by
    :class:`repro.batch.cachestore.ArtifactCache`) is three methods:
    ``key(material) -> str`` (digest the key material, mixing in the
    cache's code-version salt), ``lookup(key) -> (hit, value)``, and
    ``store(key, value)``.  Without a cache the runner just computes.

    Phases must execute in :data:`PHASES` order under one runner: a
    phase's key material references the keys of its upstream phases
    (:meth:`key_of`), which is what makes invalidation transitive.
    """

    def __init__(self, cache=None):
        self.cache = cache
        self.keys: Dict[str, str] = {}
        self.events: Dict[str, str] = {}

    def key_of(self, phase: str) -> str:
        """The cache key an already-run upstream phase was stored under."""
        return self.keys[phase]

    def run(self, name, material, compute):
        """Run phase ``name``: serve ``compute()``'s value from the
        cache when the digest of ``material()`` is present, computing
        and storing it otherwise."""
        if self.cache is None:
            return compute()
        key = self.cache.key(material())
        self.keys[name] = key
        hit, value = self.cache.lookup(key)
        if hit:
            self.events[name] = "hit"
            return value
        value = compute()
        self.cache.store(key, value)
        self.events[name] = "miss"
        return value


def _mapping_material(mapping: Optional[Mapping]) -> str:
    """Stable key-material encoding of an annotation mapping."""
    if not mapping:
        return "-"
    parts = []
    for key in sorted(mapping):
        value = mapping[key]
        if isinstance(value, (list, tuple)):
            value = ",".join(str(item) for item in value)
        parts.append(f"{key}={value}")
    return ";".join(parts)


def _cache_config_material(config: CacheConfig) -> str:
    return (f"{config.num_sets}x{config.associativity}x"
            f"{config.line_size}p{config.miss_penalty}")


def phase_cfg(runner: PhaseRunner, program: Program,
              entry: Optional[int],
              indirect_targets: Optional[Dict[int, Sequence[int]]],
              policy: ContextPolicy) -> Tuple[BinaryCFG, TaskGraph]:
    """Phase 1: CFG reconstruction + context-sensitive expansion."""
    def material():
        return (f"cfg|{program.content_digest()}|entry={entry}"
                f"|indirect={_mapping_material(indirect_targets)}"
                f"|policy={policy.describe()}")

    def compute():
        binary_cfg = build_cfg(program, entry, indirect_targets)
        graph = expand_task(binary_cfg, policy=policy)
        return binary_cfg, graph

    return runner.run("cfg", material, compute)


def phase_value(runner: PhaseRunner, graph: TaskGraph,
                domain: Type[AbstractValue],
                register_ranges: Optional[Dict[int, Tuple[int, int]]],
                narrowing_passes: int, use_widening_thresholds: bool,
                memory_ranges: Optional[Dict[int, Tuple[int, int]]],
                impl: Optional[str] = None) -> ValueAnalysisResult:
    """Phase 2: interval/strided value analysis over the task graph."""
    # Non-interval domains always run the python implementation; key the
    # artifact by the implementation that actually executes so cached
    # states (which embed their memory representation) never mix.
    effective_impl = resolve_domain_impl(impl)
    if domain is not Interval:
        effective_impl = "python"

    def material():
        return (f"value|{runner.key_of('cfg')}"
                f"|domain={domain.__module__}.{domain.__qualname__}"
                f"|regs={_mapping_material(register_ranges)}"
                f"|narrow={narrowing_passes}"
                f"|wthresh={use_widening_thresholds}"
                f"|mem={_mapping_material(memory_ranges)}"
                f"|impl={effective_impl}")

    def compute():
        return analyze_values(
            graph, domain=domain, register_ranges=register_ranges,
            narrowing_passes=narrowing_passes,
            use_widening_thresholds=use_widening_thresholds,
            memory_ranges=memory_ranges, domain_impl=effective_impl)

    return runner.run("value", material, compute)


def phase_loopbounds(runner: PhaseRunner, values: ValueAnalysisResult,
                     manual_loop_bounds: Optional[Dict[int, int]]
                     ) -> Dict[NodeId, LoopBound]:
    """Phase 3: loop-bound derivation (plus manual annotations)."""
    def material():
        return (f"loopbounds|{runner.key_of('value')}"
                f"|manual={_mapping_material(manual_loop_bounds)}")

    return runner.run(
        "loopbounds", material,
        lambda: analyze_loop_bounds(values, manual_loop_bounds))


def phase_icache(runner: PhaseRunner, graph: TaskGraph,
                 config: CacheConfig,
                 impl: Optional[str] = None) -> ICacheResult:
    """Phase 4a: instruction-cache must/may/persistence analysis."""
    effective_impl = resolve_domain_impl(impl)

    def material():
        return (f"icache|{runner.key_of('cfg')}"
                f"|{_cache_config_material(config)}"
                f"|impl={effective_impl}")

    return runner.run(
        "icache", material,
        lambda: analyze_icache(graph, config, impl=effective_impl))


def phase_dcache(runner: PhaseRunner, graph: TaskGraph,
                 config: CacheConfig, values: ValueAnalysisResult,
                 use_value_analysis: bool,
                 impl: Optional[str] = None) -> DCacheResult:
    """Phase 4b: data-cache analysis fed by the value analysis."""
    effective_impl = resolve_domain_impl(impl)

    def material():
        return (f"dcache|{runner.key_of('cfg')}|{runner.key_of('value')}"
                f"|{_cache_config_material(config)}"
                f"|usevalue={use_value_analysis}"
                f"|impl={effective_impl}")

    return runner.run(
        "dcache", material,
        lambda: analyze_dcache(graph, config, values, use_value_analysis,
                               impl=effective_impl))


def phase_pipeline(runner: PhaseRunner, graph: TaskGraph,
                   config: MachineConfig, icache: ICacheResult,
                   dcache: DCacheResult) -> TimingModel:
    """Phase 5: pipeline timing (additive or abstract krisc5 states)."""
    def material():
        return (f"pipeline|{runner.key_of('cfg')}"
                f"|{runner.key_of('icache')}|{runner.key_of('dcache')}"
                f"|model={config.pipeline_model}"
                f"|cap={config.pipeline_state_cap}"
                f"|bp={config.branch_penalty}|mul={config.mul_extra}"
                f"|lus={config.load_use_stall}")

    return runner.run(
        "pipeline", material,
        lambda: analyze_pipeline(graph, config, icache, dcache))


def phase_path(runner: PhaseRunner, graph: TaskGraph,
               timing: TimingModel,
               loop_bounds: Dict[NodeId, LoopBound],
               values: ValueAnalysisResult, use_infeasible_paths: bool,
               integer: bool) -> PathAnalysisResult:
    """Phase 6: IPET path analysis over the timing model (ILP)."""
    def material():
        return (f"path|{runner.key_of('cfg')}|{runner.key_of('pipeline')}"
                f"|{runner.key_of('loopbounds')}|{runner.key_of('value')}"
                f"|infeasible={use_infeasible_paths}|integer={integer}")

    return runner.run(
        "path", material,
        lambda: analyze_paths(graph, timing, loop_bounds, values,
                              use_infeasible_paths, integer))


def analyze_loop_annotations(program: Program,
                             memory_ranges: Optional[
                                 Dict[int, Tuple[int, int]]] = None,
                             phase_cache=None,
                             domain_impl: Optional[str] = None
                             ) -> Dict[NodeId, LoopBound]:
    """The *discover* half of aiT's annotate workflow: run the
    default-parameter cfg/value/loopbounds prefix of the pipeline and
    return the loop-bound table, from which callers pick the unbounded
    headers to annotate manually.  Uses the same phase steps (and hence
    shares cached artifacts) as :func:`analyze_wcet`.
    """
    runner = PhaseRunner(phase_cache)
    _, graph = phase_cfg(runner, program, None, None, DEFAULT_POLICY)
    values = phase_value(runner, graph, Interval, None, 2, True,
                         memory_ranges, impl=domain_impl)
    return phase_loopbounds(runner, values, None)


def analyze_wcet(program: Program,
                 config: Optional[MachineConfig] = None,
                 entry: Optional[int] = None,
                 register_ranges: Optional[
                     Dict[int, Tuple[int, int]]] = None,
                 manual_loop_bounds: Optional[Dict[int, int]] = None,
                 indirect_targets: Optional[Dict[int, Sequence[int]]] = None,
                 domain: Type[AbstractValue] = Interval,
                 use_infeasible_paths: bool = True,
                 use_value_analysis_for_dcache: bool = True,
                 use_widening_thresholds: bool = True,
                 narrowing_passes: int = 2,
                 integer: bool = True,
                 context_policy: Optional[ContextPolicy] = None,
                 pipeline_model: Optional[str] = None,
                 memory_ranges: Optional[Dict[int, Tuple[int, int]]] = None,
                 phase_cache=None,
                 domain_impl: Optional[str] = None,
                 profile: bool = False
                 ) -> WCETResult:
    """Run the complete aiT pipeline on ``program``.

    Annotation parameters mirror aiT's user inputs:

    * ``register_ranges`` — value ranges of input registers at entry,
    * ``memory_ranges`` — value ranges of memory words the environment
      fills before the task runs (input buffers); without them the
      analysis would treat input data as the constants of the binary
      image, and bounds would not cover runs on other inputs,
    * ``manual_loop_bounds`` — iteration bounds for loops the analysis
      cannot bound, keyed by loop-header address (under a peeling
      policy the annotation still states the *full* iteration count;
      the analysis accounts the peeled copies itself),
    * ``indirect_targets`` — possible targets of indirect branches.

    ``context_policy`` selects the context-sensitivity scheme (VIVU
    loop peeling, k-limited call strings); the default reproduces the
    historical full-call-string expansion.  ``pipeline_model``
    overrides the config's timing model (``"additive"`` or
    ``"krisc5"``).  Ablation switches (DESIGN.md D1-D5) default to the
    full analysis.

    ``phase_cache`` plugs in a content-addressed artifact cache (see
    :mod:`repro.batch`): each phase is then served from the cache when
    its exact inputs were analyzed before, and
    :attr:`WCETResult.cache_events` records the per-phase hit/miss
    provenance.  Cached and uncached analyses produce bit-identical
    results.

    ``domain_impl`` selects the abstract-domain implementation
    (``python``/``numpy``) for the value and cache phases; the explicit
    argument wins over ``config.domain_impl``, which wins over
    ``$REPRO_DOMAIN_IMPL``.  ``profile=True`` wraps each phase in a
    ``cProfile`` run, collected in :attr:`WCETResult.profiles`.
    """
    config = config or MachineConfig.default()
    if pipeline_model is not None:
        config = config.with_model(pipeline_model)
    policy = context_policy or DEFAULT_POLICY
    impl = resolve_domain_impl(
        domain_impl if domain_impl is not None else config.domain_impl)
    phases: Dict[str, float] = {}
    profiles: Dict[str, object] = {}

    def timed(name):
        class _Timer:
            def __enter__(self):
                if profile:
                    self.profiler = cProfile.Profile()
                    self.profiler.enable()
                self.start = time.perf_counter()

            def __exit__(self, *exc):
                phases[name] = time.perf_counter() - self.start
                if profile:
                    self.profiler.disable()
                    profiles[name] = self.profiler
        return _Timer()

    runner = PhaseRunner(phase_cache)
    with timed("cfg"):
        binary_cfg, graph = phase_cfg(runner, program, entry,
                                      indirect_targets, policy)
    with timed("value"):
        values = phase_value(runner, graph, domain, register_ranges,
                             narrowing_passes, use_widening_thresholds,
                             memory_ranges, impl=impl)
    with timed("loopbounds"):
        loop_bounds = phase_loopbounds(runner, values, manual_loop_bounds)
    with timed("icache"):
        icache = phase_icache(runner, graph, config.icache, impl=impl)
    with timed("dcache"):
        dcache = phase_dcache(runner, graph, config.dcache, values,
                              use_value_analysis_for_dcache, impl=impl)
    with timed("pipeline"):
        timing = phase_pipeline(runner, graph, config, icache, dcache)
    with timed("path"):
        path = phase_path(runner, graph, timing, loop_bounds, values,
                          use_infeasible_paths, integer)

    solver_stats = {}
    if values.fixpoint.stats is not None:
        solver_stats["value"] = values.fixpoint.stats
    if icache.fixpoint_stats is not None:
        solver_stats["icache"] = icache.fixpoint_stats
    if dcache.fixpoint_stats is not None:
        solver_stats["dcache"] = dcache.fixpoint_stats
    if timing.fixpoint_stats is not None:
        solver_stats["pipeline"] = timing.fixpoint_stats
    if path.solver_stats is not None:
        solver_stats["path"] = path.solver_stats
    return WCETResult(program, config, binary_cfg, graph, values,
                      loop_bounds, icache, dcache, timing, path, phases,
                      solver_stats=solver_stats,
                      context_policy=graph.policy,
                      cache_events=dict(runner.events),
                      domain_impl=impl, profiles=profiles)
