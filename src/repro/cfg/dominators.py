"""Dominator computation (Cooper-Harvey-Kennedy iterative algorithm).

Works on any directed graph given as adjacency dictionaries, so it
serves both per-function CFGs and the whole-task expanded graph.
"""

from __future__ import annotations

from typing import (Dict, Hashable, Iterator, List, Optional, Set, Tuple,
                    TypeVar)

Node = TypeVar("Node", bound=Hashable)


def _postorder(entry: Node, succs: Dict[Node, List[Node]]) -> List[Node]:
    order: List[Node] = []
    visited: Set[Node] = {entry}
    stack = [(entry, iter(succs.get(entry, [])))]
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(succs.get(succ, []))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    return order


def compute_dominators(entry: Node,
                       succs: Dict[Node, List[Node]]) -> Dict[Node, Node]:
    """Immediate dominators of all nodes reachable from ``entry``.

    Returns a map ``node -> idom(node)``; the entry maps to itself.
    Unreachable nodes are absent.
    """
    order = _postorder(entry, succs)
    index = {node: i for i, node in enumerate(order)}
    reverse_postorder = list(reversed(order))

    preds: Dict[Node, List[Node]] = {node: [] for node in order}
    for node in order:
        for succ in succs.get(node, []):
            if succ in preds:
                preds[succ].append(node)

    idom: Dict[Node, Optional[Node]] = {node: None for node in order}
    idom[entry] = entry

    def intersect(a: Node, b: Node) -> Node:
        while a != b:
            while index[a] < index[b]:
                a = idom[a]
            while index[b] < index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in reverse_postorder:
            if node == entry:
                continue
            candidates = [p for p in preds[node] if idom[p] is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(other, new_idom)
            if idom[node] != new_idom:
                idom[node] = new_idom
                changed = True

    return {node: dom for node, dom in idom.items() if dom is not None}


def dominates(idom: Dict[Node, Node], a: Node, b: Node) -> bool:
    """True if ``a`` dominates ``b`` under the immediate-dominator map."""
    node = b
    while True:
        if node == a:
            return True
        parent = idom.get(node)
        if parent is None or parent == node:
            return a == node
        node = parent


def dominance_numbering(idom: Dict[Node, Node]
                        ) -> Tuple[Dict[Node, int], Dict[Node, int]]:
    """Euler-tour interval labels of the dominator tree.

    Returns ``(tin, tout)`` such that ``a`` dominates ``b`` iff
    ``tin[a] <= tin[b] < tout[a]`` — an O(1) query, versus the
    O(tree-depth) idom-chain walk of :func:`dominates`.  Loop detection
    asks one dominance question per CFG edge, so on deep expanded task
    graphs the chain walks dominate its runtime.
    """
    children: Dict[Node, List[Node]] = {}
    root: Optional[Node] = None
    for node, parent in idom.items():
        if parent == node:
            root = node
        else:
            children.setdefault(parent, []).append(node)
    tin: Dict[Node, int] = {}
    tout: Dict[Node, int] = {}
    if root is None:
        return tin, tout
    clock = 0
    stack: List[Tuple[Node, Iterator[Node]]] = \
        [(root, iter(children.get(root, [])))]
    tin[root] = clock
    clock += 1
    while stack:
        node, it = stack[-1]
        advanced = False
        for child in it:
            tin[child] = clock
            clock += 1
            stack.append((child, iter(children.get(child, []))))
            advanced = True
            break
        if not advanced:
            tout[node] = clock
            clock += 1
            stack.pop()
    return tin, tout


def dominance_frontier(entry: Node, succs: Dict[Node, List[Node]]
                       ) -> Dict[Node, Set[Node]]:
    """Dominance frontiers (Cytron et al.), occasionally useful for
    path-analysis refinements and exercised by tests."""
    idom = compute_dominators(entry, succs)
    frontier: Dict[Node, Set[Node]] = {node: set() for node in idom}
    preds: Dict[Node, List[Node]] = {node: [] for node in idom}
    for node in idom:
        for succ in succs.get(node, []):
            if succ in preds:
                preds[succ].append(node)
    for node in idom:
        if len(preds[node]) >= 2:
            for pred in preds[node]:
                runner = pred
                while runner != idom[node]:
                    frontier[runner].add(node)
                    runner = idom[runner]
    return frontier
