"""Control-flow graph data structures.

The CFG layer mirrors aiT's first phase: starting from the raw binary, it
recovers basic blocks, intra-procedural edges, and the call graph.  Two
graph levels exist:

* :class:`FunctionCFG` — one per function, blocks keyed by start address.
  Calls are *summarised*: a block ending in ``BL`` has a fall-through
  edge to the return site, and the call target is recorded on the block.
* :class:`TaskGraph` (see :mod:`repro.cfg.expand`) — the whole-task,
  context-expanded supergraph on which the value/cache/pipeline analyses
  and IPET run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..isa.instructions import Cond, Instruction, Opcode


class EdgeKind(enum.Enum):
    """Why control may flow along an edge."""

    FALLTHROUGH = "fallthrough"   # sequential successor
    TAKEN = "taken"               # conditional/unconditional branch taken
    CALL = "call"                 # BL/BLR into a callee (TaskGraph only)
    RETURN = "return"             # RET back to the return site (TaskGraph)


@dataclass(frozen=True)
class Edge:
    """A directed CFG edge."""

    source: int
    target: int
    kind: EdgeKind
    #: For TAKEN/FALLTHROUGH edges out of a conditional branch, the
    #: condition that must hold for this edge to be taken (used by value
    #: analysis to refine states per branch outcome).
    cond: Optional[Cond] = None


class BasicBlock:
    """A maximal straight-line instruction sequence."""

    def __init__(self, start: int, instructions: List[Instruction]):
        if not instructions:
            raise ValueError("basic block must contain instructions")
        self.start = start
        self.instructions = list(instructions)

    @property
    def end(self) -> int:
        """One past the last byte of the block."""
        return self.instructions[-1].address + 4

    @property
    def last(self) -> Instruction:
        return self.instructions[-1]

    @property
    def is_call_block(self) -> bool:
        return self.last.is_call

    @property
    def is_return_block(self) -> bool:
        return self.last.is_return

    @property
    def call_target(self) -> Optional[int]:
        """Static callee entry address if this block ends in ``BL``."""
        if self.last.opcode is Opcode.BL:
            return self.last.branch_target()
        return None

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return (f"BasicBlock(0x{self.start:x}..0x{self.end - 4:x}, "
                f"{len(self)} instrs)")


class FunctionCFG:
    """The control-flow graph of a single function."""

    def __init__(self, name: str, entry: int):
        self.name = name
        self.entry = entry
        self.blocks: Dict[int, BasicBlock] = {}
        self._succs: Dict[int, List[Edge]] = {}
        self._preds: Dict[int, List[Edge]] = {}

    def add_block(self, block: BasicBlock) -> None:
        if block.start in self.blocks:
            raise ValueError(f"duplicate block at 0x{block.start:x}")
        self.blocks[block.start] = block
        self._succs.setdefault(block.start, [])
        self._preds.setdefault(block.start, [])

    def add_edge(self, edge: Edge) -> None:
        if edge.source not in self.blocks:
            raise ValueError(f"edge from unknown block 0x{edge.source:x}")
        if edge.target not in self.blocks:
            raise ValueError(f"edge to unknown block 0x{edge.target:x}")
        self._succs[edge.source].append(edge)
        self._preds[edge.target].append(edge)

    def successors(self, start: int) -> List[Edge]:
        return self._succs[start]

    def predecessors(self, start: int) -> List[Edge]:
        return self._preds[start]

    @property
    def entry_block(self) -> BasicBlock:
        return self.blocks[self.entry]

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks that leave the function (RET or HALT)."""
        return [block for block in self.blocks.values()
                if block.is_return_block
                or block.last.opcode is Opcode.HALT]

    def call_sites(self) -> List[BasicBlock]:
        """Blocks ending in a call, in address order."""
        return sorted((b for b in self.blocks.values() if b.is_call_block),
                      key=lambda b: b.start)

    def block_order(self) -> List[BasicBlock]:
        """Blocks in ascending address order."""
        return [self.blocks[a] for a in sorted(self.blocks)]

    def reverse_postorder(self) -> List[int]:
        """Block start addresses in reverse postorder from the entry."""
        visited = set()
        order: List[int] = []

        def visit(start: int) -> None:
            stack = [(start, iter(self._succs[start]))]
            visited.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for edge in it:
                    if edge.target not in visited:
                        visited.add(edge.target)
                        stack.append(
                            (edge.target, iter(self._succs[edge.target])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        return list(reversed(order))

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks.values())

    def __repr__(self) -> str:
        return (f"FunctionCFG({self.name!r}, entry=0x{self.entry:x}, "
                f"{len(self.blocks)} blocks)")


@dataclass
class CallGraph:
    """Who calls whom, with call-site granularity."""

    #: function entry -> list of (call site address, callee entry)
    calls: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    #: function entry -> name
    names: Dict[int, str] = field(default_factory=dict)

    def add_function(self, entry: int, name: str) -> None:
        self.calls.setdefault(entry, [])
        self.names[entry] = name

    def add_call(self, caller: int, site: int, callee: int) -> None:
        self.calls.setdefault(caller, []).append((site, callee))

    def callees(self, entry: int) -> List[int]:
        return [callee for _, callee in self.calls.get(entry, [])]

    def topological_order(self, root: int) -> List[int]:
        """Callees-first order of functions reachable from ``root``.

        Raises :class:`RecursionError` on call-graph cycles (recursion is
        outside the supported program class, as in most WCET tools).
        """
        order: List[int] = []
        state: Dict[int, str] = {}

        def visit(node: int, chain: Tuple[int, ...]) -> None:
            mark = state.get(node)
            if mark == "done":
                return
            if mark == "active":
                names = " -> ".join(
                    self.names.get(f, hex(f)) for f in chain + (node,))
                raise RecursionError(
                    f"recursive call cycle not supported: {names}")
            state[node] = "active"
            for callee in self.callees(node):
                visit(callee, chain + (node,))
            state[node] = "done"
            order.append(node)

        visit(root, ())
        return order
