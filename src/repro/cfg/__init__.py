"""CFG reconstruction from binaries, dominators, loops, and the
context-expanded whole-task graph (phase 1 of the aiT pipeline)."""

from .builder import BinaryCFG, CFGBuilder, CFGError, build_cfg
from .contexts import (Context, ContextPolicy, FullCallString,
                       KLimitedCallString, VIVU, make_policy)
from .dominators import compute_dominators, dominance_frontier, dominates
from .expand import (ExpansionError, NodeId, TaskEdge, TaskGraph,
                     expand_task)
from .graph import (BasicBlock, CallGraph, Edge, EdgeKind, FunctionCFG)
from .loops import IrreducibleLoopError, Loop, LoopForest, find_loops

__all__ = [
    "BinaryCFG", "CFGBuilder", "CFGError", "build_cfg",
    "compute_dominators", "dominance_frontier", "dominates",
    "Context", "ContextPolicy", "FullCallString", "KLimitedCallString",
    "VIVU", "make_policy",
    "ExpansionError", "NodeId", "TaskEdge", "TaskGraph",
    "expand_task",
    "BasicBlock", "CallGraph", "Edge", "EdgeKind", "FunctionCFG",
    "IrreducibleLoopError", "Loop", "LoopForest", "find_loops",
]
