"""CFG reconstruction from KRISC binaries.

This is phase 1 of the aiT pipeline: "CFG building decodes, i.e.
identifies instructions, and reconstructs the control-flow graph (CFG)
from a binary program".  Reconstruction is recursive-descent: starting
from the program entry, instructions are decoded on demand and control
flow is followed, so data interleaved in the text section is never
misinterpreted as code.

Indirect branches (``BR``/``BLR``) cannot be resolved from the binary
alone.  Like aiT, the builder accepts user *annotations* mapping an
indirect branch address to its possible targets; an unannotated indirect
branch is a hard reconstruction error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..isa.encoding import DecodingError
from ..isa.instructions import Instruction, Opcode
from ..isa.program import Program
from .graph import BasicBlock, CallGraph, Edge, EdgeKind, FunctionCFG


class CFGError(ValueError):
    """The binary's control flow cannot be reconstructed."""


@dataclass
class BinaryCFG:
    """Reconstruction result: per-function CFGs plus the call graph."""

    program: Program
    functions: Dict[int, FunctionCFG]
    call_graph: CallGraph
    entry: int

    @property
    def entry_function(self) -> FunctionCFG:
        return self.functions[self.entry]

    def function_by_name(self, name: str) -> FunctionCFG:
        for function in self.functions.values():
            if function.name == name:
                return function
        raise KeyError(f"no function named {name!r}")

    def total_blocks(self) -> int:
        return sum(len(f.blocks) for f in self.functions.values())

    def total_instructions(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())


class CFGBuilder:
    """Recursive-descent CFG reconstruction."""

    def __init__(self, program: Program,
                 indirect_targets: Optional[Dict[int, Sequence[int]]] = None):
        self.program = program
        self.indirect_targets = {
            addr: list(targets)
            for addr, targets in (indirect_targets or {}).items()}

    def build(self, entry: Optional[int] = None) -> BinaryCFG:
        """Reconstruct all functions reachable from ``entry``."""
        root = self.program.entry if entry is None else entry
        call_graph = CallGraph()
        functions: Dict[int, FunctionCFG] = {}
        pending = [root]
        seen: Set[int] = set()
        while pending:
            func_entry = pending.pop()
            if func_entry in seen:
                continue
            seen.add(func_entry)
            cfg, callees = self._build_function(func_entry)
            functions[func_entry] = cfg
            call_graph.add_function(func_entry, cfg.name)
            for site, callee in callees:
                call_graph.add_call(func_entry, site, callee)
                pending.append(callee)
        return BinaryCFG(self.program, functions, call_graph, root)

    # -- Single function ---------------------------------------------------

    def _build_function(self, entry: int
                        ) -> Tuple[FunctionCFG, List[Tuple[int, int]]]:
        name = self.program.symbol_at(entry) or f"func_0x{entry:x}"
        instructions = self._explore(entry, name)
        leaders = self._find_leaders(entry, instructions)
        cfg = FunctionCFG(name, entry)
        blocks = self._form_blocks(instructions, leaders)
        for block in blocks:
            cfg.add_block(block)
        callees = self._connect(cfg, blocks)
        return cfg, callees

    def _decode(self, address: int, where: str) -> Instruction:
        if not self.program.is_code_address(address):
            raise CFGError(
                f"{where}: control flows to non-code address 0x{address:x}")
        try:
            return self.program.instruction_at(address)
        except DecodingError as exc:
            raise CFGError(
                f"{where}: undecodable instruction at 0x{address:x}: {exc}"
            ) from exc

    def _explore(self, entry: int, name: str) -> Dict[int, Instruction]:
        """Decode every address intraprocedurally reachable from ``entry``."""
        instructions: Dict[int, Instruction] = {}
        worklist = [entry]
        while worklist:
            address = worklist.pop()
            if address in instructions:
                continue
            instr = self._decode(address, name)
            instructions[address] = instr
            worklist.extend(self._intra_successors(instr, name))
        return instructions

    def _intra_successors(self, instr: Instruction, name: str) -> List[int]:
        """Addresses control may reach next, staying inside the function."""
        address = instr.address
        op = instr.opcode
        if op is Opcode.B:
            return [instr.branch_target()]
        if op is Opcode.BCC:
            return [instr.branch_target(), address + 4]
        if op in (Opcode.RET, Opcode.HALT):
            return []
        if op is Opcode.BR:
            targets = self.indirect_targets.get(address)
            if targets is None:
                raise CFGError(
                    f"{name}: unannotated indirect branch at 0x{address:x}")
            return list(targets)
        # BL/BLR: execution continues at the return site; the callee is
        # handled through the call graph.
        return [address + 4]

    def _find_leaders(self, entry: int,
                      instructions: Dict[int, Instruction]) -> Set[int]:
        leaders = {entry}
        for address, instr in instructions.items():
            if not instr.is_control_flow:
                continue
            successor = address + 4
            if successor in instructions:
                leaders.add(successor)
            target = instr.branch_target()
            if target is not None and instr.opcode is not Opcode.BL \
                    and target in instructions:
                leaders.add(target)
            if instr.opcode is Opcode.BR:
                for t in self.indirect_targets.get(address, []):
                    leaders.add(t)
        return leaders

    def _form_blocks(self, instructions: Dict[int, Instruction],
                     leaders: Set[int]) -> List[BasicBlock]:
        blocks: List[BasicBlock] = []
        for leader in sorted(leaders):
            body = []
            address = leader
            while address in instructions:
                instr = instructions[address]
                body.append(instr)
                if instr.is_control_flow or (address + 4) in leaders:
                    break
                address += 4
            blocks.append(BasicBlock(leader, body))
        return blocks

    def _connect(self, cfg: FunctionCFG, blocks: List[BasicBlock]
                 ) -> List[Tuple[int, int]]:
        callees: List[Tuple[int, int]] = []
        for block in blocks:
            last = block.last
            op = last.opcode
            if op is Opcode.B:
                cfg.add_edge(Edge(block.start, last.branch_target(),
                                  EdgeKind.TAKEN))
            elif op is Opcode.BCC:
                cfg.add_edge(Edge(block.start, last.branch_target(),
                                  EdgeKind.TAKEN, cond=last.cond))
                cfg.add_edge(Edge(block.start, last.address + 4,
                                  EdgeKind.FALLTHROUGH,
                                  cond=last.cond.negated()))
            elif op is Opcode.BR:
                for target in self.indirect_targets[last.address]:
                    cfg.add_edge(Edge(block.start, target, EdgeKind.TAKEN))
            elif op in (Opcode.RET, Opcode.HALT):
                pass
            elif op is Opcode.BL:
                callees.append((last.address, last.branch_target()))
                cfg.add_edge(Edge(block.start, last.address + 4,
                                  EdgeKind.FALLTHROUGH))
            elif op is Opcode.BLR:
                targets = self.indirect_targets.get(last.address)
                if targets is None:
                    raise CFGError(
                        f"{cfg.name}: unannotated indirect call at "
                        f"0x{last.address:x}")
                for target in targets:
                    callees.append((last.address, target))
                cfg.add_edge(Edge(block.start, last.address + 4,
                                  EdgeKind.FALLTHROUGH))
            else:
                # Block was split because its successor is a leader.
                cfg.add_edge(Edge(block.start, block.end,
                                  EdgeKind.FALLTHROUGH))
        return callees


def build_cfg(program: Program, entry: Optional[int] = None,
              indirect_targets: Optional[Dict[int, Sequence[int]]] = None
              ) -> BinaryCFG:
    """Reconstruct the CFG of ``program`` (phase 1 of the aiT pipeline)."""
    return CFGBuilder(program, indirect_targets).build(entry)
