"""Whole-task context expansion ("virtual inlining").

aiT analyses each task interprocedurally by distinguishing *call
contexts*: the same function body is analysed once per chain of call
sites leading to it.  We realise this by expanding the per-function CFGs
into a single :class:`TaskGraph` whose nodes are ``(context, block)``
pairs, where a context is the tuple of call-site addresses on the
abstract call stack.

On the expanded graph every later phase — value analysis, cache
analysis, pipeline analysis, and IPET — becomes a plain fixpoint /
linear program over one graph, with call and return edges as ordinary
(but specially tagged) edges.  Recursion is rejected up front, which
keeps the expansion finite (the standard restriction for WCET tools).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..isa.instructions import Cond, Opcode
from .builder import BinaryCFG
from .graph import BasicBlock, EdgeKind

#: A call context: addresses of the call sites on the abstract stack.
Context = Tuple[int, ...]


@dataclass(frozen=True)
class NodeId:
    """Identity of a task-graph node: a basic block in a call context."""

    context: Context
    block: int

    def __repr__(self) -> str:
        chain = "/".join(f"{site:x}" for site in self.context)
        return f"<{chain or 'root'}:0x{self.block:x}>"


@dataclass(frozen=True)
class TaskEdge:
    """A directed edge of the expanded task graph."""

    source: NodeId
    target: NodeId
    kind: EdgeKind
    cond: Optional[Cond] = None


class TaskGraph:
    """The context-expanded whole-task control-flow graph."""

    def __init__(self, binary: BinaryCFG):
        self.binary = binary
        self.blocks: Dict[NodeId, BasicBlock] = {}
        self.function_of: Dict[NodeId, int] = {}
        self._succs: Dict[NodeId, List[TaskEdge]] = {}
        self._preds: Dict[NodeId, List[TaskEdge]] = {}
        self.entry: Optional[NodeId] = None
        # Derived-structure caches (topological order, adjacency).
        # The graph is effectively immutable once expand_task returns,
        # so every analysis phase shares them instead of recomputing
        # per narrowing pass / per solver.  (The predecessor index
        # itself is prebuilt in ``_preds`` during construction and
        # served by :meth:`predecessors`.)
        self._topo_cache: Optional[List[NodeId]] = None
        self._adjacency_cache: Optional[Dict[NodeId, List[NodeId]]] = None

    @staticmethod
    def node_key(node: NodeId) -> Tuple[Context, int]:
        """Deterministic total order on nodes (for reproducible
        worklist iteration and WTO construction)."""
        return (node.context, node.block)

    # -- Construction -------------------------------------------------------

    def _invalidate_caches(self) -> None:
        self._topo_cache = None
        self._adjacency_cache = None

    def _add_node(self, node: NodeId, block: BasicBlock,
                  function: int) -> None:
        self.blocks[node] = block
        self.function_of[node] = function
        self._succs.setdefault(node, [])
        self._preds.setdefault(node, [])
        self._invalidate_caches()

    def _add_edge(self, edge: TaskEdge) -> None:
        self._succs[edge.source].append(edge)
        self._preds[edge.target].append(edge)
        self._invalidate_caches()

    # -- Queries -------------------------------------------------------------

    def successors(self, node: NodeId) -> List[TaskEdge]:
        return self._succs[node]

    def predecessors(self, node: NodeId) -> List[TaskEdge]:
        return self._preds[node]

    def nodes(self) -> List[NodeId]:
        return list(self.blocks)

    def exit_nodes(self) -> List[NodeId]:
        """Nodes with no successors (task end: HALT, or final RET)."""
        return [node for node, edges in self._succs.items() if not edges]

    def adjacency(self) -> Dict[NodeId, List[NodeId]]:
        """Successor map in plain-node form (for dominators/loops).

        Cached; callers must treat the result as read-only.
        """
        if self._adjacency_cache is None:
            self._adjacency_cache = {
                node: [e.target for e in edges]
                for node, edges in self._succs.items()}
        return self._adjacency_cache

    def function_name(self, node: NodeId) -> str:
        return self.binary.functions[self.function_of[node]].name

    def contexts(self) -> Set[Context]:
        return {node.context for node in self.blocks}

    def node_count(self) -> int:
        return len(self.blocks)

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._succs.values())

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks.values())

    def topological_order(self) -> List[NodeId]:
        """Reverse postorder from the entry (a topological order of the
        acyclic condensation; loop headers precede their bodies).

        Cached after the first call (it used to be recomputed inside
        every narrowing pass); callers must treat it as read-only.
        """
        if self._topo_cache is None:
            self._topo_cache = self._compute_topological_order()
        return self._topo_cache

    def _compute_topological_order(self) -> List[NodeId]:
        visited: Set[NodeId] = {self.entry}
        order: List[NodeId] = []
        stack = [(self.entry, iter(self._succs[self.entry]))]
        while stack:
            node, it = stack[-1]
            advanced = False
            for edge in it:
                if edge.target not in visited:
                    visited.add(edge.target)
                    stack.append(
                        (edge.target, iter(self._succs[edge.target])))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        return list(reversed(order))

    def __repr__(self) -> str:
        return (f"TaskGraph({self.node_count()} nodes, "
                f"{self.edge_count()} edges, "
                f"{len(self.contexts())} contexts)")


class ExpansionError(ValueError):
    """The task cannot be context-expanded (e.g. recursion)."""


def expand_task(binary: BinaryCFG, max_contexts: int = 100_000) -> TaskGraph:
    """Virtually inline all calls, producing the whole-task graph.

    ``max_contexts`` guards against pathological call-site explosion.
    """
    # Recursion check (raises RecursionError with the offending cycle).
    binary.call_graph.topological_order(binary.entry)

    graph = TaskGraph(binary)
    root_ctx: Context = ()
    worklist: List[Tuple[Context, int]] = [(root_ctx, binary.entry)]
    instantiated: Set[Tuple[Context, int]] = set()

    while worklist:
        context, func_entry = worklist.pop()
        if (context, func_entry) in instantiated:
            continue
        instantiated.add((context, func_entry))
        if len(instantiated) > max_contexts:
            raise ExpansionError(
                f"context expansion exceeds {max_contexts} instances")
        function = binary.functions[func_entry]
        for block in function.blocks.values():
            graph._add_node(NodeId(context, block.start), block, func_entry)
        for block in function.blocks.values():
            source = NodeId(context, block.start)
            if block.is_call_block:
                site = block.last.address
                callee_context = context + (site,)
                return_site = site + 4
                for callee in _call_targets(binary, func_entry, site):
                    worklist.append((callee_context, callee))
                # Call/return edges are added in a second pass, once the
                # callee instance surely exists.
            else:
                for edge in function.successors(block.start):
                    graph._add_edge(TaskEdge(
                        source, NodeId(context, edge.target), edge.kind,
                        edge.cond))

    # Second pass: connect call and return edges.
    for (context, func_entry) in instantiated:
        function = binary.functions[func_entry]
        for block in function.call_sites():
            site = block.last.address
            source = NodeId(context, block.start)
            callee_context = context + (site,)
            return_site = site + 4
            for callee in _call_targets(binary, func_entry, site):
                callee_cfg = binary.functions[callee]
                graph._add_edge(TaskEdge(
                    source, NodeId(callee_context, callee_cfg.entry),
                    EdgeKind.CALL))
                for exit_block in callee_cfg.exit_blocks():
                    if exit_block.last.opcode is Opcode.HALT:
                        continue
                    graph._add_edge(TaskEdge(
                        NodeId(callee_context, exit_block.start),
                        NodeId(context, return_site), EdgeKind.RETURN))

    graph.entry = NodeId(root_ctx, binary.functions[binary.entry].entry)
    return graph


def _call_targets(binary: BinaryCFG, caller: int, site: int) -> List[int]:
    return [callee for call_site, callee
            in binary.call_graph.calls.get(caller, [])
            if call_site == site]
