"""Whole-task context expansion ("virtual inlining / virtual unrolling").

aiT analyses each task interprocedurally by distinguishing *execution
contexts* (the VIVU scheme, Section 3).  We realise this by expanding
the per-function CFGs into a single :class:`TaskGraph` whose nodes are
``(context, block)`` pairs.  What counts as a context is decided by a
pluggable :class:`~repro.cfg.contexts.ContextPolicy`:

* the **call-string component** is built during expansion — one
  function-body copy per chain of call sites (possibly truncated under
  k-limiting), and
* the **loop-iteration component** is built by a post-pass that peels
  the first ``policy.peel`` iterations of every loop of the expanded
  graph into their own copies, rerouting the loop-back edges of the
  peeled copy into the steady-state copy.

On the expanded graph every later phase — value analysis, cache
analysis, pipeline analysis, and IPET — becomes a plain fixpoint /
linear program over one graph, with call and return edges as ordinary
(but specially tagged) edges.  Recursion is rejected up front
(:class:`ExpansionError`), which keeps the expansion finite (the
standard restriction for WCET tools).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..isa.instructions import Cond, Opcode
from .builder import BinaryCFG
from .contexts import DEFAULT_POLICY, Context, ContextPolicy
from .graph import BasicBlock, EdgeKind


@dataclass(frozen=True)
class NodeId:
    """Identity of a task-graph node: a basic block in a call context.

    Every fixpoint phase keys its worklists and state maps by NodeId,
    so ``__hash__``/``__eq__`` are on the hot path of all of them: the
    hash is computed once and cached (contexts hash nested tuples), and
    equality checks the cheap block number before the call context.
    """

    context: Context
    block: int

    def __repr__(self) -> str:
        return f"<{self.context.label}:0x{self.block:x}>"

    def __hash__(self) -> int:
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.context, self.block))
            object.__setattr__(self, "_hash", h)
        return h

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is not NodeId:
            return NotImplemented
        return self.block == other.block and self.context == other.context


@dataclass(frozen=True)
class TaskEdge:
    """A directed edge of the expanded task graph."""

    source: NodeId
    target: NodeId
    kind: EdgeKind
    cond: Optional[Cond] = None


class TaskGraph:
    """The context-expanded whole-task control-flow graph."""

    def __init__(self, binary: BinaryCFG,
                 policy: Optional[ContextPolicy] = None):
        self.binary = binary
        #: The context policy this graph was expanded under.
        self.policy: ContextPolicy = policy or DEFAULT_POLICY
        self.blocks: Dict[NodeId, BasicBlock] = {}
        self.function_of: Dict[NodeId, int] = {}
        self._succs: Dict[NodeId, List[TaskEdge]] = {}
        self._preds: Dict[NodeId, List[TaskEdge]] = {}
        self.entry: Optional[NodeId] = None
        # Derived-structure caches (topological order, adjacency).
        # The graph is effectively immutable once expand_task returns,
        # so every analysis phase shares them instead of recomputing
        # per narrowing pass / per solver.  (The predecessor index
        # itself is prebuilt in ``_preds`` during construction and
        # served by :meth:`predecessors`.)
        self._topo_cache: Optional[List[NodeId]] = None
        self._adjacency_cache: Optional[Dict[NodeId, List[NodeId]]] = None

    @staticmethod
    def node_key(node: NodeId) -> Tuple[Context, int]:
        """Deterministic total order on nodes (for reproducible
        worklist iteration and WTO construction)."""
        return (node.context, node.block)

    # -- Construction -------------------------------------------------------

    def _invalidate_caches(self) -> None:
        self._topo_cache = None
        self._adjacency_cache = None

    def _add_node(self, node: NodeId, block: BasicBlock,
                  function: int) -> None:
        self.blocks[node] = block
        self.function_of[node] = function
        self._succs.setdefault(node, [])
        self._preds.setdefault(node, [])
        self._invalidate_caches()

    def _add_edge(self, edge: TaskEdge) -> None:
        self._succs[edge.source].append(edge)
        self._preds[edge.target].append(edge)
        self._invalidate_caches()

    # -- Queries -------------------------------------------------------------

    def successors(self, node: NodeId) -> List[TaskEdge]:
        return self._succs[node]

    def predecessors(self, node: NodeId) -> List[TaskEdge]:
        return self._preds[node]

    def nodes(self) -> List[NodeId]:
        return list(self.blocks)

    def exit_nodes(self) -> List[NodeId]:
        """Nodes with no successors (task end: HALT, or final RET)."""
        return [node for node, edges in self._succs.items() if not edges]

    def adjacency(self) -> Dict[NodeId, List[NodeId]]:
        """Successor map in plain-node form (for dominators/loops).

        Cached; callers must treat the result as read-only.
        """
        if self._adjacency_cache is None:
            self._adjacency_cache = {
                node: [e.target for e in edges]
                for node, edges in self._succs.items()}
        return self._adjacency_cache

    def function_name(self, node: NodeId) -> str:
        return self.binary.functions[self.function_of[node]].name

    def contexts(self) -> Set[Context]:
        return {node.context for node in self.blocks}

    def peeled_contexts(self) -> Set[Context]:
        """Contexts that are first-iteration (peeled) loop copies."""
        peel = self.policy.peel
        if not peel:
            return set()
        return {ctx for ctx in self.contexts()
                if ctx.has_phase_below(peel)}

    def node_count(self) -> int:
        return len(self.blocks)

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._succs.values())

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks.values())

    def topological_order(self) -> List[NodeId]:
        """Reverse postorder from the entry (a topological order of the
        acyclic condensation; loop headers precede their bodies).

        Cached after the first call (it used to be recomputed inside
        every narrowing pass); callers must treat it as read-only.
        """
        if self._topo_cache is None:
            self._topo_cache = self._compute_topological_order()
        return self._topo_cache

    def _compute_topological_order(self) -> List[NodeId]:
        visited: Set[NodeId] = {self.entry}
        order: List[NodeId] = []
        stack = [(self.entry, iter(self._succs[self.entry]))]
        while stack:
            node, it = stack[-1]
            advanced = False
            for edge in it:
                if edge.target not in visited:
                    visited.add(edge.target)
                    stack.append(
                        (edge.target, iter(self._succs[edge.target])))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        return list(reversed(order))

    def __repr__(self) -> str:
        return (f"TaskGraph({self.node_count()} nodes, "
                f"{self.edge_count()} edges, "
                f"{len(self.contexts())} contexts, "
                f"policy={self.policy.describe()})")


class ExpansionError(ValueError):
    """The task cannot be context-expanded (e.g. recursion)."""


def expand_task(binary: BinaryCFG, max_contexts: int = 100_000,
                policy: Optional[ContextPolicy] = None) -> TaskGraph:
    """Virtually inline all calls (and, under a peeling policy,
    virtually unroll all loops), producing the whole-task graph.

    ``max_contexts`` guards against pathological call-site explosion;
    ``policy`` selects the context-sensitivity scheme (defaults to
    :class:`~repro.cfg.contexts.FullCallString`).
    """
    policy = policy or DEFAULT_POLICY
    # Recursion check: surface call-graph cycles as an ExpansionError
    # naming the offending cycle instead of leaking the call graph's
    # internal RecursionError.
    try:
        binary.call_graph.topological_order(binary.entry)
    except RecursionError as exc:
        raise ExpansionError(f"cannot context-expand task: {exc}") from None

    graph = TaskGraph(binary, policy)
    root_ctx = policy.root()
    worklist: List[Tuple[Context, int]] = [(root_ctx, binary.entry)]
    instantiated: Set[Tuple[Context, int]] = set()

    while worklist:
        context, func_entry = worklist.pop()
        if (context, func_entry) in instantiated:
            continue
        instantiated.add((context, func_entry))
        if len(instantiated) > max_contexts:
            raise ExpansionError(
                f"context expansion exceeds {max_contexts} instances")
        function = binary.functions[func_entry]
        for block in function.blocks.values():
            graph._add_node(NodeId(context, block.start), block, func_entry)
        for block in function.blocks.values():
            source = NodeId(context, block.start)
            if block.is_call_block:
                site = block.last.address
                callee_context = policy.call_context(context, site)
                for callee in _call_targets(binary, func_entry, site):
                    worklist.append((callee_context, callee))
                # Call/return edges are added in a second pass, once the
                # callee instance surely exists.
            else:
                for edge in function.successors(block.start):
                    graph._add_edge(TaskEdge(
                        source, NodeId(context, edge.target), edge.kind,
                        edge.cond))

    # Second pass: connect call and return edges.  Iterated in sorted
    # (context, function) order so edge insertion order — and hence WTO
    # iteration order and reports — is reproducible across runs.
    for (context, func_entry) in sorted(instantiated):
        function = binary.functions[func_entry]
        for block in function.call_sites():
            site = block.last.address
            source = NodeId(context, block.start)
            callee_context = policy.call_context(context, site)
            return_site = site + 4
            for callee in _call_targets(binary, func_entry, site):
                callee_cfg = binary.functions[callee]
                graph._add_edge(TaskEdge(
                    source, NodeId(callee_context, callee_cfg.entry),
                    EdgeKind.CALL))
                for exit_block in callee_cfg.exit_blocks():
                    if exit_block.last.opcode is Opcode.HALT:
                        continue
                    graph._add_edge(TaskEdge(
                        NodeId(callee_context, exit_block.start),
                        NodeId(context, return_site), EdgeKind.RETURN))

    graph.entry = NodeId(root_ctx, binary.functions[binary.entry].entry)
    if policy.peel:
        graph = _peel_loops(graph, policy.peel, max_contexts)
    return graph


def _call_targets(binary: BinaryCFG, caller: int, site: int) -> List[int]:
    return [callee for call_site, callee
            in binary.call_graph.calls.get(caller, [])
            if call_site == site]


# -- Virtual unrolling (the VIVU iteration component) ---------------------------


def _peel_loops(graph: TaskGraph, peel: int,
                max_contexts: int) -> TaskGraph:
    """Peel the first ``peel`` iterations of every loop of the expanded
    graph into their own context copies.

    Every node inside ``d`` nested loops is replicated once per phase
    vector in ``{0..peel}^d``; phases below ``peel`` are the peeled
    iteration copies, phase ``peel`` is the steady state.  Loop-back
    edges of a peeled copy are rerouted into the next phase (the
    steady-state copy once ``peel`` is reached), and loop-entry edges
    target phase 0 — so the peeled copies form an acyclic prologue and
    only the steady-state copy remains a natural loop.  Because loops
    of the *expanded* graph are peeled, a callee invoked from inside a
    loop body is duplicated per iteration context as well (virtual
    inlining before virtual unrolling, as in aiT).
    """
    from .loops import find_loops

    forest = find_loops(graph.entry, graph.adjacency())
    if not len(forest):
        return graph

    # Loop chain per node, outermost to innermost.  Loops at equal
    # depth are disjoint, so ascending-depth insertion yields the chain
    # in nesting order.
    chain: Dict[NodeId, List] = {node: [] for node in graph.blocks}
    for loop in sorted(forest.loops, key=lambda l: l.depth):
        for node in loop.body:
            chain[node].append(loop)

    def peeled_id(node: NodeId, phases: Tuple[int, ...]) -> NodeId:
        if not phases:
            return node
        iters = tuple((loop.header.block, phase)
                      for loop, phase in zip(chain[node], phases))
        return NodeId(node.context.with_iters(iters), node.block)

    peeled = TaskGraph(graph.binary, graph.policy)
    ordered = sorted(graph.blocks, key=TaskGraph.node_key)
    contexts: Set[Context] = set()
    for node in ordered:
        block = graph.blocks[node]
        function = graph.function_of[node]
        for phases in product(range(peel + 1), repeat=len(chain[node])):
            copy = peeled_id(node, phases)
            contexts.add(copy.context)
            if len(contexts) > max_contexts:
                raise ExpansionError(
                    f"loop peeling exceeds {max_contexts} contexts; "
                    f"reduce peel or annotate the loop nest")
            peeled._add_node(copy, block, function)

    for node in ordered:
        src_chain = chain[node]
        for edge in graph.successors(node):
            tgt_chain = chain[edge.target]
            tgt_loop = forest.loop_of_header(edge.target)
            is_back = tgt_loop is not None and node in tgt_loop.body
            for phases in product(range(peel + 1), repeat=len(src_chain)):
                phase_of = {loop.header: phase
                            for loop, phase in zip(src_chain, phases)}
                target_phases = []
                for loop in tgt_chain:
                    if loop is tgt_loop:
                        # Entering the loop restarts at the first
                        # peeled iteration; taking a back edge advances
                        # into the next phase (saturating at steady).
                        target_phases.append(
                            min(phase_of[loop.header] + 1, peel)
                            if is_back else 0)
                    else:
                        # An enclosing loop shared with the source
                        # keeps its phase (reducibility guarantees the
                        # source is inside it too).
                        target_phases.append(phase_of[loop.header])
                peeled._add_edge(TaskEdge(
                    peeled_id(node, phases),
                    peeled_id(edge.target, tuple(target_phases)),
                    edge.kind, edge.cond))

    entry_phases = (0,) * len(chain[graph.entry])
    peeled.entry = peeled_id(graph.entry, entry_phases)
    return peeled
