"""Pluggable context sensitivity for the whole-task expansion.

aiT analyses every program point once per *execution context* — the
VIVU scheme ("virtual inlining / virtual unrolling", Section 3): not
only is a function body distinguished per chain of call sites leading
to it, the *first* iteration of a loop (compulsory cache misses,
initialisation values) is distinguished from *subsequent* iterations
(steady-state hits, stabilised intervals).

This module defines the structured :class:`Context` those schemes
produce and the :class:`ContextPolicy` hierarchy that selects one:

* :class:`FullCallString` — unbounded call strings, no unrolling (the
  historical behaviour, kept as the differential baseline),
* :class:`KLimitedCallString` — call strings truncated to the last
  ``k`` sites, bounding context growth on deep call trees,
* :class:`VIVU` — call strings plus peeling of the first ``peel``
  iterations of every loop into their own context copies.

A context has two components:

* ``calls`` — the call-site addresses on the abstract call stack
  (possibly truncated under k-limiting), and
* ``iters`` — the loop-iteration component: one ``(header, phase)``
  pair per enclosing peeled loop, where ``phase < peel`` marks a
  peeled first-iteration copy and ``phase == peel`` the steady-state
  copy.

For backwards compatibility with the historical bare-tuple contexts,
:class:`Context` behaves like its ``calls`` tuple under iteration,
indexing, and comparison with plain tuples.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

#: One loop-iteration component entry: (loop header block address,
#: iteration phase).  Phases 0..peel-1 are the peeled ("virtually
#: unrolled") iterations; phase == peel is the steady state.
IterEntry = Tuple[int, int]


class Context:
    """A structured execution context: call string + loop iterations.

    Immutable; usable as a dict key and totally ordered (needed for
    deterministic worklists, WTOs, and reports).
    """

    __slots__ = ("calls", "iters")

    def __init__(self, calls: Tuple[int, ...] = (),
                 iters: Tuple[IterEntry, ...] = ()):
        object.__setattr__(self, "calls", tuple(calls))
        object.__setattr__(self, "iters", tuple(iters))

    def __setattr__(self, name, value):
        raise AttributeError("Context is immutable")

    def __reduce__(self):
        # The immutability guard above breaks the default slot-state
        # pickling protocol; reconstruct through the constructor.
        return (Context, (self.calls, self.iters))

    # -- Tuple compatibility (calls component) ------------------------------

    def __iter__(self) -> Iterator[int]:
        return iter(self.calls)

    def __len__(self) -> int:
        return len(self.calls)

    def __getitem__(self, index):
        return self.calls[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, Context):
            return self.calls == other.calls and self.iters == other.iters
        if isinstance(other, tuple):
            # A bare tuple is the historical representation of a pure
            # call-string context.
            return not self.iters and self.calls == other
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        # Equal objects must hash equal, including Context((a, b)) == (a, b).
        if not self.iters:
            return hash(self.calls)
        return hash((self.calls, self.iters))

    def __lt__(self, other: "Context") -> bool:
        return (self.calls, self.iters) < (other.calls, other.iters)

    def __le__(self, other: "Context") -> bool:
        return (self.calls, self.iters) <= (other.calls, other.iters)

    def __gt__(self, other: "Context") -> bool:
        return (self.calls, self.iters) > (other.calls, other.iters)

    def __ge__(self, other: "Context") -> bool:
        return (self.calls, self.iters) >= (other.calls, other.iters)

    # -- Construction helpers ----------------------------------------------

    def with_iters(self, iters: Tuple[IterEntry, ...]) -> "Context":
        return Context(self.calls, iters)

    def with_phase(self, header: int, phase: int) -> "Context":
        """This context with the given loop's phase replaced."""
        return Context(self.calls, tuple(
            (block, phase if block == header else p)
            for block, p in self.iters))

    # -- Queries ------------------------------------------------------------

    def peel_of(self, header: int) -> int:
        """How many peeled iteration copies of the loop headed at
        ``header`` precede this (steady-state) copy.  The steady copy
        carries ``phase == peel``, so its own phase *is* the count; a
        context without an iteration entry was never peeled (0)."""
        for block, phase in self.iters:
            if block == header:
                return phase
        return 0

    def has_phase_below(self, peel: int) -> bool:
        """Is this a (possibly nested) first-iteration copy — i.e. does
        any enclosing loop sit in a peeled iteration?"""
        return any(phase < peel for _, phase in self.iters)

    @property
    def label(self) -> str:
        """Human-readable context label for reports."""
        base = "/".join(f"{site:x}" for site in self.calls) or "root"
        if self.iters:
            base += "".join(f"[{header:x}.it{phase}]"
                            for header, phase in self.iters)
        return base

    def __repr__(self) -> str:
        return f"Context({self.label})"


#: The root (task entry) context.
ROOT_CONTEXT = Context()


class ContextPolicy:
    """Strategy deciding how many context copies each block gets.

    ``call_context`` maps a caller's context and a call-site address to
    the callee's context (the call-string component); ``peel`` drives
    the loop-unrolling post-pass of :func:`repro.cfg.expand.expand_task`
    (the iteration component).
    """

    name = "abstract"
    #: Loop iterations peeled into their own context copies.
    peel = 0

    def root(self) -> Context:
        return ROOT_CONTEXT

    def call_context(self, caller: Context, site: int) -> Context:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class FullCallString(ContextPolicy):
    """Unbounded call strings, no loop unrolling — the differential
    baseline that reproduces the historical expansion exactly."""

    name = "full-callstring"

    def call_context(self, caller: Context, site: int) -> Context:
        return Context(caller.calls + (site,))


class KLimitedCallString(ContextPolicy):
    """Call strings truncated to the most recent ``k`` sites.

    Bounds expansion on deep call trees: instances whose last ``k``
    call sites coincide are merged, so growth is linear in program
    size instead of multiplicative in call-DAG fan-in.  The cost is
    call/return matching: a merged callee instance returns to every
    matching return site, which over-approximates the path set (sound
    for WCET, but looser).
    """

    name = "k-callstring"

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k

    def call_context(self, caller: Context, site: int) -> Context:
        return Context((caller.calls + (site,))[-self.k:])

    def describe(self) -> str:
        return f"k-callstring(k={self.k})"


class VIVU(ContextPolicy):
    """Virtual inlining / virtual unrolling (conf_date_HeckmannF05 §3).

    Call strings (full, or k-limited when ``k`` is given) plus peeling
    of the first ``peel`` iterations of every loop into their own
    context copies: the peeled copies absorb compulsory cache misses
    and initialisation values, so steady-state copies classify
    ``ALWAYS_HIT`` and carry stabilised intervals.
    """

    name = "vivu"

    def __init__(self, peel: int = 1, k: Optional[int] = None):
        if peel < 1:
            raise ValueError("peel must be at least 1")
        if k is not None and k < 1:
            raise ValueError("k must be at least 1")
        self.peel = peel
        self.k = k

    def call_context(self, caller: Context, site: int) -> Context:
        calls = caller.calls + (site,)
        if self.k is not None:
            calls = calls[-self.k:]
        return Context(calls)

    def describe(self) -> str:
        if self.k is None:
            return f"vivu(peel={self.peel})"
        return f"vivu(peel={self.peel}, k={self.k})"


#: Policy used when the caller does not choose one.
DEFAULT_POLICY = FullCallString()


def make_policy(name: str, k: Optional[int] = None,
                peel: int = 1) -> ContextPolicy:
    """Build a policy from CLI-style arguments (``--context-policy``,
    ``--k``, ``--peel``).

    ``k`` defaults to 2 for ``klimited``; for ``vivu`` it is optional
    and combines loop peeling with k-limited call strings.
    """
    if name in ("full", "full-callstring"):
        return FullCallString()
    if name in ("klimited", "k-limited", "k-callstring"):
        return KLimitedCallString(2 if k is None else k)
    if name == "vivu":
        return VIVU(peel=peel, k=k)
    raise ValueError(f"unknown context policy {name!r}; "
                     "expected full, klimited, or vivu")
