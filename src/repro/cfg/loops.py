"""Natural-loop detection and the loop nesting forest.

Loop structure drives two phases of the pipeline: loop-bound analysis
(widening points and trip-count derivation) and IPET (each loop's bound
becomes a linear constraint on its back-edge frequencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple, TypeVar

from .dominators import compute_dominators, dominance_numbering

Node = TypeVar("Node", bound=Hashable)


@dataclass
class Loop:
    """A natural loop: a header plus the nodes of its body."""

    header: Node
    body: Set[Node] = field(default_factory=set)
    back_edges: List[Tuple[Node, Node]] = field(default_factory=list)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Nesting depth; top-level loops have depth 1."""
        depth, loop = 0, self
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def contains(self, node: Node) -> bool:
        return node in self.body

    def exit_edges(self, succs: Dict[Node, List[Node]]
                   ) -> List[Tuple[Node, Node]]:
        """Edges leaving the loop body."""
        return [(node, succ) for node in self.body
                for succ in succs.get(node, []) if succ not in self.body]

    def entry_edges(self, preds: Dict[Node, List[Node]]
                    ) -> List[Tuple[Node, Node]]:
        """Edges entering the header from outside the loop."""
        return [(pred, self.header) for pred in preds.get(self.header, [])
                if pred not in self.body]

    def __repr__(self) -> str:
        return (f"Loop(header={self.header!r}, |body|={len(self.body)}, "
                f"depth={self.depth})")


class LoopForest:
    """All natural loops of a graph, organised by nesting."""

    def __init__(self, loops: List[Loop]):
        self.loops = loops
        self._by_header = {loop.header: loop for loop in loops}

    @property
    def roots(self) -> List[Loop]:
        return [loop for loop in self.loops if loop.parent is None]

    def loop_of_header(self, header: Node) -> Optional[Loop]:
        return self._by_header.get(header)

    def innermost_containing(self, node: Node) -> Optional[Loop]:
        """The deepest loop whose body contains ``node``."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if node in loop.body:
                if best is None or loop.depth > best.depth:
                    best = loop
        return best

    def headers(self) -> Set[Node]:
        return set(self._by_header)

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self):
        return iter(self.loops)


def find_loops(entry: Node, succs: Dict[Node, List[Node]]) -> LoopForest:
    """Find all natural loops reachable from ``entry``.

    Back edges are edges ``t -> h`` where ``h`` dominates ``t``.  Loops
    sharing a header are merged (standard natural-loop convention).  An
    irreducible region (a cycle entered other than through its header)
    raises :class:`IrreducibleLoopError`, since bound analysis and IPET
    constraints are only well-defined for reducible flow graphs.
    """
    idom = compute_dominators(entry, succs)
    preds: Dict[Node, List[Node]] = {node: [] for node in idom}
    for node in idom:
        for succ in succs.get(node, []):
            if succ in preds:
                preds[succ].append(node)

    # One dominance query per edge: use O(1) Euler-tour labels instead
    # of walking the idom chain for each.
    tin, tout = dominance_numbering(idom)
    loops_by_header: Dict[Node, Loop] = {}
    for node in idom:
        node_tin = tin[node]
        for succ in succs.get(node, []):
            succ_tin = tin.get(succ)
            if succ_tin is not None and succ_tin <= node_tin < tout[succ]:
                loop = loops_by_header.setdefault(succ, Loop(header=succ))
                loop.back_edges.append((node, succ))
                loop.body.update(_loop_body(node, succ, preds))

    _check_reducible(entry, succs, idom, tin, tout)

    loops = list(loops_by_header.values())
    _build_nesting(loops)
    return LoopForest(loops)


class IrreducibleLoopError(ValueError):
    """The graph contains a cycle not dominated by a single header."""


def _loop_body(tail: Node, header: Node,
               preds: Dict[Node, List[Node]]) -> Set[Node]:
    body = {header}
    if tail == header:
        return body
    body.add(tail)
    stack = [tail]
    while stack:
        node = stack.pop()
        for pred in preds.get(node, []):
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def _check_reducible(entry: Node, succs: Dict[Node, List[Node]],
                     idom: Dict[Node, Node],
                     tin: Dict[Node, int],
                     tout: Dict[Node, int]) -> None:
    # A graph is reducible iff removing all back edges (w.r.t. dominance)
    # leaves an acyclic graph.
    forward: Dict[Node, List[Node]] = {node: [] for node in idom}
    for node in idom:
        node_tin = tin[node]
        for succ in succs.get(node, []):
            succ_tin = tin.get(succ)
            if succ_tin is not None \
                    and not (succ_tin <= node_tin < tout[succ]):
                forward[node].append(succ)
    state: Dict[Node, int] = {}

    for start in idom:
        if state.get(start):
            continue
        stack = [(start, iter(forward[start]))]
        state[start] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if state.get(succ) == 1:
                    raise IrreducibleLoopError(
                        f"irreducible cycle through {succ!r}")
                if not state.get(succ):
                    state[succ] = 1
                    stack.append((succ, iter(forward[succ])))
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                stack.pop()


def _build_nesting(loops: List[Loop]) -> None:
    # Smaller bodies nest inside larger ones; ties cannot happen because
    # loops with the same header were merged.
    by_size = sorted(loops, key=lambda loop: len(loop.body))
    for i, inner in enumerate(by_size):
        for outer in by_size[i + 1:]:
            if inner.header in outer.body and inner is not outer:
                inner.parent = outer
                outer.children.append(inner)
                break
