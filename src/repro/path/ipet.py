"""Path analysis by Implicit Path Enumeration (phase 6 of aiT).

The WCET is the optimum of an integer linear program: execution counts
on blocks and edges, structural flow-conservation constraints, loop
bound constraints from phase 3, and infeasible-path exclusions from
value analysis.  "Integer linear programming is used for path analysis"
(Section 3); the solution also yields "a corresponding worst-case
execution path" as the edge-count profile.

Before the program is built, single-entry/single-exit block chains of
the expanded graph are contracted into supernodes: along such a chain
every node and every interior edge executes exactly as often as the
chain head, so one variable (with the summed cost) represents the whole
chain and the LP shrinks severalfold.  Loop headers (including their
peel copies), the task entry, and nodes referenced by infeasible-path
constraints stay uncontracted because later constraints address them
individually; the witness profile is expanded back to full per-node and
per-edge counts afterwards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.loopbounds import LoopBound
from ..analysis.valueanalysis import ValueAnalysisResult
from ..cfg.expand import NodeId, TaskEdge, TaskGraph
from ..cfg.graph import EdgeKind
from ..ilp.model import LinearProgram, Sense, Solution
from ..ilp.branchbound import solve_ilp
from ..ilp.simplex import solve_lp
from ..ilp.stats import ILPStats
from ..pipeline.analysis import TimingModel


class UnboundedLoopError(ValueError):
    """A loop has no iteration bound; WCET cannot be computed without a
    user annotation (exactly aiT's behaviour)."""

    def __init__(self, headers: List[NodeId]):
        names = ", ".join(repr(h) for h in headers)
        super().__init__(f"loops without iteration bounds: {names}; "
                         "provide manual_bounds annotations")
        self.headers = headers


@dataclass
class WorstCasePath:
    """The worst-case execution profile: counts per node and edge."""

    node_counts: Dict[NodeId, int]
    edge_counts: Dict[Tuple[NodeId, NodeId, EdgeKind], int]

    def count(self, node: NodeId) -> int:
        return self.node_counts.get(node, 0)


@dataclass
class PathAnalysisResult:
    """IPET output: the WCET bound and its witness profile."""

    wcet_cycles: int
    path: WorstCasePath
    lp_bound: float                 # relaxation optimum (sound bound)
    integral: bool                  # did the ILP confirm integrality?
    num_variables: int
    num_constraints: int
    #: LP/ILP engine counters (pivots, presolve, B&B warm starts).
    solver_stats: Optional[ILPStats] = None
    #: Task-graph nodes before chain contraction.
    graph_nodes: int = 0
    #: Supernodes the LP was actually built over.
    lp_supernodes: int = 0


class PathAnalysis:
    """Builds and solves the IPET program for one task."""

    def __init__(self, graph: TaskGraph, timing: TimingModel,
                 loop_bounds: Dict[NodeId, LoopBound],
                 values: Optional[ValueAnalysisResult] = None,
                 use_infeasible_paths: bool = True,
                 contract_chains: bool = True):
        self.graph = graph
        self.timing = timing
        self.loop_bounds = loop_bounds
        self.values = values
        self.use_infeasible_paths = use_infeasible_paths and \
            values is not None
        self.contract_chains = contract_chains

    def solve(self, integer: bool = True) -> PathAnalysisResult:
        (program, chains, merge_next, chain_vars, node_vars, edge_vars,
         exit_vars, onetime_vars) = self._build_program()
        stats = ILPStats()
        relaxation = solve_lp(program, stats=stats)
        if relaxation.status == "unbounded":
            raise UnboundedLoopError(self._unbounded_headers())
        if relaxation.status != "optimal":
            raise RuntimeError(
                f"IPET program is {relaxation.status}; the task graph "
                "is malformed")

        solution = relaxation
        integral = relaxation.is_integral()
        if integer and not integral:
            ilp_stats = ILPStats()
            solution, _bstats = solve_ilp(program, stats=ilp_stats)
            stats.absorb(ilp_stats)
            integral = True

        # Expand the supernode profile back to per-node/per-edge counts:
        # every chain member and interior edge runs exactly as often as
        # the chain itself.
        node_counts: Dict[NodeId, int] = {}
        edge_counts: Dict[Tuple[NodeId, NodeId, EdgeKind], int] = {}
        for chain, var in zip(chains, chain_vars):
            value = solution.value_of(var)
            if value <= 1e-6:
                continue
            count = int(round(value))
            for node in chain:
                node_counts[node] = count
            for member in chain[:-1]:
                edge = merge_next[member]
                edge_counts[(edge.source, edge.target, edge.kind)] = count
        for key, var in edge_vars.items():
            value = solution.value_of(var)
            if value > 1e-6:
                edge_counts[key] = int(round(value))

        wcet = int(round(solution.objective)) if integral \
            else int(math.ceil(solution.objective - 1e-9))
        return PathAnalysisResult(
            wcet_cycles=wcet,
            path=WorstCasePath(node_counts, edge_counts),
            lp_bound=relaxation.objective,
            integral=integral,
            num_variables=program.num_variables,
            num_constraints=program.num_constraints,
            solver_stats=stats,
            graph_nodes=self.graph.node_count(),
            lp_supernodes=len(chains))

    # -- Chain contraction ------------------------------------------------------

    def _contract_chains(self) -> Tuple[List[List[NodeId]],
                                        Dict[NodeId, TaskEdge]]:
        """Partition the graph into maximal single-entry/single-exit
        chains.  Returns the chains (in deterministic node order) and
        the interior merge edge of every non-tail chain member."""
        graph = self.graph
        nodes = graph.nodes()
        if not self.contract_chains:
            return [[node] for node in nodes], {}

        # Nodes later constraints address individually must head their
        # own supernode: loop headers (all peel phases share the block
        # address), and — when infeasible-path constraints are emitted —
        # unreachable nodes and infeasible-edge endpoints.
        header_blocks: Set[int] = set()
        if self.values is not None:
            for loop in self.values.fixpoint.loop_forest:
                header_blocks.add(loop.header.block)
        infeasible_keys = set()
        unreachable: Set[NodeId] = set()
        if self.use_infeasible_paths:
            infeasible_keys = {
                (edge.source, edge.target, edge.kind)
                for edge in self.values.infeasible_edges}
            unreachable = {
                node for node in nodes
                if not self.values.fixpoint.reachable(node)}

        merge_next: Dict[NodeId, TaskEdge] = {}
        for node in nodes:
            succs = graph.successors(node)
            if len(succs) != 1:
                continue
            edge = succs[0]
            target = edge.target
            if (target == graph.entry
                    or target == node
                    or target.block in header_blocks
                    or node in unreachable
                    or target in unreachable
                    or (edge.source, edge.target, edge.kind)
                    in infeasible_keys
                    or len(graph.predecessors(target)) != 1):
                continue
            merge_next[node] = edge

        merged_targets = {edge.target for edge in merge_next.values()}
        chains: List[List[NodeId]] = []
        assigned: Set[NodeId] = set()
        for node in nodes:
            if node in merged_targets:
                continue
            chain = [node]
            assigned.add(node)
            current = node
            while current in merge_next:
                current = merge_next[current].target
                chain.append(current)
                assigned.add(current)
            chains.append(chain)
        # A cycle of merge edges has no head (possible only for regions
        # no loop-forest header guards, e.g. unreachable cycles with
        # infeasible-path constraints disabled): break it at the first
        # node in deterministic order; the wrap-around edge then stays a
        # real (cross-chain) edge.
        for node in nodes:
            if node in assigned:
                continue
            chain = [node]
            assigned.add(node)
            current = node
            while current in merge_next and \
                    merge_next[current].target not in assigned:
                current = merge_next[current].target
                chain.append(current)
                assigned.add(current)
            chains.append(chain)
        return chains, merge_next

    # -- Program construction ---------------------------------------------------

    def _build_program(self):
        graph = self.graph
        program = LinearProgram("ipet")
        chains, merge_next = self._contract_chains()

        chain_vars = []
        node_vars: Dict[NodeId, object] = {}
        for index, chain in enumerate(chains):
            var = program.add_variable(f"x_{index}")
            chain_vars.append(var)
            for node in chain:
                node_vars[node] = var

        # Cross-chain edges all emanate from chain tails (interior
        # members have exactly one successor: their merge edge).
        edge_vars = {}
        for index, chain in enumerate(chains):
            tail = chain[-1]
            for j, edge in enumerate(graph.successors(tail)):
                key = (edge.source, edge.target, edge.kind)
                edge_vars[key] = program.add_variable(f"y_{index}_{j}")
        exit_vars = {}
        for index, chain in enumerate(chains):
            tail = chain[-1]
            if not graph.successors(tail):
                exit_vars[tail] = program.add_variable(
                    f"exit_{len(exit_vars)}")
        onetime_vars = {}
        for node, timing in self.timing.blocks.items():
            if timing.onetime_cycles > 0:
                onetime_vars[node] = program.add_variable(
                    f"z_{len(onetime_vars)}", upper=1)

        # Flow conservation per supernode: executions = inflow = outflow
        # (inflow arrives at the chain head, outflow leaves the tail).
        for index, chain in enumerate(chains):
            head, tail = chain[0], chain[-1]
            x_var = chain_vars[index]
            inflow = {x_var.index: -1.0}
            for edge in graph.predecessors(head):
                key = (edge.source, edge.target, edge.kind)
                inflow[edge_vars[key].index] = \
                    inflow.get(edge_vars[key].index, 0.0) + 1.0
            rhs = -1.0 if head == graph.entry else 0.0
            program.add_constraint(inflow, Sense.EQ, rhs,
                                   f"in_{x_var.name}")

            outflow = {x_var.index: -1.0}
            for edge in graph.successors(tail):
                key = (edge.source, edge.target, edge.kind)
                outflow[edge_vars[key].index] = \
                    outflow.get(edge_vars[key].index, 0.0) + 1.0
            if tail in exit_vars:
                outflow[exit_vars[tail].index] = 1.0
            program.add_constraint(outflow, Sense.EQ, 0.0,
                                   f"out_{x_var.name}")

        # Exactly one task exit.
        program.add_constraint(
            {var.index: 1.0 for var in exit_vars.values()},
            Sense.EQ, 1.0, "one_exit")

        # Loop bounds (and, under a peeling policy, the structural
        # constraints linking peeled copies to loop entries).  Loop
        # headers are never contracted into a chain, so every edge these
        # constraints mention is a real cross-chain edge.
        self._add_loop_constraints(program, edge_vars, node_vars)

        # Infeasible paths (ablation D5).
        if self.use_infeasible_paths:
            for edge in self.values.infeasible_edges:
                key = (edge.source, edge.target, edge.kind)
                program.add_constraint({edge_vars[key].index: 1.0},
                                       Sense.EQ, 0.0, "infeasible")
            for node, x_var in node_vars.items():
                if not self.values.fixpoint.reachable(node):
                    program.add_constraint({x_var.index: 1.0}, Sense.EQ,
                                           0.0, "unreachable")

        # One-time costs require the block to execute.
        for node, z_var in onetime_vars.items():
            program.add_constraint(
                {z_var.index: 1.0, node_vars[node].index: -1.0},
                Sense.LE, 0.0, "onetime_gate")

        # Objective: worst-case cycles.  A supernode carries the summed
        # block costs of its members plus its interior edge costs.
        for index, chain in enumerate(chains):
            cost = sum(self.timing.block_cost(node) for node in chain)
            for member in chain[:-1]:
                edge = merge_next[member]
                cost += self.timing.edges.get(
                    (edge.source, edge.target, edge.kind), 0)
            program.set_objective_coefficient(chain_vars[index], cost)
        for key, y_var in edge_vars.items():
            cost = self.timing.edges.get(key, 0)
            if cost:
                program.set_objective_coefficient(y_var, cost)
        for node, z_var in onetime_vars.items():
            program.set_objective_coefficient(
                z_var, self.timing.onetime_cost(node))

        return (program, chains, merge_next, chain_vars, node_vars,
                edge_vars, exit_vars, onetime_vars)

    def _add_loop_constraints(self, program: LinearProgram,
                              edge_vars, node_vars) -> None:
        unbounded = []
        if self.values is None:
            return
        for loop in self.values.fixpoint.loop_forest:
            bound = self.loop_bounds.get(loop.header)
            if bound is None or not bound.is_bounded:
                unbounded.append(loop.header)
                continue
            coeffs: Dict[int, float] = {}
            for latch, header in loop.back_edges:
                for edge in self.graph.successors(latch):
                    if edge.target == header:
                        key = (edge.source, edge.target, edge.kind)
                        coeffs[edge_vars[key].index] = 1.0
            for edge in self.graph.predecessors(loop.header):
                if edge.source not in loop.body:
                    key = (edge.source, edge.target, edge.kind)
                    coeffs[edge_vars[key].index] = \
                        coeffs.get(edge_vars[key].index, 0.0) \
                        - (bound.max_iterations - 1)
            # The task entry is an implicit loop-entry edge executed once.
            rhs = float(bound.max_iterations - 1) \
                if loop.header == self.graph.entry else 0.0
            program.add_constraint(coeffs, Sense.LE, rhs,
                                   f"loop_{loop.header!r}")
            self._add_peel_constraints(program, edge_vars, node_vars,
                                       loop)
        if unbounded:
            raise UnboundedLoopError(unbounded)

    def _add_peel_constraints(self, program: LinearProgram, edge_vars,
                              node_vars, loop) -> None:
        """Structural VIVU constraints for a peeled loop.

        The forest only contains the steady-state copy; its peeled
        prologue copies are separate (acyclic) nodes.  Flow
        conservation alone bounds them on a DAG, but merged call/return
        edges under k-limited call strings can introduce spurious
        cycles through a prologue, so the linkage is stated explicitly:
        each peeled header copy runs at most as often as the previous
        one, and the steady-state copy is entered at most once per
        execution of the last peeled copy.
        """
        header = loop.header
        peel = header.context.peel_of(header.block)
        if not peel:
            return

        def header_copy(phase: int):
            node = NodeId(header.context.with_phase(header.block, phase),
                          header.block)
            return node_vars.get(node)

        for phase in range(1, peel):
            later, earlier = header_copy(phase), header_copy(phase - 1)
            if later is not None and earlier is not None:
                program.add_constraint(
                    {later.index: 1.0, earlier.index: -1.0}, Sense.LE,
                    0.0, f"peel_{phase}_{header!r}")
        last_peeled = header_copy(peel - 1)
        if last_peeled is not None:
            coeffs = {last_peeled.index: -1.0}
            for edge in self.graph.predecessors(header):
                if edge.source not in loop.body:
                    key = (edge.source, edge.target, edge.kind)
                    coeffs[edge_vars[key].index] = \
                        coeffs.get(edge_vars[key].index, 0.0) + 1.0
            program.add_constraint(coeffs, Sense.LE, 0.0,
                                   f"peel_entry_{header!r}")

    def _unbounded_headers(self) -> List[NodeId]:
        return [loop.header
                for loop in self.values.fixpoint.loop_forest
                if not self.loop_bounds.get(
                    loop.header,
                    LoopBound(loop.header, None, "none")).is_bounded] \
            if self.values is not None else []


def analyze_paths(graph: TaskGraph, timing: TimingModel,
                  loop_bounds: Dict[NodeId, LoopBound],
                  values: Optional[ValueAnalysisResult] = None,
                  use_infeasible_paths: bool = True,
                  integer: bool = True,
                  contract_chains: bool = True) -> PathAnalysisResult:
    """Compute the WCET bound and worst-case path (phase 6 of aiT)."""
    analysis = PathAnalysis(graph, timing, loop_bounds, values,
                            use_infeasible_paths, contract_chains)
    return analysis.solve(integer=integer)
