"""IPET path analysis: CFG + timing + loop bounds -> WCET (phase 6)."""

from .ipet import (PathAnalysis, PathAnalysisResult, UnboundedLoopError,
                   WorstCasePath, analyze_paths)

__all__ = [
    "PathAnalysis", "PathAnalysisResult", "UnboundedLoopError",
    "WorstCasePath", "analyze_paths",
]
