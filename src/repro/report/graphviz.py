"""Annotated control-flow graph export in DOT format.

Stands in for aiT's aiSee/GDL visualisation: each task-graph node shows
its block address, call context, worst-case cycles, and worst-case
execution count; edges show their kind and any extra cycles.  Render
with ``dot -Tsvg``.
"""

from __future__ import annotations

from typing import List, Optional

from ..cfg.graph import EdgeKind
from ..wcet.ait import WCETResult

_EDGE_STYLES = {
    EdgeKind.FALLTHROUGH: ("solid", "black"),
    EdgeKind.TAKEN: ("solid", "blue"),
    EdgeKind.CALL: ("dashed", "darkgreen"),
    EdgeKind.RETURN: ("dashed", "purple"),
}


def _node_id(node) -> str:
    context = "_".join(f"{c:x}" for c in node.context)
    iters = "_".join(f"{header:x}i{phase}"
                     for header, phase in node.context.iters)
    return f"n{context}_{iters}_{node.block:x}"


def wcet_dot(result: WCETResult, include_instructions: bool = False) -> str:
    """Render the task graph with WCET annotations as a DOT digraph."""
    lines: List[str] = []
    out = lines.append
    out("digraph wcet {")
    out('  node [shape=box, fontname="monospace", fontsize=10];')
    out(f'  graph [rankdir=TB, labelloc=t, '
        f'label="WCET {result.wcet_cycles} cyc '
        f'({result.timing.model} timing model, '
        f'{result.graph.policy.describe()})"];')

    counts = result.path.path.node_counts
    on_path = set(counts)
    for node in result.graph.nodes():
        block = result.graph.blocks[node]
        cost = result.timing.block_cost(node)
        count = counts.get(node, 0)
        context = node.context.label
        label_lines = [
            f"0x{block.start:x} [{result.graph.function_name(node)}]",
            f"ctx {context}",
            f"{cost} cyc x {count}",
        ]
        if include_instructions:
            label_lines.extend(str(instr) for instr in block)
        label = "\\l".join(label_lines) + "\\l"
        color = "red" if node in on_path and count > 0 else "gray"
        penwidth = "2.0" if count > 0 else "1.0"
        out(f'  {_node_id(node)} [label="{label}", color={color}, '
            f'penwidth={penwidth}];')

    edge_counts = result.path.path.edge_counts
    for node in result.graph.nodes():
        for edge in result.graph.successors(node):
            style, color = _EDGE_STYLES[edge.kind]
            key = (edge.source, edge.target, edge.kind)
            count = edge_counts.get(key, 0)
            extra = result.timing.edges.get(key, 0)
            label = f"{count}"
            if extra:
                label += f" (+{extra} cyc)"
            if edge.cond is not None:
                label += f" [{edge.cond.name}]"
            out(f'  {_node_id(edge.source)} -> {_node_id(edge.target)} '
                f'[style={style}, color={color}, label="{label}"];')
    out("}")
    return "\n".join(lines) + "\n"
