"""Analysis report generation.

aiT's "results are documented in a report file and as annotations in
the control-flow graph that can be visualized using AbsInt's graph
viewer aiSee" (Section 3).  This module renders the textual report;
:mod:`repro.report.graphviz` renders the annotated CFG (DOT being the
open-format stand-in for aiSee's GDL).
"""

from __future__ import annotations

from typing import List, Optional

from ..stack.analyzer import StackAnalysisResult
from ..wcet.ait import WCETResult


def wcet_report(result: WCETResult,
                stack: Optional[StackAnalysisResult] = None) -> str:
    """Full textual report for one analyzed task."""
    lines: List[str] = []
    out = lines.append

    out("=" * 66)
    out("WCET ANALYSIS REPORT")
    out("=" * 66)
    entry_name = result.program.symbol_at(result.program.entry) or "?"
    out(f"Task entry: {entry_name} @ 0x{result.program.entry:x}")
    out(f"Binary: {len(result.program.text.data)} bytes of code, "
        f"{result.binary_cfg.total_instructions()} instructions, "
        f"{len(result.binary_cfg.functions)} functions")
    out("")

    out("-- Phase 1: CFG reconstruction")
    out(f"   {result.binary_cfg.total_blocks()} basic blocks; task graph "
        f"{result.graph.node_count()} nodes / "
        f"{result.graph.edge_count()} edges in "
        f"{len(result.graph.contexts())} call contexts")
    peeled = result.graph.peeled_contexts()
    policy_line = f"   context policy: {result.graph.policy.describe()}"
    if peeled:
        policy_line += (f" ({len(peeled)} first-iteration copies of "
                        f"{len(result.graph.contexts())} contexts)")
    out(policy_line)
    out("")

    stats = result.values.precision()
    out("-- Phase 2: value analysis")
    out(f"   memory accesses: {stats.exact} exact, {stats.bounded} "
        f"bounded, {stats.unknown} unknown "
        f"({100 * stats.exact_ratio:.1f}% exact)")
    out(f"   infeasible edges: {len(result.values.infeasible_edges)}")
    decided = [node for node, outcome
               in result.values.condition_outcomes.items()
               if outcome is not None]
    out(f"   statically decided conditions: {len(decided)}")
    out("")

    out("-- Phase 3: loop bounds")
    if result.loop_bounds:
        for header, bound in sorted(result.loop_bounds.items(),
                                    key=lambda kv: kv[0].block):
            text = str(bound.max_iterations) if bound.is_bounded \
                else "UNBOUNDED"
            peel = header.context.peel_of(header.block)
            suffix = f" (+{peel} peeled)" if peel else ""
            out(f"   loop @ 0x{header.block:x} "
                f"(ctx {header.context.label}): {text} iterations"
                f"{suffix} [{bound.method}]")
    else:
        out("   no loops")
    out("")

    out("-- Phase 4: cache analysis")
    ic, dc = result.icache.stats, result.dcache.stats
    out(f"   I-cache: {ic.always_hit} AH, {ic.always_miss} AM, "
        f"{ic.persistent} PS, {ic.not_classified} NC")
    out(f"   D-cache: {dc.always_hit} AH, {dc.always_miss} AM, "
        f"{dc.persistent} PS, {dc.not_classified} NC")
    for label, split in (("I-cache", result.icache.iteration_stats),
                         ("D-cache", result.dcache.iteration_stats)):
        if not split:
            continue
        for phase, stats in split.items():
            if not stats.total:
                continue
            out(f"   {label} [{phase}]: {stats.always_hit} AH, "
                f"{stats.always_miss} AM, {stats.persistent} PS, "
                f"{stats.not_classified} NC")
    out("")

    out("-- Phase 5: pipeline analysis")
    out(f"   timing model: {result.timing.model}")
    total_base = sum(t.base_cycles for t in result.timing.blocks.values())
    out(f"   cumulative per-execution block cost: {total_base} cycles")
    out(f"   one-time (persistence) cost: "
        f"{result.timing.total_onetime()} cycles")
    states = result.timing.state_stats
    if states is not None:
        out(f"   pipeline states: {states.peak_states} max per block, "
            f"{states.walked_states} block walks, "
            f"{states.cap_merges} cap merges "
            f"(cap {result.config.pipeline_state_cap})")
    out("")

    out("-- Phase 6: path analysis (IPET)")
    if result.path.graph_nodes:
        out(f"   chain contraction: {result.path.graph_nodes} nodes -> "
            f"{result.path.lp_supernodes} supernodes")
    out(f"   ILP: {result.path.num_variables} variables, "
        f"{result.path.num_constraints} constraints")
    solver = result.path.solver_stats
    if solver is not None:
        out(f"   solver: {solver.pivots} pivots "
            f"({solver.phase1_pivots} p1 / {solver.phase2_pivots} p2 / "
            f"{solver.dual_pivots} dual), presolve removed "
            f"{solver.presolve_rows_removed} rows / "
            f"{solver.presolve_cols_removed} cols")
        if solver.bb_nodes:
            out(f"   branch & bound: {solver.bb_nodes} nodes, "
                f"{solver.warm_start_hits} warm starts, "
                f"{solver.cold_solves} cold solves")
    out(f"   LP relaxation: {result.path.lp_bound:.1f} cycles "
        f"({'integral' if result.path.integral else 'fractional'})")
    out("")
    out(f"   ==> WCET BOUND: {result.wcet_cycles} cycles")
    out("")

    if stack is not None:
        out("-- StackAnalyzer")
        out(f"   {stack.summary()}")
        for name, usage in sorted(stack.per_function.items()):
            out(f"   {name}: {usage} bytes")
        out("")

    out("-- Analysis runtime")
    for phase, seconds in result.phase_seconds.items():
        out(f"   {phase:<12} {seconds * 1000:8.2f} ms")
    out(f"   {'total':<12} {result.total_seconds * 1000:8.2f} ms")
    fixpoint_phases = {phase: stats
                       for phase, stats in result.solver_stats.items()
                       if phase != "path"}
    if fixpoint_phases:
        out("-- Fixpoint work (shared WTO kernel)")
        for phase, stats in fixpoint_phases.items():
            out(f"   {phase:<12} {stats}")
    out("=" * 66)
    return "\n".join(lines) + "\n"


def worst_case_path_table(result: WCETResult, limit: int = 30) -> str:
    """The worst-case execution path as a block/count/cost table."""
    rows = sorted(result.path.path.node_counts.items(),
                  key=lambda kv: -kv[1] * result.timing.block_cost(kv[0]))
    lines = [f"{'block':<28} {'context':<14} {'count':>7} "
             f"{'cyc/exec':>9} {'total':>9}"]
    for node, count in rows[:limit]:
        cost = result.timing.block_cost(node)
        context = node.context.label
        lines.append(f"0x{node.block:<26x} {context:<14} {count:>7} "
                     f"{cost:>9} {count * cost:>9}")
    return "\n".join(lines) + "\n"
