"""Report files and annotated CFG visualisation (aiT report / aiSee)."""

from .graphviz import wcet_dot
from .text import wcet_report, worst_case_path_table

__all__ = ["wcet_dot", "wcet_report", "worst_case_path_table"]
