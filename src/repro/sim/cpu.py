"""Concrete KRISC machine: the executable ground truth.

The paper's safety claims are universally quantified ("results valid
for every program run and all inputs"), which is only testable against
an executable semantics.  This simulator is that semantics: it executes
the same binaries the analyses consume, with the same LRU caches and
the timing model selected by
:class:`~repro.cache.config.MachineConfig.pipeline_model`:

* ``additive`` — every instruction pays the sum of its worst-case
  components (the historical model),
* ``krisc5`` — the overlapped 5-stage pipeline (IF/ID/EX/MEM/WB):
  fetch of the next instruction overlaps EX of the current one, the
  MEM unit services cache misses while later instructions keep
  executing (in-order issue queues only on the next memory access or
  a load-use interlock), multiplies occupy EX for extra cycles, and
  taken transfers redirect fetch after the branch resolves in EX.

The simulator also *enforces the analyses' structural assumptions*: it
maintains a shadow call stack and traps if a program returns to an
address other than its call site (which would invalidate the statically
reconstructed CFG), and it traps on writes to the code section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cache.config import MachineConfig
from ..cache.lru import LRUCache
from ..isa.instructions import Cond, Instruction, Opcode
from ..isa.program import Program
from ..isa.registers import LR, NUM_REGISTERS, SP


class SimulationError(RuntimeError):
    """The program violated the machine's execution contract."""


class OutOfFuel(SimulationError):
    """The step budget was exhausted before HALT."""


@dataclass
class AccessEvent:
    """One data-memory access, for cache-soundness checks."""

    pc: int
    address: int
    is_load: bool
    hit: bool


@dataclass
class FetchEvent:
    """One instruction fetch."""

    pc: int
    hit: bool


@dataclass
class PreemptionRecord:
    """One preemption served at an instruction boundary.

    ``cycles``/``steps`` are the preempting task's own execution;
    the hit/miss counters are the cache events *it* caused (attributed
    by snapshotting the shared cache counters around its run), so a
    preempted run's task-side misses stay separable from preemptor
    traffic."""

    step: int           # victim step count when the preemption fired
    pc: int             # victim's resume address
    cycles: int
    steps: int
    fetch_hits: int
    fetch_misses: int
    data_hits: int
    data_misses: int


@dataclass
class ExecutionResult:
    """Outcome of one concrete run."""

    cycles: int
    steps: int
    halted: bool
    registers: List[int]
    max_stack_usage: int
    instruction_counts: Dict[int, int]
    fetch_hits: int
    fetch_misses: int
    data_hits: int
    data_misses: int
    access_trace: List[AccessEvent] = field(default_factory=list)
    fetch_trace: List[FetchEvent] = field(default_factory=list)
    #: Preemptions served during the run (empty for plain ``run()``).
    preemptions: List[PreemptionRecord] = field(default_factory=list)

    def register(self, index: int) -> int:
        return self.registers[index]

    def signed_register(self, index: int) -> int:
        value = self.registers[index]
        return value - (1 << 32) if value & (1 << 31) else value

    # Cache counters are shared between victim and preemptors (they
    # run on the same caches — that is the point of CRPD); these strip
    # the preemptors' own traffic back out.

    @property
    def task_fetch_misses(self) -> int:
        return self.fetch_misses - sum(p.fetch_misses
                                       for p in self.preemptions)

    @property
    def task_data_misses(self) -> int:
        return self.data_misses - sum(p.data_misses
                                      for p in self.preemptions)

    @property
    def task_cycles(self) -> int:
        """Victim-only cycles (total minus preemptor execution)."""
        return self.cycles - sum(p.cycles for p in self.preemptions)


@dataclass
class Flags:
    n: bool = False
    z: bool = False
    c: bool = False
    v: bool = False


_COND_EVAL = {
    Cond.EQ: lambda f: f.z,
    Cond.NE: lambda f: not f.z,
    Cond.LT: lambda f: f.n != f.v,
    Cond.GE: lambda f: f.n == f.v,
    Cond.GT: lambda f: not f.z and f.n == f.v,
    Cond.LE: lambda f: f.z or f.n != f.v,
    Cond.LO: lambda f: not f.c,
    Cond.HS: lambda f: f.c,
    Cond.HI: lambda f: f.c and not f.z,
    Cond.LS: lambda f: not f.c or f.z,
}

_WORD = 0xFFFFFFFF


def _signed(word: int) -> int:
    return word - (1 << 32) if word & (1 << 31) else word


class Simulator:
    """Executes a :class:`Program` cycle-accurately."""

    def __init__(self, program: Program,
                 config: Optional[MachineConfig] = None,
                 collect_trace: bool = False):
        self.program = program
        self.config = config or MachineConfig.default()
        self.collect_trace = collect_trace
        self.icache = LRUCache(self.config.icache)
        self.dcache = LRUCache(self.config.dcache)
        self._decoded: Dict[int, Instruction] = {}
        self._text = program.text
        self.reset()

    def reset(self) -> None:
        self.regs = [0] * NUM_REGISTERS
        self.regs[SP] = self.program.memory_map.stack_base
        self.flags = Flags()
        self.memory: Dict[int, int] = dict(self.program.initial_memory())
        self.pc = self.program.entry
        self.cycles = 0
        self.steps = 0
        self.halted = False
        self.min_sp = self.regs[SP]
        self.instruction_counts: Dict[int, int] = {}
        self.icache.reset()
        self.dcache.reset()
        self.access_trace: List[AccessEvent] = []
        self.fetch_trace: List[FetchEvent] = []
        self._shadow_stack: List[int] = []
        self._pending_load_regs: Tuple[int, ...] = ()
        # krisc5 pipeline clocks (absolute cycles): when the fetch port
        # may start the next fetch, when EX accepts the next
        # instruction, when the MEM unit is free, and per register the
        # cycle a loaded value becomes forwardable.
        self._k5_fetch_free = 0
        self._k5_ex_free = 0
        self._k5_mem_free = 0
        self._k5_load_ready: Dict[int, int] = {}
        # Per-step D-cache access events: (hit, extra_beat) pairs in
        # execution order, consumed by the krisc5 accounting.
        self._step_accesses: List[Tuple[bool, bool]] = []
        self.preemption_records: List[PreemptionRecord] = []

    # -- Public API -----------------------------------------------------------

    def run(self, max_steps: int = 1_000_000,
            arguments: Optional[Dict[int, int]] = None) -> ExecutionResult:
        """Run until HALT (or raise :class:`OutOfFuel`).

        ``arguments`` pre-loads registers, e.g. ``{0: 42}`` to pass 42
        in R0 — the concrete counterpart of the analysis' entry
        annotations.
        """
        if arguments:
            for reg, value in arguments.items():
                self.regs[reg] = value & _WORD
        while not self.halted:
            if self.steps >= max_steps:
                raise OutOfFuel(f"no HALT within {max_steps} steps")
            self.step()
        return self.result()

    def result(self) -> ExecutionResult:
        return ExecutionResult(
            cycles=self.cycles,
            steps=self.steps,
            halted=self.halted,
            registers=list(self.regs),
            max_stack_usage=self.program.memory_map.stack_base - self.min_sp,
            instruction_counts=dict(self.instruction_counts),
            fetch_hits=self.icache.hits,
            fetch_misses=self.icache.misses,
            data_hits=self.dcache.hits,
            data_misses=self.dcache.misses,
            access_trace=self.access_trace,
            fetch_trace=self.fetch_trace,
            preemptions=list(self.preemption_records),
        )

    # -- Preemption ------------------------------------------------------------

    def preempt(self, program: Program,
                max_steps: int = 1_000_000) -> PreemptionRecord:
        """Run ``program`` to completion *on this simulator's caches*
        and account its cycles, as a preemption at the current
        instruction boundary.

        The preempting task executes on a nested simulator with its
        own registers, memory, and stack (an OSEK context switch saves
        and restores all of those) but shares the I- and D-cache
        objects — the one piece of state a context switch does *not*
        restore, and the source of cache-related preemption delay.
        Cache hit/miss counters are snapshotted around the nested run
        so the record attributes the preemptor's traffic separately.
        """
        nested = Simulator(program, self.config)
        nested.icache = self.icache
        nested.dcache = self.dcache
        fetch_hits = self.icache.hits
        fetch_misses = self.icache.misses
        data_hits = self.dcache.hits
        data_misses = self.dcache.misses
        nested.run(max_steps=max_steps)
        record = PreemptionRecord(
            step=self.steps,
            pc=self.pc,
            cycles=nested.cycles,
            steps=nested.steps,
            fetch_hits=self.icache.hits - fetch_hits,
            fetch_misses=self.icache.misses - fetch_misses,
            data_hits=self.dcache.hits - data_hits,
            data_misses=self.dcache.misses - data_misses,
        )
        self.preemption_records.append(record)
        self.cycles += record.cycles
        if self.config.pipeline_model == "krisc5":
            # Shift every absolute pipeline clock by the preemptor's
            # execution time: krisc5 accounting is shift-invariant, so
            # the victim resumes with identical relative hazards.
            delta = record.cycles
            self._k5_fetch_free += delta
            self._k5_ex_free += delta
            self._k5_mem_free += delta
            self._k5_load_ready = {reg: ready + delta
                                   for reg, ready
                                   in self._k5_load_ready.items()}
        return record

    def run_preemptive(self, preemptions, max_steps: int = 1_000_000,
                       arguments: Optional[Dict[int, int]] = None,
                       preemptor_max_steps: int = 1_000_000
                       ) -> ExecutionResult:
        """Run until HALT, serving scheduled preemptions.

        ``preemptions`` is a sequence of ``(step, program)`` pairs: the
        preempting ``program`` runs to completion at the first
        instruction boundary where the victim has executed at least
        ``step`` instructions (several due at the same boundary run
        back to back, in schedule order).  Preemptions scheduled past
        the victim's HALT never fire.
        """
        if arguments:
            for reg, value in arguments.items():
                self.regs[reg] = value & _WORD
        queue = sorted(preemptions, key=lambda item: item[0])
        while not self.halted:
            while queue and queue[0][0] <= self.steps:
                _, preemptor = queue.pop(0)
                self.preempt(preemptor, max_steps=preemptor_max_steps)
            if self.steps >= max_steps:
                raise OutOfFuel(f"no HALT within {max_steps} steps")
            self.step()
        return self.result()

    # -- Execution ---------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction, accounting its cycles."""
        pc = self.pc
        instr = self._fetch_decoded(pc)
        self.steps += 1
        self.instruction_counts[pc] = self.instruction_counts.get(pc, 0) + 1

        fetch_hit = self.icache.access(pc)
        cost = 1 if fetch_hit else 1 + self.config.icache.miss_penalty
        if self.collect_trace:
            self.fetch_trace.append(FetchEvent(pc, fetch_hit))

        if self._pending_load_regs and \
                set(instr.read_registers()) & set(self._pending_load_regs):
            cost += self.config.load_use_stall
        loaded_regs: Tuple[int, ...] = ()
        taken = False
        self._step_accesses.clear()

        next_pc = pc + 4
        op = instr.opcode

        if op in _ALU_REG_OPS:
            self._write(instr.rd, _ALU_REG_OPS[op](
                self.regs[instr.rs1], self.regs[instr.rs2]))
            if op is Opcode.MUL:
                cost += self.config.mul_extra
        elif op in _ALU_IMM_OPS:
            self._write(instr.rd, _ALU_IMM_OPS[op](
                self.regs[instr.rs1], instr.imm))
            if op is Opcode.MULI:
                cost += self.config.mul_extra
        elif op is Opcode.MOV:
            self._write(instr.rd, self.regs[instr.rs1])
        elif op is Opcode.MOVI:
            self._write(instr.rd, instr.imm & _WORD)
        elif op is Opcode.MOVHI:
            low = self.regs[instr.rd] & 0xFFFF
            self._write(instr.rd, (instr.imm << 16) | low)
        elif op is Opcode.CMP:
            self._compare(self.regs[instr.rs1], self.regs[instr.rs2])
        elif op is Opcode.CMPI:
            self._compare(self.regs[instr.rs1], instr.imm & _WORD)
        elif op is Opcode.LDR:
            address = (self.regs[instr.rs1] + instr.imm) & _WORD
            cost += self._data_access(pc, address, is_load=True)
            self._write(instr.rd, self._load_word(address))
            loaded_regs = (instr.rd,)
        elif op is Opcode.LDRX:
            address = (self.regs[instr.rs1] + self.regs[instr.rs2]) & _WORD
            cost += self._data_access(pc, address, is_load=True)
            self._write(instr.rd, self._load_word(address))
            loaded_regs = (instr.rd,)
        elif op is Opcode.STR:
            address = (self.regs[instr.rs1] + instr.imm) & _WORD
            cost += self._data_access(pc, address, is_load=False)
            self._store_word(address, self.regs[instr.rs2])
        elif op is Opcode.STRX:
            address = (self.regs[instr.rs1] + self.regs[instr.rs2]) & _WORD
            cost += self._data_access(pc, address, is_load=False)
            self._store_word(address, self.regs[instr.rd])
        elif op is Opcode.PUSH:
            cost += self._push(pc, instr)
        elif op is Opcode.POP:
            cost += self._pop(pc, instr)
            loaded_regs = instr.reglist
        elif op is Opcode.B:
            next_pc = instr.branch_target()
            cost += self.config.branch_penalty
            taken = True
        elif op is Opcode.BCC:
            if _COND_EVAL[instr.cond](self.flags):
                next_pc = instr.branch_target()
                cost += self.config.branch_penalty
                taken = True
        elif op is Opcode.BL:
            self._write(LR, pc + 4)
            self._shadow_stack.append(pc + 4)
            next_pc = instr.branch_target()
            cost += self.config.branch_penalty
            taken = True
        elif op is Opcode.BLR:
            self._write(LR, pc + 4)
            self._shadow_stack.append(pc + 4)
            next_pc = self.regs[instr.rs1]
            cost += self.config.branch_penalty
            taken = True
        elif op is Opcode.BR:
            next_pc = self.regs[instr.rs1]
            cost += self.config.branch_penalty
            taken = True
        elif op is Opcode.RET:
            next_pc = self.regs[LR]
            if not self._shadow_stack:
                raise SimulationError(f"RET at 0x{pc:x} with empty call "
                                      "stack")
            expected = self._shadow_stack.pop()
            if next_pc != expected:
                raise SimulationError(
                    f"RET at 0x{pc:x} to 0x{next_pc:x}, but call site "
                    f"expects 0x{expected:x} (LR corrupted)")
            cost += self.config.branch_penalty
            taken = True
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.halted = True
        else:  # pragma: no cover - opcode space is exhaustive
            raise SimulationError(f"unimplemented opcode {op.name}")

        self._pending_load_regs = loaded_regs
        if self.config.pipeline_model == "krisc5":
            self._account_krisc5(instr, fetch_hit, loaded_regs, taken)
        else:
            self.cycles += cost
        self.pc = next_pc
        if self.regs[SP] < self.min_sp:
            self.min_sp = self.regs[SP]

    # -- krisc5 overlapped-pipeline accounting --------------------------------

    def _account_krisc5(self, instr: Instruction, fetch_hit: bool,
                        loaded_regs: Tuple[int, ...],
                        taken: bool) -> None:
        """Advance the 5-stage pipeline clocks for one instruction.

        The recurrence is max-plus: an instruction enters EX once its
        fetch completed, EX is free, and every register it reads is
        forwardable.  The MEM unit runs in parallel with EX of later
        instructions (hit-under-miss via the fill/store buffer), so a
        D-cache miss stalls the pipeline only through a dependent load
        consumer or the next memory access.  Taken transfers hold the
        fetch port until ``branch_penalty - 1`` cycles after EX
        resolves the target.
        """
        config = self.config
        fetch_done = self._k5_fetch_free + 1 + \
            (0 if fetch_hit else config.icache.miss_penalty)
        ready = self._k5_load_ready
        operand_ready = 0
        if ready:
            for reg in instr.read_registers():
                when = ready.get(reg)
                if when is not None and when > operand_ready:
                    operand_ready = when
        issue = max(fetch_done, self._k5_ex_free, operand_ready)
        occupancy = 1
        if instr.opcode in (Opcode.MUL, Opcode.MULI):
            occupancy += config.mul_extra
        ex_done = issue + occupancy
        mem_done = None
        if self._step_accesses:
            clock = max(ex_done, self._k5_mem_free)
            for hit, extra in self._step_accesses:
                if extra:
                    clock += 1
                if not hit:
                    clock += config.dcache.miss_penalty
            mem_done = clock
            self._k5_mem_free = clock
        self._k5_ex_free = ex_done
        if taken:
            self._k5_fetch_free = max(
                issue, ex_done + config.branch_penalty - 1)
        else:
            self._k5_fetch_free = issue
        if ready:
            for reg in instr.written_registers():
                ready.pop(reg, None)
        if loaded_regs:
            available = (mem_done if mem_done is not None else ex_done) \
                + config.load_use_stall
            for reg in loaded_regs:
                ready[reg] = available
        self.cycles = max(self._k5_ex_free - 1, self._k5_mem_free)

    # -- Helpers --------------------------------------------------------------------

    def _fetch_decoded(self, pc: int) -> Instruction:
        instr = self._decoded.get(pc)
        if instr is None:
            if not self.program.is_code_address(pc):
                raise SimulationError(
                    f"control reached non-code address 0x{pc:x}")
            instr = self.program.instruction_at(pc)
            self._decoded[pc] = instr
        return instr

    def _write(self, reg: int, value: int) -> None:
        self.regs[reg] = value & _WORD

    def _compare(self, a: int, b: int) -> None:
        result = (a - b) & _WORD
        self.flags.n = bool(result & (1 << 31))
        self.flags.z = result == 0
        self.flags.c = a >= b          # no borrow (unsigned)
        signed_result = _signed(a) - _signed(b)
        self.flags.v = not (-(1 << 31) <= signed_result < (1 << 31))

    def _check_alignment(self, address: int) -> None:
        if address % 4:
            raise SimulationError(f"unaligned access at 0x{address:x}")

    def _data_access(self, pc: int, address: int, is_load: bool,
                     extra: bool = False) -> int:
        """Account one D-cache access; returns its cycle cost."""
        self._check_alignment(address)
        hit = self.dcache.access(address)
        if self.collect_trace:
            self.access_trace.append(AccessEvent(pc, address, is_load, hit))
        self._step_accesses.append((hit, extra))
        cost = 0 if hit else self.config.dcache.miss_penalty
        if extra:
            cost += 1   # additional beat of a block transfer
        return cost

    def _load_word(self, address: int) -> int:
        return self.memory.get(address, 0)

    def _store_word(self, address: int, value: int) -> None:
        if self._text.contains(address):
            raise SimulationError(
                f"write to code section at 0x{address:x}")
        self.memory[address] = value & _WORD

    def _push(self, pc: int, instr: Instruction) -> int:
        count = len(instr.reglist)
        new_sp = (self.regs[SP] - 4 * count) & _WORD
        cost = 0
        for slot, reg in enumerate(instr.reglist):
            address = (new_sp + 4 * slot) & _WORD
            cost += self._data_access(pc, address, is_load=False,
                                      extra=slot > 0)
            self._store_word(address, self.regs[reg])
        self._write(SP, new_sp)
        return cost

    def _pop(self, pc: int, instr: Instruction) -> int:
        old_sp = self.regs[SP]
        cost = 0
        for slot, reg in enumerate(instr.reglist):
            address = (old_sp + 4 * slot) & _WORD
            cost += self._data_access(pc, address, is_load=True,
                                      extra=slot > 0)
            self._write(reg, self._load_word(address))
        self._write(SP, (old_sp + 4 * len(instr.reglist)) & _WORD)
        return cost


def _wrap(op):
    return lambda a, b: op(a, b) & _WORD


_ALU_REG_OPS = {
    Opcode.ADD: _wrap(lambda a, b: a + b),
    Opcode.SUB: _wrap(lambda a, b: a - b),
    Opcode.MUL: _wrap(lambda a, b: a * b),
    Opcode.AND: _wrap(lambda a, b: a & b),
    Opcode.OR: _wrap(lambda a, b: a | b),
    Opcode.XOR: _wrap(lambda a, b: a ^ b),
    Opcode.SHL: _wrap(lambda a, b: a << (b & 31)),
    Opcode.SHR: _wrap(lambda a, b: a >> (b & 31)),
    Opcode.ASR: _wrap(lambda a, b: _signed(a) >> (b & 31)),
}

_ALU_IMM_OPS = {
    Opcode.ADDI: _wrap(lambda a, b: a + b),
    Opcode.SUBI: _wrap(lambda a, b: a - b),
    Opcode.MULI: _wrap(lambda a, b: a * b),
    Opcode.ANDI: _wrap(lambda a, b: a & (b & _WORD)),
    Opcode.ORI: _wrap(lambda a, b: a | (b & _WORD)),
    Opcode.XORI: _wrap(lambda a, b: a ^ (b & _WORD)),
    Opcode.SHLI: _wrap(lambda a, b: a << (b & 31)),
    Opcode.SHRI: _wrap(lambda a, b: a >> (b & 31)),
    Opcode.ASRI: _wrap(lambda a, b: _signed(a) >> (b & 31)),
}


def run_program(program: Program, config: Optional[MachineConfig] = None,
                arguments: Optional[Dict[int, int]] = None,
                max_steps: int = 1_000_000,
                collect_trace: bool = False) -> ExecutionResult:
    """Convenience wrapper: simulate ``program`` from its entry point."""
    simulator = Simulator(program, config, collect_trace)
    return simulator.run(max_steps=max_steps, arguments=arguments)
