"""Concrete KRISC machine simulator (the executable ground truth)."""

from .cpu import (AccessEvent, ExecutionResult, FetchEvent, OutOfFuel,
                  SimulationError, Simulator, run_program)

__all__ = [
    "AccessEvent", "ExecutionResult", "FetchEvent", "OutOfFuel",
    "SimulationError", "Simulator", "run_program",
]
