"""Bound verification against concrete execution.

The paper's central promise is that analysis results "hold for all
executions".  This module productises the test suite's soundness
obligations (S1-S4 of DESIGN.md) as a public API: given a program, its
analysis results, and a set of concrete runs, check that

* every run's cycle count is within the WCET bound (S1),
* every run's stack high-water mark is within the stack bound (S2),
* no always-hit access missed and no always-miss access hit (S4),
* measured loop iteration counts respect the loop bounds (S5),
* an overlapped-pipeline bound never exceeds the additive reference
  bound for the same task (S6, when a reference result is supplied —
  overlap can only tighten),
* a *preempted* run's observed response stays within the analyzed
  response time `R_i` (S7) and the extra cache misses the victim
  suffers after preemptions stay within the CRPD extra-miss budget
  (S8) — the multi-task obligations of :mod:`repro.rta`, exercised
  through the preemptive simulator hook
  (:meth:`repro.sim.cpu.Simulator.run_preemptive`).

This is the harness a certification workflow would run in hardware-in-
the-loop testing to corroborate (never replace) the static argument.
The concrete runs are always simulated under the *same*
:class:`~repro.cache.config.MachineConfig` (including its
``pipeline_model``) the bounds were derived for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cache.abstract import Classification
from ..isa.program import Program
from ..sim.cpu import ExecutionResult, Simulator
from ..stack.analyzer import StackAnalysisResult
from ..wcet.ait import WCETResult


@dataclass
class Violation:
    """One observed contradiction of a verified bound (a genuine bug in
    the analyses if it ever occurs)."""

    kind: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


@dataclass
class VerificationReport:
    """Outcome of checking bounds against a batch of concrete runs."""

    runs: int = 0
    worst_cycles: int = 0
    worst_stack: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "OK" if self.ok else \
            f"{len(self.violations)} VIOLATIONS"
        return (f"{self.runs} runs checked: worst {self.worst_cycles} "
                f"cycles / {self.worst_stack} B stack — {verdict}")


class BoundChecker:
    """Checks analysis results against concrete executions."""

    def __init__(self, program: Program,
                 wcet: Optional[WCETResult] = None,
                 stack: Optional[StackAnalysisResult] = None,
                 reference: Optional[WCETResult] = None):
        self.program = program
        self.wcet = wcet
        self.stack = stack
        #: Additive-model result for the same task; enables the S6
        #: model-tightness obligation.
        self.reference = reference
        self._cache_expectation = self._collect_cache_expectations()

    def check_model_tightness(self, report: VerificationReport) -> None:
        """S6: an overlapped-model bound must not exceed the additive
        reference bound (run-independent; checked once per report)."""
        if self.wcet is None or self.reference is None:
            return
        if self.wcet.wcet_cycles > self.reference.wcet_cycles:
            report.violations.append(Violation(
                "S6", f"{self.wcet.timing.model} bound "
                f"{self.wcet.wcet_cycles} exceeds the "
                f"{self.reference.timing.model} reference bound "
                f"{self.reference.wcet_cycles}"))

    def _collect_cache_expectations(self) -> Dict[int, Classification]:
        """Per-PC *data*-access expectation, when unambiguous.

        Only addresses whose every context/occurrence classifies the
        same way can be checked against a flat PC-indexed trace.
        """
        if self.wcet is None:
            return {}
        by_pc: Dict[int, Classification] = {}
        conflicted = set()
        for item in self.wcet.dcache.all_accesses():
            pc = item.access.instruction.address
            outcome = item.classification
            if pc in by_pc and by_pc[pc] is not outcome:
                conflicted.add(pc)
            by_pc[pc] = outcome
        for pc in conflicted:
            del by_pc[pc]
        return by_pc

    def check_run(self, result: ExecutionResult,
                  report: VerificationReport) -> None:
        report.runs += 1
        report.worst_cycles = max(report.worst_cycles, result.cycles)
        report.worst_stack = max(report.worst_stack,
                                 result.max_stack_usage)

        if self.wcet is not None \
                and result.cycles > self.wcet.wcet_cycles:
            report.violations.append(Violation(
                "S1", f"run took {result.cycles} cycles, bound is "
                f"{self.wcet.wcet_cycles}"))
        if self.stack is not None \
                and result.max_stack_usage > self.stack.bound:
            report.violations.append(Violation(
                "S2", f"run used {result.max_stack_usage} B of stack, "
                f"bound is {self.stack.bound}"))
        self._check_cache_trace(result, report)
        self._check_loop_counts(result, report)

    def _check_cache_trace(self, result: ExecutionResult,
                           report: VerificationReport) -> None:
        if not self._cache_expectation or not result.access_trace:
            return
        seen_miss = set()
        for event in result.access_trace:
            expected = self._cache_expectation.get(event.pc)
            if expected is None:
                continue
            if expected is Classification.ALWAYS_HIT and not event.hit:
                report.violations.append(Violation(
                    "S4", f"always-hit access at 0x{event.pc:x} missed "
                    f"(address 0x{event.address:x})"))
            elif expected is Classification.ALWAYS_MISS and event.hit:
                report.violations.append(Violation(
                    "S4", f"always-miss access at 0x{event.pc:x} hit "
                    f"(address 0x{event.address:x})"))
            elif expected is Classification.PERSISTENT and not event.hit:
                line = self.wcet.dcache.config.line_of(event.address)
                if (event.pc, line) in seen_miss:
                    report.violations.append(Violation(
                        "S4", f"persistent access at 0x{event.pc:x} "
                        f"missed twice on line {line}"))
                seen_miss.add((event.pc, line))

    def _check_loop_counts(self, result: ExecutionResult,
                           report: VerificationReport) -> None:
        """Loop bounds are per *entry*; the flat per-PC trace is bounded
        by the product of bounds along the loop-nest chain, summed over
        the header's context instances."""
        if self.wcet is None:
            return
        bounds = self.wcet.loop_bounds
        allowance: Dict[int, int] = {}
        feasible: Dict[int, bool] = {}
        for loop in self.wcet.values.fixpoint.loop_forest:
            total = 1
            bounded = True
            node = loop
            while node is not None:
                bound = bounds.get(node.header)
                if bound is None or not bound.is_bounded:
                    bounded = False
                    break
                per_entry = bound.max_iterations
                if node is loop:
                    # Under a peeling policy this loop object is only
                    # the steady-state copy; its peeled prologue copies
                    # execute the same header address up to once each
                    # per entry into the nest and are not loops of the
                    # expanded graph themselves.
                    per_entry += node.header.context.peel_of(
                        node.header.block)
                total *= per_entry
                node = node.parent
            address = loop.header.block
            if not bounded:
                feasible[address] = False
                continue
            allowance[address] = allowance.get(address, 0) + total
            feasible.setdefault(address, True)
        for address, limit in allowance.items():
            if not feasible.get(address, False):
                continue
            executed = result.instruction_counts.get(address, 0)
            if executed > limit:
                report.violations.append(Violation(
                    "S5", f"loop header 0x{address:x} executed "
                    f"{executed} times, nest allowance is {limit}"))


def check_preempted_run(result: ExecutionResult,
                        solo: ExecutionResult,
                        response_bound: Optional[int],
                        fetch_miss_budget: int,
                        data_miss_budget: int,
                        report: VerificationReport,
                        label: str = "") -> None:
    """S7/S8 for one preempted execution.

    ``solo`` is the same victim run without preemptions; the budgets
    are *per preemption* (they scale by the number of preemptions the
    run actually served).  ``response_bound`` is the analyzed response
    time including the preemptors' own execution; ``None`` (the task
    was not proven schedulable) skips S7 — there is no bound to hold.
    """
    tag = f" [{label}]" if label else ""
    report.runs += 1
    report.worst_cycles = max(report.worst_cycles, result.cycles)
    report.worst_stack = max(report.worst_stack,
                             result.max_stack_usage)
    served = len(result.preemptions)
    if response_bound is not None and result.cycles > response_bound:
        report.violations.append(Violation(
            "S7", f"preempted run took {result.cycles} cycles, "
            f"analyzed response time is {response_bound}{tag}"))
    extra_fetch = result.task_fetch_misses - solo.fetch_misses
    extra_data = result.task_data_misses - solo.data_misses
    if extra_fetch > fetch_miss_budget * served:
        report.violations.append(Violation(
            "S8", f"{extra_fetch} extra I-cache misses after "
            f"{served} preemption(s), CRPD budget is "
            f"{fetch_miss_budget} per preemption{tag}"))
    if extra_data > data_miss_budget * served:
        report.violations.append(Violation(
            "S8", f"{extra_data} extra D-cache misses after "
            f"{served} preemption(s), CRPD budget is "
            f"{data_miss_budget} per preemption{tag}"))


def verify_preemption(program: Program,
                      preemptor: Program,
                      config=None,
                      response_bound: Optional[int] = None,
                      fetch_miss_budget: int = 0,
                      data_miss_budget: int = 0,
                      fractions: Sequence[float] = (0.25, 0.5, 0.75),
                      max_steps: int = 2_000_000,
                      report: Optional[VerificationReport] = None,
                      label: str = "") -> VerificationReport:
    """Check S7/S8 for one victim/preemptor pair.

    Runs the victim solo once, then once per entry of ``fractions``
    with a single preemption by ``preemptor`` fired at that fraction
    of the solo run's instruction count.
    """
    if report is None:
        report = VerificationReport()
    solo = Simulator(program, config=config).run(max_steps=max_steps)
    for fraction in fractions:
        simulator = Simulator(program, config=config)
        preempted = simulator.run_preemptive(
            [(int(solo.steps * fraction), preemptor)],
            max_steps=max_steps)
        check_preempted_run(preempted, solo, response_bound,
                            fetch_miss_budget, data_miss_budget,
                            report, label=f"{label}@{fraction}")
    return report


def verify_bounds(program: Program,
                  wcet: Optional[WCETResult] = None,
                  stack: Optional[StackAnalysisResult] = None,
                  input_sets: Optional[
                      Sequence[Dict[int, int]]] = None,
                  max_steps: int = 2_000_000,
                  reference: Optional[WCETResult] = None
                  ) -> VerificationReport:
    """Run the program on each input set and check all bounds.

    ``input_sets`` is a sequence of ``{register: value}`` dicts (the
    empty run is always included); runs are simulated under the config
    (and hence pipeline model) of ``wcet``.  ``reference`` optionally
    supplies the additive-model result for the S6 tightness check.
    Returns a :class:`VerificationReport`; ``report.ok`` must be True
    unless the analyses are broken.
    """
    checker = BoundChecker(program, wcet, stack, reference)
    report = VerificationReport()
    checker.check_model_tightness(report)
    for arguments in [None] + list(input_sets or []):
        simulator = Simulator(program, config=wcet.config if wcet
                              else None, collect_trace=True)
        result = simulator.run(max_steps=max_steps, arguments=arguments)
        checker.check_run(result, report)
    return report
