"""Corroborating verified bounds against concrete runs (S1-S5)."""

from .checker import (BoundChecker, VerificationReport, Violation,
                      verify_bounds)

__all__ = ["BoundChecker", "VerificationReport", "Violation",
           "verify_bounds"]
