"""Benchmark kernel sources (mini-C).

Re-implementations of the classic WCET benchmark kernels (Mälardalen
family) in mini-C — the workload classes the paper's evaluation domain
(automotive/avionics control code) consists of: sorting, filtering,
matrix math, CRCs, searches, and state machines.  Division-based
kernels are omitted (KRISC has no divide unit), matching the paper's
own domain where fixed-point shift/multiply code dominates.
"""

FIBCALL = """
// Iterative Fibonacci (fibcall): tight scalar loop.
int result;

int fib(int n) {
    int a = 0;
    int b = 1;
    int i;
    for (i = 0; i < n; i = i + 1) {
        int t = a + b;
        a = b;
        b = t;
    }
    return a;
}

void main() {
    result = fib(30);
}
"""

INSERTSORT = """
// Insertion sort (insertsort): data-dependent triangular inner loop.
int a[10] = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
int sorted;

void main() {
    int i;
    for (i = 1; i < 10; i = i + 1) {
        int key = a[i];
        int j = i;
        while (j > 0 && a[j - 1] > key) {
            a[j] = a[j - 1];
            j = j - 1;
        }
        a[j] = key;
    }
    sorted = a[0];
}
"""

BSORT = """
// Bubble sort (bsort): triangular nest with hoisted inner limit.
int a[12] = {12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
int swaps;

void main() {
    int i;
    swaps = 0;
    for (i = 0; i < 11; i = i + 1) {
        int lim = 11 - i;
        int j;
        for (j = 0; j < lim; j = j + 1) {
            if (a[j] > a[j + 1]) {
                int t = a[j];
                a[j] = a[j + 1];
                a[j + 1] = t;
                swaps = swaps + 1;
            }
        }
    }
}
"""

MATMULT = """
// Matrix multiply (matmult): 4x4 fixed-size triple nest.
int ma[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
int mb[16] = {16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
int mc[16];

void main() {
    int i;
    for (i = 0; i < 4; i = i + 1) {
        int j;
        for (j = 0; j < 4; j = j + 1) {
            int acc = 0;
            int k;
            for (k = 0; k < 4; k = k + 1) {
                acc = acc + ma[i * 4 + k] * mb[k * 4 + j];
            }
            mc[i * 4 + j] = acc;
        }
    }
}
"""

CRC = """
// CRC-8 (crc): byte loop with 8-bit inner shift/xor loop.
int message[16] = {0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x37, 0x38,
                   0x39, 0x30, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46};
int crc;

void main() {
    int c = 0;
    int i;
    for (i = 0; i < 16; i = i + 1) {
        c = c ^ message[i];
        int b;
        for (b = 0; b < 8; b = b + 1) {
            if (c & 0x80) {
                c = ((c << 1) ^ 0x31) & 0xFF;
            } else {
                c = (c << 1) & 0xFF;
            }
        }
    }
    crc = c;
}
"""

FIR = """
// FIR filter (fir): dot products over a sliding window.
int coeff[8] = {1, 3, 5, 7, 7, 5, 3, 1};
int sample[40];
int output[32];

void main() {
    int n;
    for (n = 0; n < 40; n = n + 1) {
        sample[n] = (n * 37) & 0xFF;
    }
    for (n = 0; n < 32; n = n + 1) {
        int acc = 0;
        int k;
        for (k = 0; k < 8; k = k + 1) {
            acc = acc + coeff[k] * sample[n + k];
        }
        output[n] = acc >> 5;
    }
}
"""

BINARY_SEARCH = """
// Binary search (bs): logarithmic loop needing a manual bound, like
// the aiT annotation workflow for non-counted loops.
int table[16] = {1, 4, 5, 8, 12, 17, 21, 22, 30, 33, 41, 47, 51, 60,
                 61, 63};
int found;

int search(int key) {
    int lo = 0;
    int hi = 15;
    while (lo <= hi) {
        int mid = (lo + hi) >> 1;
        int v = table[mid];
        if (v == key) {
            return mid;
        }
        if (v < key) {
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    return 0 - 1;
}

void main() {
    found = search(22);
}
"""

NSEARCH = """
// Nested search with early exit (ns): worst case scans everything.
int grid[25];
int position;

void main() {
    int i;
    for (i = 0; i < 25; i = i + 1) {
        grid[i] = i * 3;
    }
    position = 0 - 1;
    int r;
    for (r = 0; r < 5; r = r + 1) {
        int c;
        for (c = 0; c < 5; c = c + 1) {
            if (grid[r * 5 + c] == 72) {
                position = r * 5 + c;
                break;
            }
        }
        if (position >= 0) {
            break;
        }
    }
}
"""

CNT = """
// Matrix counting (cnt): classify elements of a matrix.
int m[20] = {5, -3, 7, -1, 0, 2, -8, 4, -6, 9,
             -2, 1, -7, 3, 0, -4, 6, -9, 8, -5};
int positives;
int negatives;
int postotal;

void main() {
    int i;
    positives = 0;
    negatives = 0;
    postotal = 0;
    for (i = 0; i < 20; i = i + 1) {
        int v = m[i];
        if (v > 0) {
            positives = positives + 1;
            postotal = postotal + v;
        } else {
            if (v < 0) {
                negatives = negatives + 1;
            }
        }
    }
}
"""

FDCT_LITE = """
// Fixed-point butterfly transform (fdct-style): straight-line
// shift/multiply arithmetic over an 8-sample block.
int block[8] = {96, 73, 61, 42, 38, 27, 14, 9};

void main() {
    int s0 = block[0] + block[7];
    int s1 = block[1] + block[6];
    int s2 = block[2] + block[5];
    int s3 = block[3] + block[4];
    int d0 = block[0] - block[7];
    int d1 = block[1] - block[6];
    int d2 = block[2] - block[5];
    int d3 = block[3] - block[4];
    block[0] = (s0 + s3 + s1 + s2) >> 1;
    block[4] = (s0 + s3 - s1 - s2) >> 1;
    block[2] = ((s0 - s3) * 35468 + (s1 - s2) * 17734) >> 16;
    block[6] = ((s0 - s3) * 17734 - (s1 - s2) * 35468) >> 16;
    block[1] = (d0 * 45451 + d1 * 38568 + d2 * 25172 + d3 * 9223) >> 16;
    block[3] = (d0 * 38568 - d1 * 9223 - d2 * 45451 - d3 * 25172) >> 16;
    block[5] = (d0 * 25172 - d1 * 45451 + d2 * 9223 + d3 * 38568) >> 16;
    block[7] = (d0 * 9223 - d1 * 25172 + d2 * 38568 - d3 * 45451) >> 16;
}
"""

STATE_MACHINE = """
// Protocol state machine (statemate-style): input-driven transitions
// with many conditional paths.
int events[24] = {0, 1, 2, 1, 0, 2, 2, 1, 0, 0, 1, 2,
                  1, 1, 0, 2, 0, 1, 2, 2, 1, 0, 1, 2};
int finalstate;
int errors;

void main() {
    int state = 0;
    int i;
    errors = 0;
    for (i = 0; i < 24; i = i + 1) {
        int e = events[i];
        if (state == 0) {
            if (e == 1) { state = 1; }
            else { if (e == 2) { state = 2; } }
        } else {
            if (state == 1) {
                if (e == 0) { state = 0; }
                else {
                    if (e == 2) { state = 3; }
                    else { errors = errors + 1; }
                }
            } else {
                if (state == 2) {
                    if (e == 1) { state = 3; }
                    else { state = 0; }
                } else {
                    state = 0;
                }
            }
        }
    }
    finalstate = state;
}
"""

EDN_LITE = """
// Vector kernels (edn-style): saturated MAC and vector max.
int vec1[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
int vec2[16] = {16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
int mac;
int vmax;

void main() {
    int acc = 0;
    int best = vec1[0];
    int i;
    for (i = 0; i < 16; i = i + 1) {
        acc = acc + vec1[i] * vec2[i];
        if (vec1[i] > best) {
            best = vec1[i];
        }
    }
    if (acc > 1000000) {
        acc = 1000000;
    }
    mac = acc;
    vmax = best;
}
"""

CALL_TREE = """
// Layered call tree (calltree): exercises context expansion and stack
// depth through a 3-deep call chain with frames.
int total;

int leaf(int x) {
    int buf[4];
    int i;
    for (i = 0; i < 4; i = i + 1) {
        buf[i] = x + i;
    }
    return buf[0] + buf[3];
}

int middle(int x) {
    int a = leaf(x);
    int b = leaf(x + 1);
    return a + b;
}

void main() {
    int i;
    total = 0;
    for (i = 0; i < 3; i = i + 1) {
        total = total + middle(i);
    }
}
"""

JANNE_COMPLEX = """
// Interacting loop counters (janne_complex): the inner trip count
// depends non-trivially on the outer counter's trajectory.
int result;

void main() {
    int a = 1;
    int b = 1;
    int count = 0;
    while (a < 30) {
        while (b < a) {
            if (b > 5) {
                b = b * 3;
            } else {
                b = b + 2;
            }
            if (b >= 10 && b <= 12) {
                a = a + 10;
            } else {
                a = a + 1;
            }
            count = count + 1;
        }
        a = a + 2;
        b = b - 10;
    }
    result = count;
}
"""

LCDNUM = """
// Seven-segment encoder (lcdnum): table-driven nibble decoding.
int segtable[16] = {0x3F, 0x06, 0x5B, 0x4F, 0x66, 0x6D, 0x7D, 0x07,
                    0x7F, 0x6F, 0x77, 0x7C, 0x39, 0x5E, 0x79, 0x71};
int display[10];
int input[10] = {0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0,
                 0x11, 0x99};

void main() {
    int i;
    for (i = 0; i < 10; i = i + 1) {
        int byte = input[i] & 0xFF;
        int high = (byte >> 4) & 0x0F;
        int low = byte & 0x0F;
        display[i] = (segtable[high] << 8) | segtable[low];
    }
}
"""

DUFF_LITE = """
// Strided copy (duff-style): stride-4 main loop plus remainder.
int src[30];
int dst[30];
int checksum;

void main() {
    int i;
    for (i = 0; i < 30; i = i + 1) {
        src[i] = (i * 19) & 0x7F;
    }
    for (i = 0; i + 3 < 30; i = i + 4) {
        dst[i] = src[i];
        dst[i + 1] = src[i + 1];
        dst[i + 2] = src[i + 2];
        dst[i + 3] = src[i + 3];
    }
    while (i < 30) {
        dst[i] = src[i];
        i = i + 1;
    }
    checksum = dst[29] + dst[0];
}
"""

LOADUSE_CHAIN = """
// Load-use chains (ludchain): every load's result feeds the next
// load's address — back-to-back load-use interlocks and data-dependent
// table walks (pipeline-stress kernel for the krisc5 timing model).
int next[16] = {5, 9, 12, 1, 14, 3, 7, 11, 0, 2, 4, 6, 8, 10, 13, 15};
int hops;

void main() {
    int p = 0;
    int i;
    hops = 0;
    for (i = 0; i < 48; i = i + 1) {
        p = next[p & 15];
        hops = hops + p;
    }
}
"""

BRANCH_DENSE = """
// Branch-dense control (branchy): three data-dependent conditionals
// per iteration over tiny blocks — taken-branch redirect pressure
// (pipeline-stress kernel for the krisc5 timing model).
int flags[24];
int ups;
int downs;
int zips;

void main() {
    int i;
    ups = 0;
    downs = 0;
    zips = 0;
    for (i = 0; i < 24; i = i + 1) {
        int v = flags[i];
        if (v & 1) {
            ups = ups + 1;
        } else {
            downs = downs + 1;
        }
        if (v & 2) {
            zips = zips + v;
        }
        if (ups > downs) {
            zips = zips + 1;
        } else {
            zips = zips - 1;
        }
    }
}
"""

MUL_BURST = """
// Multiply bursts (mulburst): two multiplies per iteration keep the
// EX stage busy so instruction fetches hide behind the interlock
// (pipeline-stress kernel for the krisc5 timing model).
int coeff[12] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8};
int acc;

void main() {
    int x = 3;
    int h = 0;
    int g = 0;
    int i;
    for (i = 0; i < 12; i = i + 1) {
        h = (h * x + coeff[i]) & 0xFFFF;
        g = g + ((h * h) & 0xFF);
    }
    acc = g + h;
}
"""
