"""Benchmark workload corpus (Mälardalen-style kernels in mini-C)."""

from .suite import (WORKLOADS, Workload, analyze_workload, get_workload,
                    observed_worst_case, random_inputs, simulate_workload,
                    workload_names)

__all__ = [
    "WORKLOADS", "Workload", "analyze_workload", "get_workload",
    "observed_worst_case", "random_inputs", "simulate_workload",
    "workload_names",
]
