"""Workload registry and analysis/simulation helpers.

Provides the benchmark corpus as first-class objects: compile a kernel
to a binary, run the full aiT pipeline on it (applying any loop
annotations the kernel is documented to need), and simulate it on
random inputs to measure observed execution times, stack depths, and
cache behaviour — the machinery behind experiments E1-E8.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cache.config import MachineConfig
from ..isa.program import Program
from ..lang.compiler import compile_program
from ..sim.cpu import ExecutionResult, Simulator
from ..wcet.ait import WCETResult, analyze_wcet
from . import kernels


@dataclass(frozen=True)
class Workload:
    """One benchmark kernel."""

    name: str
    description: str
    category: str
    source: str
    #: Randomisable input arrays: global name -> (length, (lo, hi)).
    input_arrays: Dict[str, Tuple[int, Tuple[int, int]]] = \
        field(default_factory=dict)
    #: Bounds for loops the analysis cannot bound, in address order of
    #: the unbounded loop headers (the aiT annotation workflow).
    manual_bounds_in_order: Tuple[int, ...] = ()

    def compile(self) -> Program:
        return compile_program(self.source)

    def memory_ranges(self, program: Program) -> Dict[int, Tuple[int, int]]:
        """Value-range annotations for the input arrays: the analysis
        must assume any value the randomiser may store, not the zeros
        (or constants) of the binary image — otherwise input-dependent
        branches would be statically decided and pruned, and the bound
        would not cover randomised runs."""
        ranges: Dict[int, Tuple[int, int]] = {}
        for name, (length, (low, high)) in self.input_arrays.items():
            base = program.symbol_address(f"g_{name}")
            for offset in range(length):
                ranges[base + 4 * offset] = (low, high)
        return ranges


WORKLOADS: Dict[str, Workload] = {}


def _register(workload: Workload) -> Workload:
    WORKLOADS[workload.name] = workload
    return workload


_register(Workload(
    name="fibcall",
    description="iterative Fibonacci, tight scalar loop",
    category="scalar",
    source=kernels.FIBCALL))

_register(Workload(
    name="insertsort",
    description="insertion sort, data-dependent triangular inner loop",
    category="sorting",
    source=kernels.INSERTSORT,
    input_arrays={"a": (10, (0, 100))}))

_register(Workload(
    name="bsort",
    description="bubble sort, triangular nest",
    category="sorting",
    source=kernels.BSORT,
    input_arrays={"a": (12, (0, 1000))}))

_register(Workload(
    name="matmult",
    description="4x4 integer matrix multiplication",
    category="math",
    source=kernels.MATMULT,
    input_arrays={"ma": (16, (-50, 50)), "mb": (16, (-50, 50))}))

_register(Workload(
    name="crc",
    description="CRC-8 over a 16-byte message, bit loops",
    category="bitops",
    source=kernels.CRC,
    input_arrays={"message": (16, (0, 255))}))

_register(Workload(
    name="fir",
    description="8-tap FIR filter over 32 outputs",
    category="dsp",
    source=kernels.FIR))

_register(Workload(
    name="bs",
    description="binary search (needs a loop annotation, like aiT)",
    category="search",
    source=kernels.BINARY_SEARCH,
    manual_bounds_in_order=(5,)))    # ceil(log2(16)) + 1

_register(Workload(
    name="ns",
    description="nested search with early exit",
    category="search",
    source=kernels.NSEARCH))

_register(Workload(
    name="cnt",
    description="count and sum matrix elements by sign",
    category="scalar",
    source=kernels.CNT,
    input_arrays={"m": (20, (-100, 100))}))

_register(Workload(
    name="fdct",
    description="fixed-point butterfly transform, straight-line",
    category="dsp",
    source=kernels.FDCT_LITE,
    input_arrays={"block": (8, (-128, 127))}))

_register(Workload(
    name="statemate",
    description="protocol state machine over an event trace",
    category="control",
    source=kernels.STATE_MACHINE,
    input_arrays={"events": (24, (0, 2))}))

_register(Workload(
    name="edn",
    description="vector MAC and max with saturation",
    category="dsp",
    source=kernels.EDN_LITE,
    input_arrays={"vec1": (16, (-100, 100)), "vec2": (16, (-100, 100))}))

_register(Workload(
    name="calltree",
    description="3-level call tree with stack frames",
    category="calls",
    source=kernels.CALL_TREE))

_register(Workload(
    name="duff",
    description="stride-4 copy with remainder loop",
    category="memory",
    source=kernels.DUFF_LITE))

_register(Workload(
    name="janne",
    description="interacting loop counters (needs annotations, like "
                "the original janne_complex)",
    category="control",
    source=kernels.JANNE_COMPLEX,
    manual_bounds_in_order=(16, 40)))

_register(Workload(
    name="lcdnum",
    description="seven-segment display encoder, table driven",
    category="bitops",
    source=kernels.LCDNUM,
    input_arrays={"input": (10, (0, 255))}))

_register(Workload(
    name="ludchain",
    description="dependent table walk, back-to-back load-use chains",
    category="pipeline",
    source=kernels.LOADUSE_CHAIN))

_register(Workload(
    name="branchy",
    description="branch-dense control, tiny blocks, redirect pressure",
    category="pipeline",
    source=kernels.BRANCH_DENSE,
    input_arrays={"flags": (24, (0, 3))}))

_register(Workload(
    name="mulburst",
    description="multiply bursts keeping the EX stage busy",
    category="pipeline",
    source=kernels.MUL_BURST))


def workload_names() -> List[str]:
    return sorted(WORKLOADS)


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; available: "
                       f"{', '.join(workload_names())}") from None


# -- Analysis with annotations --------------------------------------------------


def derive_manual_bounds(workload: Workload, bounds) -> Dict[int, int]:
    """Turn the discovery prefix's loop-bound table into the manual
    annotation mapping: the workload's documented bounds applied to
    the unbounded loop headers in address order (the aiT
    discover-then-annotate workflow)."""
    manual: Dict[int, int] = {}
    if workload.manual_bounds_in_order:
        unbounded = sorted(
            {header.block for header, bound in bounds.items()
             if not bound.is_bounded})
        for address, bound in zip(unbounded,
                                  workload.manual_bounds_in_order):
            manual[address] = bound
    return manual


def analyze_workload(workload: Workload,
                     config: Optional[MachineConfig] = None,
                     program: Optional[Program] = None,
                     phase_cache=None,
                     **kwargs) -> WCETResult:
    """Run the full WCET pipeline, applying the workload's documented
    loop annotations (found by the same discover-then-annotate loop an
    aiT user follows).

    ``program`` reuses an already-compiled binary (sweep workers
    compile each workload once); ``phase_cache`` threads a
    content-addressed artifact cache (:mod:`repro.batch`) through both
    the annotation-discovery prefix and the main analysis.
    """
    from ..wcet.ait import analyze_loop_annotations

    program = program or workload.compile()
    memory_ranges = workload.memory_ranges(program)
    manual: Dict[int, int] = {}
    if workload.manual_bounds_in_order:
        bounds = analyze_loop_annotations(program,
                                          memory_ranges=memory_ranges,
                                          phase_cache=phase_cache)
        manual = derive_manual_bounds(workload, bounds)
    return analyze_wcet(program, config=config, manual_loop_bounds=manual,
                        memory_ranges=memory_ranges,
                        phase_cache=phase_cache, **kwargs)


def sweep_suite(matrix: str = "all:all:all",
                parallel: int = 1,
                cache_dir: Optional[str] = None,
                use_cache: bool = True,
                jsonl_path: Optional[str] = None,
                cache_limit_mb: Optional[float] = None,
                **scheduler_options):
    """Run a workload-suite sweep through the batch engine.

    The sweep entry point the ``repro batch`` CLI (and through it the
    CI batch-smoke job) and ``benchmarks/run_perf.py`` share; see
    :mod:`repro.batch.jobs` for the matrix syntax.  Returns a
    :class:`~repro.batch.engine.SweepResult`.
    """
    from ..batch import expand_matrix, run_sweep

    return run_sweep(expand_matrix(matrix), parallel=parallel,
                     cache_dir=cache_dir, use_cache=use_cache,
                     jsonl_path=jsonl_path,
                     cache_limit_mb=cache_limit_mb,
                     **scheduler_options)


# -- Simulation with input randomisation ----------------------------------------


def simulate_workload(workload: Workload,
                      program: Optional[Program] = None,
                      config: Optional[MachineConfig] = None,
                      array_overrides: Optional[
                          Dict[str, Sequence[int]]] = None,
                      collect_trace: bool = False,
                      max_steps: int = 2_000_000) -> ExecutionResult:
    """Simulate one concrete run, optionally overriding input arrays."""
    program = program or workload.compile()
    simulator = Simulator(program, config, collect_trace)
    if array_overrides:
        for name, values in array_overrides.items():
            base = program.symbol_address(f"g_{name}")
            for offset, value in enumerate(values):
                simulator.memory[base + 4 * offset] = value & 0xFFFFFFFF
    return simulator.run(max_steps=max_steps)


def random_inputs(workload: Workload,
                  rng: random.Random) -> Dict[str, List[int]]:
    """Draw a random instantiation of the workload's input arrays."""
    overrides = {}
    for name, (length, (low, high)) in workload.input_arrays.items():
        overrides[name] = [rng.randint(low, high) for _ in range(length)]
    return overrides


def observed_worst_case(workload: Workload,
                        program: Optional[Program] = None,
                        config: Optional[MachineConfig] = None,
                        runs: int = 20,
                        seed: int = 12345) -> Tuple[int, int]:
    """(max cycles, max stack bytes) over the default input plus
    ``runs`` random input instantiations — the measurement-based
    estimate the paper argues is unsafe on its own."""
    program = program or workload.compile()
    rng = random.Random(seed)
    result = simulate_workload(workload, program, config)
    worst_cycles = result.cycles
    worst_stack = result.max_stack_usage
    for _ in range(runs if workload.input_arrays else 0):
        result = simulate_workload(
            workload, program, config,
            array_overrides=random_inputs(workload, rng))
        worst_cycles = max(worst_cycles, result.cycles)
        worst_stack = max(worst_stack, result.max_stack_usage)
    return worst_cycles, worst_stack
