"""Synthetic large-program generator (ILP-engine scaling corpus).

The hand-written kernels top out around 600 instructions; this module
generates mini-C programs in the thousands — deep call trees, dense
data-dependent branching, and per-function loops — so the path-analysis
engine is exercised at the program sizes the ROADMAP targets.  The
shape is a complete call tree: every internal function calls its
``fanout`` children (each child from exactly one call site, so full
call-string expansion stays linear in the function count) around a
branch-dense scalar section; leaves run a bounded filter loop with an
if/else ladder in the body.

Determinism matters more than realism: the source depends only on the
parameters, so generated programs can serve as regression-guarded
benchmark points.
"""

from __future__ import annotations

from typing import List

#: Parameters of the default corpus point (~2.5k instructions).
LARGE_DEPTH = 5
LARGE_FANOUT = 2
LARGE_LOOP = 12


def generate_large_source(depth: int = LARGE_DEPTH,
                          fanout: int = LARGE_FANOUT,
                          loop_iterations: int = LARGE_LOOP) -> str:
    """A deep-call-tree mini-C program of roughly
    ``fanout**depth * 40`` instructions."""
    parts: List[str] = [
        "int data[32];",
        "int flags[16];",
        "int result;",
    ]

    def leaf(name: str, salt: int) -> str:
        return f"""
int {name}(int seed) {{
    int acc = seed + {salt};
    int i;
    for (i = 0; i < {loop_iterations}; i = i + 1) {{
        int v = (data[i & 31] ^ acc) + {salt % 7 + 1};
        if (v > 64) {{
            acc = acc + (v >> 2);
        }} else {{
            if (flags[i & 15] > 1) {{
                acc = acc + (v << 1) - {salt % 5};
            }} else {{
                acc = acc - v;
            }}
        }}
        data[i & 31] = acc & 0xFFFF;
    }}
    return acc;
}}"""

    def internal(name: str, children: List[str], salt: int) -> str:
        calls = "\n    ".join(
            f"acc = acc + {child}(acc + {k + 1});"
            for k, child in enumerate(children))
        return f"""
int {name}(int seed) {{
    int acc = seed ^ {salt};
    if (flags[{salt % 16}] > 0) {{
        acc = acc + {salt % 9 + 1};
    }} else {{
        acc = acc - {salt % 3 + 1};
    }}
    {calls}
    if (acc > 4096) {{
        acc = acc - (acc >> 3);
    }}
    return acc;
}}"""

    # Emit leaves first so every function is defined before its caller
    # references it (single-pass compilers appreciate the order; ours
    # does not care, but the source reads top-down by level).
    names_by_level: List[List[str]] = []
    for level in range(depth + 1):
        names_by_level.append(
            [f"f{level}_{i}" for i in range(fanout ** level)])
    for level in range(depth, -1, -1):
        for i, name in enumerate(names_by_level[level]):
            salt = level * 131 + i * 17 + 3
            if level == depth:
                parts.append(leaf(name, salt))
            else:
                children = names_by_level[level + 1][
                    i * fanout:(i + 1) * fanout]
                parts.append(internal(name, children, salt))

    parts.append(f"""
void main() {{
    int i;
    for (i = 0; i < 32; i = i + 1) {{ data[i] = i * 13; }}
    for (i = 0; i < 16; i = i + 1) {{ flags[i] = i & 3; }}
    result = f0_0(1);
}}""")
    return "\n".join(parts)
