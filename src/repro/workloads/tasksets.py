"""Example OSEK-style task sets over the workload suite.

The multi-task counterpart of :data:`repro.workloads.suite.WORKLOADS`:
small task systems binding suite workloads, used by the RTA tests, the
``rta-smoke`` CI job, and as documentation of the task-set JSON shape
(``tasksets/*.json`` mirrors ``ecu_mix``).

Periods are in cycles and chosen relative to the workloads' analyzed
WCETs under the default machine: the first three sets are comfortably
schedulable (so the CRPD-vs-naive comparison has finite responses on
both sides), ``threshold_group`` disables preemption entirely through
one shared threshold, and ``overload`` is deliberately infeasible
(utilization > 1) to pin the divergence-handling verdict.
"""

from __future__ import annotations

from typing import Dict, List

from ..rta.taskset import RTTask, TaskSet

EXAMPLE_TASKSETS: Dict[str, TaskSet] = {}


def _register(taskset: TaskSet) -> TaskSet:
    EXAMPLE_TASKSETS[taskset.name] = taskset
    return taskset


#: Mixed ECU load: a fast control task over slower logging/background
#: work.  All three can preempt whatever runs below them.
ECU_MIX = _register(TaskSet(
    name="ecu_mix",
    context_switch_cycles=40,
    tasks=(
        RTTask(name="ctrl", workload="fibcall", priority=3,
               period=6_000),
        RTTask(name="sense", workload="bs", priority=2,
               period=9_000, jitter=200),
        RTTask(name="log", workload="cnt", priority=1,
               period=40_000),
    )))

#: Signal-processing pair plus a housekeeping task.
SENSOR_FUSION = _register(TaskSet(
    name="sensor_fusion",
    context_switch_cycles=25,
    tasks=(
        RTTask(name="filter", workload="fir", priority=3,
               period=60_000),
        RTTask(name="search", workload="bs", priority=2,
               period=90_000),
        RTTask(name="sort", workload="insertsort", priority=1,
               period=300_000),
    )))

#: Control stack with release jitter on the preemptors.
CONTROL_STACK = _register(TaskSet(
    name="control_stack",
    context_switch_cycles=30,
    tasks=(
        RTTask(name="fast", workload="fibcall", priority=2,
               period=4_000, jitter=500),
        RTTask(name="slow", workload="cnt", priority=1,
               period=30_000),
    )))

#: One preemption-threshold group: every task's threshold is the
#: system ceiling, so nothing ever nests — response times degrade to
#: plain blocking-free WCETs and CRPD never applies (the RTA analogue
#: of the stack analysis' non-nesting threshold groups).
THRESHOLD_GROUP = _register(TaskSet(
    name="threshold_group",
    tasks=(
        RTTask(name="a", workload="fibcall", priority=3, threshold=3,
               period=5_000),
        RTTask(name="b", workload="bs", priority=2, threshold=3,
               period=8_000),
        RTTask(name="c", workload="cnt", priority=1, threshold=3,
               period=20_000),
    )))

#: Deliberately infeasible: utilization far above 1 — the recurrence
#: must saturate into "unschedulable", never loop forever.
OVERLOAD = _register(TaskSet(
    name="overload",
    tasks=(
        RTTask(name="hog", workload="cnt", priority=2, period=1_000),
        RTTask(name="starved", workload="fibcall", priority=1,
               period=2_000),
    )))


def example_tasksets() -> List[TaskSet]:
    return list(EXAMPLE_TASKSETS.values())
