"""Selection of the abstract-domain implementation.

Two interchangeable implementations back the hot abstract domains (the
must/may/persistence cache states and the value-analysis memory /
block transfer):

* ``python`` — the original dict-of-int / per-instruction reference
  implementation, kept as the differential oracle,
* ``numpy`` — dense age matrices and packed bound arrays whose lattice
  operations are whole-array numpy kernels (the default).

Both produce bit-identical analysis results (pinned by the golden-bounds
matrix and the hypothesis lockstep suite in
``tests/test_vectorized_domains.py``); they differ only in speed.  The
implementation is chosen, in decreasing precedence, by an explicit
``domain_impl`` argument (CLI ``--domain-impl``), the
:class:`~repro.cache.config.MachineConfig` field, the
``REPRO_DOMAIN_IMPL`` environment variable, and finally the default.
"""

from __future__ import annotations

import os
from typing import Optional

#: Recognised implementation names.
DOMAIN_IMPLS = ("python", "numpy")

#: Implementation used when neither an argument nor the environment
#: selects one.
DEFAULT_DOMAIN_IMPL = "numpy"

#: Environment variable consulted when no explicit choice is given.
DOMAIN_IMPL_ENV = "REPRO_DOMAIN_IMPL"


def resolve_domain_impl(value: Optional[str] = None) -> str:
    """The effective implementation name for ``value``.

    ``None`` falls back to ``$REPRO_DOMAIN_IMPL``, then to
    :data:`DEFAULT_DOMAIN_IMPL`.  Unknown names raise ``ValueError``
    (including unknown values of the environment variable, so typos
    fail loudly instead of silently running the default).
    """
    chosen = value
    if chosen is None:
        chosen = os.environ.get(DOMAIN_IMPL_ENV) or DEFAULT_DOMAIN_IMPL
    if chosen not in DOMAIN_IMPLS:
        raise ValueError(
            f"unknown domain implementation {chosen!r}; expected one of "
            f"{', '.join(DOMAIN_IMPLS)} (via --domain-impl, "
            f"MachineConfig.domain_impl, or ${DOMAIN_IMPL_ENV})")
    return chosen
