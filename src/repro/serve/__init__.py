"""WCET analysis as a service: ``repro serve`` and its client.

The paper presents aiT/StackAnalyzer as tools developers iterate
against — edit a function, re-check the bound.  This package is that
loop as a long-running HTTP daemon: one shared content-addressed
artifact cache with function-grained incremental keys, so re-analyzing
an edited program recomputes only the phases whose inputs changed.
"""

from .client import (ServeClientError, analyze, cancel, poll,
                     server_stats, submit)
from .http import AnalysisRequestHandler, AnalysisServer
from .journal import TERMINAL_STATUSES, JobJournal
from .service import (AnalysisRequest, AnalysisService, JobCancelled,
                      JobTimeout, PointPlan, ValidationError)

__all__ = [
    "AnalysisRequest",
    "AnalysisRequestHandler",
    "AnalysisServer",
    "AnalysisService",
    "JobCancelled",
    "JobJournal",
    "JobTimeout",
    "PointPlan",
    "ServeClientError",
    "TERMINAL_STATUSES",
    "ValidationError",
    "analyze",
    "cancel",
    "poll",
    "server_stats",
    "submit",
]
