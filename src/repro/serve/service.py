"""The analysis service behind ``repro serve``.

:class:`AnalysisService` turns the batch layer's one-shot sweep
machinery into a long-running, shared facility: every request — a
mini-C source or KRISC assembly plus a (policies x models) matrix —
runs through one shared :class:`~repro.batch.cachestore.ArtifactCache`
on a bounded thread pool, so a client that edits a function and
re-submits pays only for the phases whose inputs actually changed.

That incrementality comes from sub-program cache granularity: phase
keys digest the call-graph-reachable *slice* of the submitted binary
(:meth:`repro.isa.program.Program.reachable_slice`), not the whole
image, so an edit to a function the analyzed entry never reaches — or
to data no reachable function references — leaves every phase key of
the re-submission identical to the cached run.

Each request expands to a deduplicated :class:`~repro.batch.dag.TaskDAG`
(two models share their point's cfg/value/loopbounds/icache/dcache
artifacts, exactly as in a batch sweep) and drains through
:class:`~repro.batch.scheduler._TaskContext`, so serve-computed
artifacts live under the same keys a batch sweep or a plain
:func:`~repro.wcet.ait.analyze_wcet` would address.  Hit/miss
provenance per phase uses the sweep's canonical-owner attribution
(:meth:`~repro.batch.dag.SweepDAG.row_events`).

The job lifecycle is fault-tolerant: transitions are journalled
durably (:mod:`repro.serve.journal`) so a restarted server answers for
finished jobs and marks crashed-in-flight ones ``interrupted``; the
in-memory job table is a bounded LRU (finished records evict once it
overflows ``max_jobs`` — the journal keeps the durable copy); jobs
can be cancelled (``DELETE /jobs/<id>``, a cooperative cancel event
checked between phase tasks) and carry optional per-job wall-clock
deadlines (``timeout_seconds``, expiring into a ``timeout`` status).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..cache.config import PIPELINE_MODELS, MachineConfig
from ..isa import assemble
from ..isa.program import Program
from ..lang import compile_program
from ..wcet.ait import PHASES, build_wcet_result, phase_plan
from ..batch.cachestore import ArtifactCache
from ..batch.dag import SweepDAG, TaskDAG, _wrap_phase
from ..batch.engine import _result_row
from ..batch.jobs import JobSpec, parse_policy
from ..batch.scheduler import _TaskContext
from .journal import TERMINAL_STATUSES, JobJournal


class ValidationError(ValueError):
    """A malformed analyze request (mapped to HTTP 400)."""


class JobCancelled(Exception):
    """Internal: the job's cancel event fired between phase tasks."""


class JobTimeout(Exception):
    """Internal: the job's wall-clock deadline expired."""


_ALLOWED_FIELDS = frozenset({
    "source", "assembly", "policies", "models", "entry",
    "loop_bounds", "register_ranges", "label", "timeout_seconds",
})

#: Main-chain dependency structure of the seven phases (mirrors
#: :func:`repro.batch.dag._job_identities` for unannotated programs).
_PHASE_DEPS = {
    "cfg": (),
    "value": ("cfg",),
    "loopbounds": ("value",),
    "icache": ("cfg",),
    "dcache": ("cfg", "value"),
    "pipeline": ("cfg", "icache", "dcache"),
    "path": ("cfg", "pipeline", "loopbounds", "value"),
}


def _parse_int(value: Any, what: str) -> int:
    if isinstance(value, bool):
        raise ValidationError(f"{what} must be an integer, got {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        try:
            return int(value, 0)
        except ValueError:
            pass
    raise ValidationError(f"{what} must be an integer, got {value!r}")


class AnalysisRequest:
    """A validated ``POST /analyze`` payload."""

    def __init__(self, payload: Any):
        if not isinstance(payload, dict):
            raise ValidationError("request body must be a JSON object")
        unknown = sorted(set(payload) - _ALLOWED_FIELDS)
        if unknown:
            raise ValidationError(
                f"unknown field(s): {', '.join(unknown)}; allowed: "
                f"{', '.join(sorted(_ALLOWED_FIELDS))}")

        source = payload.get("source")
        assembly = payload.get("assembly")
        if (source is None) == (assembly is None):
            raise ValidationError(
                "exactly one of 'source' (mini-C) or 'assembly' "
                "(KRISC) is required")
        text = source if source is not None else assembly
        if not isinstance(text, str) or not text.strip():
            raise ValidationError(
                "'source'/'assembly' must be a non-empty string")
        self.source: Optional[str] = source
        self.assembly: Optional[str] = assembly

        self.policies = self._string_list(
            payload.get("policies"), "policies", ["full"])
        for policy in self.policies:
            try:
                parse_policy(policy)
            except ValueError as exc:
                raise ValidationError(str(exc)) from None
        self.models = self._string_list(
            payload.get("models"), "models", ["additive"])
        for model in self.models:
            if model not in PIPELINE_MODELS:
                raise ValidationError(
                    f"unknown pipeline model {model!r}; expected one "
                    f"of {', '.join(PIPELINE_MODELS)}")

        entry = payload.get("entry")
        if entry is not None and (not isinstance(entry, str)
                                  or not entry.strip()):
            raise ValidationError("'entry' must be a symbol name")
        self.entry: Optional[str] = entry

        self.loop_bounds: Optional[Dict[int, int]] = None
        bounds = payload.get("loop_bounds")
        if bounds is not None:
            if not isinstance(bounds, dict):
                raise ValidationError(
                    "'loop_bounds' must be an object of ADDR -> N")
            self.loop_bounds = {
                _parse_int(addr, "loop-bound address"):
                _parse_int(count, "loop bound")
                for addr, count in bounds.items()}

        self.register_ranges: Optional[Dict[int, Tuple[int, int]]] = None
        ranges = payload.get("register_ranges")
        if ranges is not None:
            if not isinstance(ranges, dict):
                raise ValidationError(
                    "'register_ranges' must be an object of "
                    "REG -> [LO, HI]")
            parsed = {}
            for register, span in ranges.items():
                if isinstance(register, str):
                    register = register.lstrip("Rr")
                index = _parse_int(register, "register")
                if not isinstance(span, (list, tuple)) or len(span) != 2:
                    raise ValidationError(
                        f"register range for R{index} must be "
                        f"[LO, HI], got {span!r}")
                parsed[index] = (_parse_int(span[0], "range low"),
                                 _parse_int(span[1], "range high"))
            self.register_ranges = parsed

        label = payload.get("label", "request")
        if not isinstance(label, str) or not label.strip():
            raise ValidationError("'label' must be a non-empty string")
        self.label = label

        timeout = payload.get("timeout_seconds")
        if timeout is not None:
            if isinstance(timeout, bool) \
                    or not isinstance(timeout, (int, float)) \
                    or not timeout > 0:
                raise ValidationError(
                    "'timeout_seconds' must be a positive number")
        self.timeout_seconds: Optional[float] = \
            float(timeout) if timeout is not None else None

    @staticmethod
    def _string_list(value: Any, what: str,
                     default: List[str]) -> List[str]:
        if value is None:
            return list(default)
        if isinstance(value, str):
            value = [value]
        if not isinstance(value, list) or not value \
                or not all(isinstance(item, str) for item in value):
            raise ValidationError(
                f"'{what}' must be a non-empty list of strings")
        # Same dedup-preserving-order rule as the batch matrix.
        return list(dict.fromkeys(value))

    def load_program(self) -> Program:
        if self.source is not None:
            return compile_program(self.source)
        return assemble(self.assembly)


class PointPlan:
    """Executable phase templates of one (policy, model) point.

    The same shape as the worker-side :class:`~repro.batch.dag.JobPlan`
    — a ``templates`` dict of :class:`~repro.batch.dag.ExecTemplate` —
    which is the whole interface
    :class:`~repro.batch.scheduler._TaskContext` needs to chain keys
    and resolve artifacts.
    """

    def __init__(self, program: Program, request: AnalysisRequest,
                 policy: str, model: str):
        self.config = MachineConfig.default().with_model(model)
        self.policy_desc = parse_policy(policy).describe()
        entry = program.symbol_address(request.entry) \
            if request.entry is not None else None
        tasks = phase_plan(
            program, entry=entry,
            register_ranges=request.register_ranges,
            manual_loop_bounds=request.loop_bounds,
            context_policy=parse_policy(policy),
            pipeline_model=model)
        self.templates = {task.name: _wrap_phase(task.name, "", task)
                          for task in tasks}


class AnalysisService:
    """Long-running WCET analysis with a shared artifact cache.

    ``submit`` validates eagerly (raising :class:`ValidationError`) and
    queues the job on a bounded thread pool; ``job`` polls its record.
    All jobs share one :class:`ArtifactCache` whose in-memory memo is
    LRU-bounded, so the process neither recomputes unchanged phases nor
    grows without limit.

    With ``journal_dir`` every job transition is durably journalled:
    construction replays the journal, so finished jobs answer across
    restarts and jobs a crash caught mid-flight come back as
    ``interrupted``.  The in-memory job table holds at most
    ``max_jobs`` records — once it overflows, the oldest *finished*
    records evict (``jobs_evicted`` in :meth:`stats`); running jobs
    are never evicted.
    """

    #: Default bound of the in-memory job table.
    MAX_JOBS = 256

    def __init__(self, cache_dir: Optional[str] = None,
                 workers: int = 2,
                 salt: Optional[str] = None,
                 cache_limit_mb: Optional[float] = None,
                 memo_entries: Optional[int] =
                 ArtifactCache.MEMO_ENTRY_LIMIT,
                 memo_bytes: Optional[int] =
                 ArtifactCache.MEMO_BYTE_LIMIT,
                 max_jobs: int = MAX_JOBS,
                 journal_dir: Optional[str] = None):
        limit_bytes = int(cache_limit_mb * 1024 * 1024) \
            if cache_limit_mb is not None else None
        self.cache = ArtifactCache(cache_dir, salt=salt,
                                   limit_bytes=limit_bytes,
                                   memo_entries=memo_entries,
                                   memo_bytes=memo_bytes)
        self.workers = workers
        self.max_jobs = max(1, max_jobs)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self._jobs: "OrderedDict[str, dict]" = OrderedDict()
        self._cancel_events: Dict[str, threading.Event] = {}
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.jobs_evicted = 0
        self.jobs_interrupted = 0

        self.journal: Optional[JobJournal] = None
        next_id = 1
        if journal_dir is not None:
            self.journal = JobJournal(journal_dir)
            replayed, last_id = self.journal.replay()
            next_id = last_id + 1
            interrupted = [job_id for job_id, record in replayed.items()
                           if record["status"] == "interrupted"]
            self.jobs_interrupted = len(interrupted)
            self.journal.mark_interrupted(interrupted)
            for job_id, record in replayed.items():
                record["replayed"] = True
                self._jobs[job_id] = record
            self._evict_finished_locked()
        self._ids = itertools.count(next_id)

    # -- Public API ---------------------------------------------------------

    def submit(self, payload: Any) -> str:
        """Validate ``payload`` and queue the analysis; returns the job
        id.  Raises :class:`ValidationError` on a malformed request."""
        request = AnalysisRequest(payload)
        job_id = f"job-{next(self._ids)}"
        record = {"id": job_id, "status": "pending",
                  "label": request.label}
        with self._lock:
            self._jobs[job_id] = dict(record)
            self._cancel_events[job_id] = threading.Event()
            self._evict_finished_locked()
        self._journal({**record, "time": time.time()})
        self._pool.submit(self._run, job_id, request)
        return job_id

    def job(self, job_id: str) -> Optional[dict]:
        """A JSON-able snapshot of one job's record, or ``None``."""
        with self._lock:
            record = self._jobs.get(job_id)
            return dict(record) if record is not None else None

    def cancel(self, job_id: str) -> Optional[dict]:
        """Request cancellation of one job (``DELETE /jobs/<id>``).

        Pending jobs cancel before they start; running jobs observe
        the cooperative cancel event between phase tasks.  Finished
        jobs are left as they are (cancellation is idempotent and
        never un-finishes a record).  Returns the record snapshot, or
        ``None`` for an unknown job.
        """
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                return None
            event = self._cancel_events.get(job_id)
            if event is not None \
                    and record["status"] not in TERMINAL_STATUSES:
                event.set()
                record["cancel_requested"] = True
            return dict(record)

    def stats(self) -> dict:
        """Service-level counters for ``GET /stats``."""
        with self._lock:
            statuses = [record["status"]
                        for record in self._jobs.values()]
        counts = {status: statuses.count(status)
                  for status in ("pending", "running", "done", "error",
                                 "cancelled", "timeout", "interrupted")}
        return {
            "workers": self.workers,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "jobs": {"total": len(statuses),
                     "jobs_evicted": self.jobs_evicted,
                     **counts},
            "cache": {"hits": self.cache.hits,
                      "misses": self.cache.misses,
                      "hit_ratio": round(self.cache.hit_ratio(), 4),
                      "evictions": self.cache.evictions,
                      "quarantined": self.cache.quarantined,
                      "memo": self.cache.memo_stats()},
        }

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        if self.journal is not None:
            self.journal.close()

    # -- Execution ----------------------------------------------------------

    def _journal(self, record: dict) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _evict_finished_locked(self) -> None:
        """Shed the oldest finished records past ``max_jobs`` (caller
        holds the lock).  Active jobs are never evicted, so the table
        can transiently exceed the bound under a burst of in-flight
        work; the journal keeps the durable copy of whatever leaves."""
        if len(self._jobs) <= self.max_jobs:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.max_jobs:
                break
            if self._jobs[job_id]["status"] in TERMINAL_STATUSES:
                del self._jobs[job_id]
                self._cancel_events.pop(job_id, None)
                self.jobs_evicted += 1

    def _finish(self, job_id: str, update: dict) -> None:
        with self._lock:
            self._jobs[job_id].update(update)
            self._cancel_events.pop(job_id, None)
        self._journal({"id": job_id, **update, "time": time.time()})

    def _run(self, job_id: str, request: AnalysisRequest) -> None:
        cancel_event = self._cancel_events.get(job_id)
        if cancel_event is not None and cancel_event.is_set():
            self._finish(job_id, {"status": "cancelled"})
            return
        with self._lock:
            self._jobs[job_id]["status"] = "running"
        self._journal({"id": job_id, "status": "running",
                       "time": time.time()})
        deadline = time.monotonic() + request.timeout_seconds \
            if request.timeout_seconds is not None else None
        try:
            outcome = self._analyze(request, cancel_event, deadline)
        except JobCancelled:
            update = {"status": "cancelled"}
        except JobTimeout:
            update = {"status": "timeout",
                      "error": f"deadline of "
                               f"{request.timeout_seconds}s exceeded"}
        except Exception as exc:
            update = {"status": "error",
                      "error": f"{type(exc).__name__}: {exc}"}
        else:
            update = {"status": "done", **outcome}
        self._finish(job_id, update)

    @staticmethod
    def _check_abort(cancel_event: Optional[threading.Event],
                     deadline: Optional[float]) -> None:
        """Cooperative cancellation/deadline check between phase
        tasks (a task in flight finishes; its artifact stays cached,
        so a resubmission still profits from the partial work)."""
        if cancel_event is not None and cancel_event.is_set():
            raise JobCancelled()
        if deadline is not None and time.monotonic() >= deadline:
            raise JobTimeout()

    def _analyze(self, request: AnalysisRequest,
                 cancel_event: Optional[threading.Event] = None,
                 deadline: Optional[float] = None) -> dict:
        start = time.perf_counter()
        compile_start = time.perf_counter()
        program = request.load_program()
        compile_seconds = time.perf_counter() - compile_start

        points = [(policy, model) for policy in request.policies
                  for model in request.models]
        specs = [JobSpec(request.label, policy, model)
                 for policy, model in points]
        plans = [PointPlan(program, request, policy, model)
                 for policy, model in points]
        contexts = [_TaskContext(plan, self.cache) for plan in plans]

        # One deduplicated DAG per request: both models of a policy
        # share every model-independent phase node, so provenance and
        # work match a batch sweep of the same matrix.
        dag = TaskDAG()
        job_phase_nodes: List[Dict[str, Any]] = []
        for index, (spec, plan) in enumerate(zip(specs, plans)):
            by_template: Dict[str, Any] = {}
            for phase in PHASES:
                identity: Tuple = (phase, plan.policy_desc)
                if phase in ("pipeline", "path"):
                    identity += (spec.model,)
                by_template[phase] = dag.add_node(
                    identity, f"{spec.job_id}:{phase}", "phase", spec,
                    phase, [by_template[dep]
                            for dep in _PHASE_DEPS[phase]], index)
            job_phase_nodes.append(by_template)
        sweep = SweepDAG(specs, dag, [None] * len(specs),
                         job_phase_nodes, {})

        # Drain the DAG in this pool thread (cross-request concurrency
        # comes from the service pool; the shared cache makes artifacts
        # visible across requests the moment they are stored).
        ready = dag.start()
        while ready:
            self._check_abort(cancel_event, deadline)
            node = ready.pop(0)
            owner = node.refs[0][0]
            phase_start = time.perf_counter()
            computed = contexts[owner].ensure(node.template)
            dag.complete(node, computed=computed,
                         seconds=time.perf_counter() - phase_start)
            ready.extend(dag.pop_ready())

        rows = []
        for index, (spec, plan, context) in enumerate(
                zip(specs, plans, contexts)):
            self._check_abort(cancel_event, deadline)
            row_start = time.perf_counter()
            artifacts = {}
            phase_seconds = {}
            for phase in PHASES:
                value_start = time.perf_counter()
                artifacts[phase] = context.value_of(phase)
                phase_seconds[phase] = \
                    time.perf_counter() - value_start
            result = build_wcet_result(program, plan.config, artifacts,
                                       phase_seconds,
                                       sweep.row_events(index))
            rows.append(_result_row(
                spec, result, time.perf_counter() - row_start))

        hits = sum(row["cache"]["hits"] for row in rows)
        misses = sum(row["cache"]["misses"] for row in rows)
        total = hits + misses
        return {
            "rows": rows,
            "compile_seconds": round(compile_seconds, 6),
            "wall_seconds": round(time.perf_counter() - start, 6),
            "cache": {"hits": hits, "misses": misses,
                      "hit_ratio": round(hits / total, 4)
                      if total else 0.0},
        }
