"""The analysis service behind ``repro serve``.

:class:`AnalysisService` turns the batch layer's one-shot sweep
machinery into a long-running, shared facility: every request — a
mini-C source or KRISC assembly plus a (policies x models) matrix —
runs through one shared :class:`~repro.batch.cachestore.ArtifactCache`
on a bounded thread pool, so a client that edits a function and
re-submits pays only for the phases whose inputs actually changed.

That incrementality comes from sub-program cache granularity: phase
keys digest the call-graph-reachable *slice* of the submitted binary
(:meth:`repro.isa.program.Program.reachable_slice`), not the whole
image, so an edit to a function the analyzed entry never reaches — or
to data no reachable function references — leaves every phase key of
the re-submission identical to the cached run.

Each request expands to a deduplicated :class:`~repro.batch.dag.TaskDAG`
(two models share their point's cfg/value/loopbounds/icache/dcache
artifacts, exactly as in a batch sweep) and drains through
:class:`~repro.batch.scheduler._TaskContext`, so serve-computed
artifacts live under the same keys a batch sweep or a plain
:func:`~repro.wcet.ait.analyze_wcet` would address.  Hit/miss
provenance per phase uses the sweep's canonical-owner attribution
(:meth:`~repro.batch.dag.SweepDAG.row_events`).
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..cache.config import PIPELINE_MODELS, MachineConfig
from ..isa import assemble
from ..isa.program import Program
from ..lang import compile_program
from ..wcet.ait import PHASES, build_wcet_result, phase_plan
from ..batch.cachestore import ArtifactCache
from ..batch.dag import SweepDAG, TaskDAG, _wrap_phase
from ..batch.engine import _result_row
from ..batch.jobs import JobSpec, parse_policy
from ..batch.scheduler import _TaskContext


class ValidationError(ValueError):
    """A malformed analyze request (mapped to HTTP 400)."""


_ALLOWED_FIELDS = frozenset({
    "source", "assembly", "policies", "models", "entry",
    "loop_bounds", "register_ranges", "label",
})

#: Main-chain dependency structure of the seven phases (mirrors
#: :func:`repro.batch.dag._job_identities` for unannotated programs).
_PHASE_DEPS = {
    "cfg": (),
    "value": ("cfg",),
    "loopbounds": ("value",),
    "icache": ("cfg",),
    "dcache": ("cfg", "value"),
    "pipeline": ("cfg", "icache", "dcache"),
    "path": ("cfg", "pipeline", "loopbounds", "value"),
}


def _parse_int(value: Any, what: str) -> int:
    if isinstance(value, bool):
        raise ValidationError(f"{what} must be an integer, got {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        try:
            return int(value, 0)
        except ValueError:
            pass
    raise ValidationError(f"{what} must be an integer, got {value!r}")


class AnalysisRequest:
    """A validated ``POST /analyze`` payload."""

    def __init__(self, payload: Any):
        if not isinstance(payload, dict):
            raise ValidationError("request body must be a JSON object")
        unknown = sorted(set(payload) - _ALLOWED_FIELDS)
        if unknown:
            raise ValidationError(
                f"unknown field(s): {', '.join(unknown)}; allowed: "
                f"{', '.join(sorted(_ALLOWED_FIELDS))}")

        source = payload.get("source")
        assembly = payload.get("assembly")
        if (source is None) == (assembly is None):
            raise ValidationError(
                "exactly one of 'source' (mini-C) or 'assembly' "
                "(KRISC) is required")
        text = source if source is not None else assembly
        if not isinstance(text, str) or not text.strip():
            raise ValidationError(
                "'source'/'assembly' must be a non-empty string")
        self.source: Optional[str] = source
        self.assembly: Optional[str] = assembly

        self.policies = self._string_list(
            payload.get("policies"), "policies", ["full"])
        for policy in self.policies:
            try:
                parse_policy(policy)
            except ValueError as exc:
                raise ValidationError(str(exc)) from None
        self.models = self._string_list(
            payload.get("models"), "models", ["additive"])
        for model in self.models:
            if model not in PIPELINE_MODELS:
                raise ValidationError(
                    f"unknown pipeline model {model!r}; expected one "
                    f"of {', '.join(PIPELINE_MODELS)}")

        entry = payload.get("entry")
        if entry is not None and (not isinstance(entry, str)
                                  or not entry.strip()):
            raise ValidationError("'entry' must be a symbol name")
        self.entry: Optional[str] = entry

        self.loop_bounds: Optional[Dict[int, int]] = None
        bounds = payload.get("loop_bounds")
        if bounds is not None:
            if not isinstance(bounds, dict):
                raise ValidationError(
                    "'loop_bounds' must be an object of ADDR -> N")
            self.loop_bounds = {
                _parse_int(addr, "loop-bound address"):
                _parse_int(count, "loop bound")
                for addr, count in bounds.items()}

        self.register_ranges: Optional[Dict[int, Tuple[int, int]]] = None
        ranges = payload.get("register_ranges")
        if ranges is not None:
            if not isinstance(ranges, dict):
                raise ValidationError(
                    "'register_ranges' must be an object of "
                    "REG -> [LO, HI]")
            parsed = {}
            for register, span in ranges.items():
                if isinstance(register, str):
                    register = register.lstrip("Rr")
                index = _parse_int(register, "register")
                if not isinstance(span, (list, tuple)) or len(span) != 2:
                    raise ValidationError(
                        f"register range for R{index} must be "
                        f"[LO, HI], got {span!r}")
                parsed[index] = (_parse_int(span[0], "range low"),
                                 _parse_int(span[1], "range high"))
            self.register_ranges = parsed

        label = payload.get("label", "request")
        if not isinstance(label, str) or not label.strip():
            raise ValidationError("'label' must be a non-empty string")
        self.label = label

    @staticmethod
    def _string_list(value: Any, what: str,
                     default: List[str]) -> List[str]:
        if value is None:
            return list(default)
        if isinstance(value, str):
            value = [value]
        if not isinstance(value, list) or not value \
                or not all(isinstance(item, str) for item in value):
            raise ValidationError(
                f"'{what}' must be a non-empty list of strings")
        # Same dedup-preserving-order rule as the batch matrix.
        return list(dict.fromkeys(value))

    def load_program(self) -> Program:
        if self.source is not None:
            return compile_program(self.source)
        return assemble(self.assembly)


class PointPlan:
    """Executable phase templates of one (policy, model) point.

    The same shape as the worker-side :class:`~repro.batch.dag.JobPlan`
    — a ``templates`` dict of :class:`~repro.batch.dag.ExecTemplate` —
    which is the whole interface
    :class:`~repro.batch.scheduler._TaskContext` needs to chain keys
    and resolve artifacts.
    """

    def __init__(self, program: Program, request: AnalysisRequest,
                 policy: str, model: str):
        self.config = MachineConfig.default().with_model(model)
        self.policy_desc = parse_policy(policy).describe()
        entry = program.symbol_address(request.entry) \
            if request.entry is not None else None
        tasks = phase_plan(
            program, entry=entry,
            register_ranges=request.register_ranges,
            manual_loop_bounds=request.loop_bounds,
            context_policy=parse_policy(policy),
            pipeline_model=model)
        self.templates = {task.name: _wrap_phase(task.name, "", task)
                          for task in tasks}


class AnalysisService:
    """Long-running WCET analysis with a shared artifact cache.

    ``submit`` validates eagerly (raising :class:`ValidationError`) and
    queues the job on a bounded thread pool; ``job`` polls its record.
    All jobs share one :class:`ArtifactCache` whose in-memory memo is
    LRU-bounded, so the process neither recomputes unchanged phases nor
    grows without limit.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 workers: int = 2,
                 salt: Optional[str] = None,
                 cache_limit_mb: Optional[float] = None,
                 memo_entries: Optional[int] =
                 ArtifactCache.MEMO_ENTRY_LIMIT,
                 memo_bytes: Optional[int] =
                 ArtifactCache.MEMO_BYTE_LIMIT):
        limit_bytes = int(cache_limit_mb * 1024 * 1024) \
            if cache_limit_mb is not None else None
        self.cache = ArtifactCache(cache_dir, salt=salt,
                                   limit_bytes=limit_bytes,
                                   memo_entries=memo_entries,
                                   memo_bytes=memo_bytes)
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self._jobs: Dict[str, dict] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._started = time.monotonic()

    # -- Public API ---------------------------------------------------------

    def submit(self, payload: Any) -> str:
        """Validate ``payload`` and queue the analysis; returns the job
        id.  Raises :class:`ValidationError` on a malformed request."""
        request = AnalysisRequest(payload)
        job_id = f"job-{next(self._ids)}"
        with self._lock:
            self._jobs[job_id] = {"id": job_id, "status": "pending",
                                  "label": request.label}
        self._pool.submit(self._run, job_id, request)
        return job_id

    def job(self, job_id: str) -> Optional[dict]:
        """A JSON-able snapshot of one job's record, or ``None``."""
        with self._lock:
            record = self._jobs.get(job_id)
            return dict(record) if record is not None else None

    def stats(self) -> dict:
        """Service-level counters for ``GET /stats``."""
        with self._lock:
            statuses = [record["status"]
                        for record in self._jobs.values()]
        return {
            "workers": self.workers,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "jobs": {"total": len(statuses),
                     "pending": statuses.count("pending"),
                     "running": statuses.count("running"),
                     "done": statuses.count("done"),
                     "error": statuses.count("error")},
            "cache": {"hits": self.cache.hits,
                      "misses": self.cache.misses,
                      "hit_ratio": round(self.cache.hit_ratio(), 4),
                      "evictions": self.cache.evictions,
                      "memo": self.cache.memo_stats()},
        }

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    # -- Execution ----------------------------------------------------------

    def _run(self, job_id: str, request: AnalysisRequest) -> None:
        with self._lock:
            self._jobs[job_id]["status"] = "running"
        try:
            outcome = self._analyze(request)
        except Exception as exc:
            update = {"status": "error",
                      "error": f"{type(exc).__name__}: {exc}"}
        else:
            update = {"status": "done", **outcome}
        with self._lock:
            self._jobs[job_id].update(update)

    def _analyze(self, request: AnalysisRequest) -> dict:
        start = time.perf_counter()
        compile_start = time.perf_counter()
        program = request.load_program()
        compile_seconds = time.perf_counter() - compile_start

        points = [(policy, model) for policy in request.policies
                  for model in request.models]
        specs = [JobSpec(request.label, policy, model)
                 for policy, model in points]
        plans = [PointPlan(program, request, policy, model)
                 for policy, model in points]
        contexts = [_TaskContext(plan, self.cache) for plan in plans]

        # One deduplicated DAG per request: both models of a policy
        # share every model-independent phase node, so provenance and
        # work match a batch sweep of the same matrix.
        dag = TaskDAG()
        job_phase_nodes: List[Dict[str, Any]] = []
        for index, (spec, plan) in enumerate(zip(specs, plans)):
            by_template: Dict[str, Any] = {}
            for phase in PHASES:
                identity: Tuple = (phase, plan.policy_desc)
                if phase in ("pipeline", "path"):
                    identity += (spec.model,)
                by_template[phase] = dag.add_node(
                    identity, f"{spec.job_id}:{phase}", "phase", spec,
                    phase, [by_template[dep]
                            for dep in _PHASE_DEPS[phase]], index)
            job_phase_nodes.append(by_template)
        sweep = SweepDAG(specs, dag, [None] * len(specs),
                         job_phase_nodes, {})

        # Drain the DAG in this pool thread (cross-request concurrency
        # comes from the service pool; the shared cache makes artifacts
        # visible across requests the moment they are stored).
        ready = dag.start()
        while ready:
            node = ready.pop(0)
            owner = node.refs[0][0]
            phase_start = time.perf_counter()
            computed = contexts[owner].ensure(node.template)
            dag.complete(node, computed=computed,
                         seconds=time.perf_counter() - phase_start)
            ready.extend(dag.pop_ready())

        rows = []
        for index, (spec, plan, context) in enumerate(
                zip(specs, plans, contexts)):
            row_start = time.perf_counter()
            artifacts = {}
            phase_seconds = {}
            for phase in PHASES:
                value_start = time.perf_counter()
                artifacts[phase] = context.value_of(phase)
                phase_seconds[phase] = \
                    time.perf_counter() - value_start
            result = build_wcet_result(program, plan.config, artifacts,
                                       phase_seconds,
                                       sweep.row_events(index))
            rows.append(_result_row(
                spec, result, time.perf_counter() - row_start))

        hits = sum(row["cache"]["hits"] for row in rows)
        misses = sum(row["cache"]["misses"] for row in rows)
        total = hits + misses
        return {
            "rows": rows,
            "compile_seconds": round(compile_seconds, 6),
            "wall_seconds": round(time.perf_counter() - start, 6),
            "cache": {"hits": hits, "misses": misses,
                      "hit_ratio": round(hits / total, 4)
                      if total else 0.0},
        }
