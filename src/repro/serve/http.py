"""Stdlib HTTP front-end for :class:`~repro.serve.service.AnalysisService`.

Endpoints::

    POST   /analyze     submit a request  -> 202 {"id": ..., "job": ...}
    GET    /jobs/<id>   poll a job        -> 200 record | 404
    DELETE /jobs/<id>   cancel a job      -> 200 record | 404
    GET    /stats       service counters  -> 200

A :class:`ThreadingHTTPServer` with daemon request threads fronts the
service: request handling is I/O-thin (JSON in, JSON out) and all real
work runs on the service's own bounded pool, so a slow analysis never
blocks polling clients.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from .service import AnalysisService, ValidationError

#: Cap on accepted request bodies (sources are small; a runaway body is
#: a client bug, not a workload).
MAX_BODY_BYTES = 4 * 1024 * 1024


class AnalysisRequestHandler(BaseHTTPRequestHandler):
    """JSON request handler; the owning server carries the service."""

    server: "AnalysisServer"
    protocol_version = "HTTP/1.1"

    # -- Plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass        # keep the server quiet; clients see the JSON

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._respond(status, {"error": message})

    # -- Routes -------------------------------------------------------------

    def do_POST(self) -> None:
        if self.path.rstrip("/") != "/analyze":
            self._error(404, f"no such endpoint: POST {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        if length <= 0:
            self._error(400, "request body required")
            return
        if length > MAX_BODY_BYTES:
            self._error(413, f"request body exceeds {MAX_BODY_BYTES} "
                             f"bytes")
            return
        try:
            payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        try:
            job_id = self.server.service.submit(payload)
        except ValidationError as exc:
            self._error(400, str(exc))
            return
        self._respond(202, {"id": job_id, "job": f"/jobs/{job_id}"})

    def do_GET(self) -> None:
        path = self.path.rstrip("/")
        if path == "/stats":
            self._respond(200, self.server.service.stats())
            return
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            record = self.server.service.job(job_id)
            if record is None:
                self._error(404, f"no such job: {job_id!r}")
                return
            self._respond(200, record)
            return
        self._error(404, f"no such endpoint: GET {self.path}")

    def do_DELETE(self) -> None:
        path = self.path.rstrip("/")
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            record = self.server.service.cancel(job_id)
            if record is None:
                self._error(404, f"no such job: {job_id!r}")
                return
            self._respond(200, record)
            return
        self._error(404, f"no such endpoint: DELETE {self.path}")

    def do_PUT(self) -> None:
        self._error(405, "method not allowed")

    do_PATCH = do_PUT


class AnalysisServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns one :class:`AnalysisService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: AnalysisService):
        super().__init__(address, AnalysisRequestHandler)
        self.service = service

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        self.service.close()
