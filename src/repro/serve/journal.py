"""Durable job lifecycle journal for ``repro serve``.

One JSON line per job state transition, appended with ``fsync`` so a
record the server acknowledged survives a crash::

    {"id": "job-3", "status": "pending", "label": "edit-loop", ...}
    {"id": "job-3", "status": "running", ...}
    {"id": "job-3", "status": "done", "rows": [...], ...}

:meth:`JobJournal.replay` folds the lines back into one record per job
(later lines update earlier ones, exactly like the in-memory record) —
a restarted ``repro serve --journal DIR`` answers ``GET /jobs/<id>``
for every job that finished before the crash, and marks jobs the crash
caught mid-flight ``interrupted`` instead of silently forgetting them.
Only the final line of the file can ever be torn (appends are atomic
up to the fsync); unparsable lines are skipped, not fatal.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from typing import Dict, List, Optional, Tuple

#: Job statuses that no longer change (safe to evict from memory; a
#: replayed journal never resumes them).
TERMINAL_STATUSES = frozenset(
    {"done", "error", "cancelled", "timeout", "interrupted"})

_JOB_ID = re.compile(r"^job-(\d+)$")


class JobJournal:
    """Append-only JSON-lines journal of job state transitions."""

    FILENAME = "journal.jsonl"

    def __init__(self, directory: str):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.path = os.path.join(directory, self.FILENAME)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, record: dict) -> None:
        """Durably append one transition (``record`` must carry "id")."""
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    # -- Replay -------------------------------------------------------------

    def replay(self) -> Tuple[Dict[str, dict], int]:
        """Fold the journal into final job records.

        Returns ``(records, last_id)`` where ``records`` maps job id to
        its merged record *in first-submission order* and ``last_id``
        is the highest numeric job id seen (0 when empty) — the
        restarted service continues numbering after it.  Jobs whose
        last journaled status is non-terminal were interrupted by a
        crash: they are marked ``status="interrupted"`` here **and**
        re-journaled by the caller via :meth:`mark_interrupted`, so a
        second restart replays them as terminal directly.
        """
        records: Dict[str, dict] = {}
        last_id = 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        update = json.loads(line)
                    except ValueError:
                        continue        # torn final line of a crash
                    if not isinstance(update, dict):
                        continue
                    job_id = update.get("id")
                    if not isinstance(job_id, str):
                        continue
                    match = _JOB_ID.match(job_id)
                    if match:
                        last_id = max(last_id, int(match.group(1)))
                    record = records.setdefault(job_id, {})
                    record.update(update)
        except FileNotFoundError:
            pass
        for record in records.values():
            if record.get("status") not in TERMINAL_STATUSES:
                record["status"] = "interrupted"
                record["error"] = ("server restarted while the job "
                                   "was in flight")
        return records, last_id

    def mark_interrupted(self, job_ids: List[str]) -> None:
        """Journal the interrupted verdict for crashed-in-flight jobs
        (so the *next* replay needs no inference)."""
        for job_id in job_ids:
            self.append({"id": job_id, "status": "interrupted",
                         "error": "server restarted while the job "
                                  "was in flight",
                         "time": time.time()})


def load_journal(directory: Optional[str]) -> Optional[JobJournal]:
    """Open a journal when a directory is configured, else ``None``."""
    return JobJournal(directory) if directory else None
