"""Minimal urllib client for a running ``repro serve`` instance.

Used by ``repro analyze --url`` and the CI smoke job; no dependencies
beyond the standard library.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Optional


class ServeClientError(RuntimeError):
    """A request the server rejected (carries the HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


def _request(url: str, payload: Optional[dict] = None,
             timeout: float = 30.0) -> Any:
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        try:
            message = json.loads(exc.read()).get("error", str(exc))
        except Exception:
            message = str(exc)
        raise ServeClientError(exc.code, message) from None


def submit(url: str, payload: dict, timeout: float = 30.0) -> str:
    """POST one analyze request; returns the job id."""
    reply = _request(url.rstrip("/") + "/analyze", payload,
                     timeout=timeout)
    return reply["id"]


def poll(url: str, job_id: str, timeout: float = 300.0,
         interval: float = 0.05) -> dict:
    """Poll one job until it finishes; returns its final record."""
    base = url.rstrip("/")
    deadline = time.monotonic() + timeout
    while True:
        record = _request(f"{base}/jobs/{job_id}")
        if record["status"] in ("done", "error"):
            return record
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"job {job_id} still {record['status']} after "
                f"{timeout:.0f}s")
        time.sleep(interval)


def analyze(url: str, payload: dict, timeout: float = 300.0,
            interval: float = 0.05) -> dict:
    """Submit-and-poll convenience wrapper; returns the job record."""
    return poll(url, submit(url, payload), timeout=timeout,
                interval=interval)


def server_stats(url: str, timeout: float = 30.0) -> dict:
    """GET /stats."""
    return _request(url.rstrip("/") + "/stats", timeout=timeout)
