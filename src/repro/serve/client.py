"""Minimal urllib client for a running ``repro serve`` instance.

Used by ``repro analyze --url`` and the CI smoke job; no dependencies
beyond the standard library.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Optional

from .journal import TERMINAL_STATUSES

#: Polling backoff: the first poll waits ``POLL_BASE_SECONDS``, each
#: further poll doubles the wait (plus jitter so a fleet of clients
#: doesn't poll in lockstep), capped at ``POLL_CAP_SECONDS``.
POLL_BASE_SECONDS = 0.05
POLL_CAP_SECONDS = 2.0


class ServeClientError(RuntimeError):
    """A request the server rejected (carries the HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


def _request(url: str, payload: Optional[dict] = None,
             timeout: float = 30.0, method: Optional[str] = None) -> Any:
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        try:
            message = json.loads(exc.read()).get("error", str(exc))
        except Exception:
            message = str(exc)
        raise ServeClientError(exc.code, message) from None


def submit(url: str, payload: dict, timeout: float = 30.0) -> str:
    """POST one analyze request; returns the job id."""
    reply = _request(url.rstrip("/") + "/analyze", payload,
                     timeout=timeout)
    return reply["id"]


def cancel(url: str, job_id: str, timeout: float = 30.0) -> dict:
    """DELETE /jobs/<id>: request cancellation; returns the record."""
    return _request(f"{url.rstrip('/')}/jobs/{job_id}",
                    timeout=timeout, method="DELETE")


def poll(url: str, job_id: str, timeout: float = 300.0,
         interval: float = POLL_BASE_SECONDS) -> dict:
    """Poll one job until it reaches a terminal status.

    Waits ``interval`` before the second poll and doubles from there
    (with jitter, capped at :data:`POLL_CAP_SECONDS`) — quick jobs
    answer quickly, long jobs don't get hammered.  Raises
    :class:`TimeoutError` once ``timeout`` elapses client-side.
    """
    base = url.rstrip("/")
    deadline = time.monotonic() + timeout
    wait = interval
    while True:
        record = _request(f"{base}/jobs/{job_id}")
        if record["status"] in TERMINAL_STATUSES:
            return record
        now = time.monotonic()
        if now >= deadline:
            raise TimeoutError(
                f"job {job_id} still {record['status']} after "
                f"{timeout:.0f}s")
        sleep = min(wait, POLL_CAP_SECONDS, deadline - now)
        time.sleep(sleep * (0.5 + random.random() * 0.5))
        wait = min(wait * 2, POLL_CAP_SECONDS)


def analyze(url: str, payload: dict, timeout: float = 300.0,
            interval: float = POLL_BASE_SECONDS) -> dict:
    """Submit-and-poll convenience wrapper; returns the job record.

    When the client-side ``timeout`` expires, the job is cancelled on
    the server (best effort) before :class:`TimeoutError` propagates —
    an abandoned request shouldn't keep burning a server worker.
    """
    job_id = submit(url, payload)
    try:
        return poll(url, job_id, timeout=timeout, interval=interval)
    except TimeoutError:
        try:
            cancel(url, job_id)
        except Exception:
            pass
        raise


def server_stats(url: str, timeout: float = 30.0) -> dict:
    """GET /stats."""
    return _request(url.rstrip("/") + "/stats", timeout=timeout)
