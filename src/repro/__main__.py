"""Command-line interface: ``python -m repro``.

Analyse a KRISC assembly file (``.s``) or mini-C file (``.c``) the way
the aiT / StackAnalyzer command-line tools are driven:

    python -m repro wcet task.s [--dot out.dot] [--loop-bound ADDR=N]
    python -m repro stack task.c
    python -m repro run task.c [--reg R0=5]
    python -m repro disasm task.s
    python -m repro batch --matrix all:all:all --jobs 4 --cache-dir .cache
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .cfg.contexts import make_policy
from .isa import assemble, disassemble
from .isa.program import Program
from .lang import compile_program
from .report import wcet_dot, wcet_report, worst_case_path_table
from .sim import run_program
from .stack import analyze_stack
from .wcet import analyze_wcet


def _load_program(path: str) -> Program:
    with open(path) as handle:
        source = handle.read()
    if path.endswith(".c"):
        return compile_program(source)
    return assemble(source)


def _parse_assignments(items: List[str], what: str) -> Dict[str, int]:
    values: Dict[str, int] = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"bad {what} {item!r}: expected KEY=VALUE")
        key, _, raw = item.partition("=")
        values[key.strip()] = int(raw, 0)
    return values


def cmd_wcet(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    manual = {int(k, 0): v for k, v in _parse_assignments(
        args.loop_bound, "loop bound").items()}
    ranges = None
    if args.reg_range:
        ranges = {}
        for item in args.reg_range:
            name, _, span = item.partition("=")
            low, _, high = span.partition(":")
            ranges[int(name.lstrip("Rr"), 0)] = (int(low, 0),
                                                 int(high, 0))
    policy = make_policy(args.context_policy, k=args.k, peel=args.peel)
    result = analyze_wcet(program, manual_loop_bounds=manual,
                          register_ranges=ranges, context_policy=policy,
                          pipeline_model=args.pipeline_model,
                          domain_impl=args.domain_impl,
                          profile=args.profile)
    stack = analyze_stack(program, register_ranges=ranges)
    print(wcet_report(result, stack))
    if args.profile:
        import pstats
        for phase, prof in result.profiles.items():
            print(f"\n=== profile: {phase} "
                  f"({result.phase_seconds.get(phase, 0.0):.3f}s) ===")
            pstats.Stats(prof, stream=sys.stdout) \
                .sort_stats("cumulative").print_stats(20)
    if args.path:
        print(worst_case_path_table(result))
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(wcet_dot(result))
        print(f"annotated CFG written to {args.dot}")
    return 0


def cmd_stack(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    result = analyze_stack(program)
    print(result.summary())
    for name, usage in sorted(result.per_function.items()):
        print(f"  {name}: {usage} bytes")
    return 1 if result.overflows else 0


def cmd_run(args: argparse.Namespace) -> int:
    from .cache.config import MachineConfig

    program = _load_program(args.file)
    arguments = {int(k.lstrip("Rr")): v for k, v in _parse_assignments(
        args.reg, "register").items()}
    config = MachineConfig(pipeline_model=args.pipeline_model)
    result = run_program(program, config=config, arguments=arguments,
                         max_steps=args.max_steps)
    print(f"halted after {result.steps} instructions, "
          f"{result.cycles} cycles")
    print(f"max stack usage: {result.max_stack_usage} bytes")
    print(f"I-cache: {result.fetch_hits} hits / "
          f"{result.fetch_misses} misses; "
          f"D-cache: {result.data_hits} hits / "
          f"{result.data_misses} misses")
    for index in range(0, 16, 4):
        cells = "  ".join(
            f"R{i:<2}=0x{result.registers[i]:08x}"
            for i in range(index, index + 4))
        print(cells)
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    sys.stdout.write(disassemble(program))
    return 0


def _rta_sweep(files, cache_dir=None, golden=None, write_golden=None,
               orderings=None, geometries=None) -> int:
    """Shared by ``repro rta --sweep`` and ``repro batch --scenario
    rta``: ordering × geometry schedulability sweep with golden
    verdicts."""
    from .batch.cachestore import ArtifactCache
    from .rta.sweep import (GEOMETRIES, compare_with_golden,
                            load_golden, rows_to_golden, save_golden,
                            sweep_taskset)
    from .rta.taskset import ORDERINGS, load_taskset

    cache = ArtifactCache(cache_dir)
    orderings = orderings or ORDERINGS
    geometries = geometries or GEOMETRIES
    rows = []
    for path in files:
        rows.extend(sweep_taskset(load_taskset(path),
                                  orderings=orderings,
                                  geometries=geometries, cache=cache))
    header = (f"{'taskset':<16} {'ordering':<16} {'geometry':<9} "
              f"{'verdict':<14} responses")
    print(header)
    print("-" * len(header))
    for row in rows:
        verdict = "schedulable" if row["schedulable"] \
            else "UNSCHEDULABLE"
        responses = " ".join(
            f"{task['task']}={task['response']}"
            for task in row["tasks"])
        print(f"{row['taskset']:<16} {row['ordering']:<16} "
              f"{row['geometry']:<9} {verdict:<14} {responses}")
    print(f"\n{len(rows)} cells; phase cache: {cache.hits} hits / "
          f"{cache.misses} misses")

    failures = []
    if golden:
        failures.extend(compare_with_golden(rows, load_golden(golden)))
    if write_golden:
        merged = rows_to_golden(rows)
        try:
            existing = load_golden(write_golden)
        except FileNotFoundError:
            existing = {}
        existing.update(merged)
        import json as _json
        with open(write_golden, "w", encoding="utf-8") as handle:
            _json.dump(existing, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"golden verdicts written to {write_golden}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_rta(args: argparse.Namespace) -> int:
    from .batch.cachestore import ArtifactCache
    from .rta import analyze_taskset, verify_taskset
    from .rta.taskset import load_taskset

    orderings = args.orderings.split(",") if args.orderings else None
    geometries = args.geometries.split(",") if args.geometries else None
    if args.sweep:
        return _rta_sweep(args.files, cache_dir=args.cache_dir,
                          golden=args.golden,
                          write_golden=args.write_golden,
                          orderings=orderings, geometries=geometries)

    cache = ArtifactCache(args.cache_dir)
    failures = []
    for path in args.files:
        taskset = load_taskset(path)
        result = analyze_taskset(taskset, cache=cache)
        print(f"task set {taskset.name}: "
              f"{'schedulable' if result.schedulable else 'UNSCHEDULABLE'}")
        header = (f"  {'task':<10} {'prio':>4} {'period':>8} "
                  f"{'C':>8} {'R':>8} {'naive R':>8}  CRPD")
        print(header)
        print("  " + "-" * (len(header) - 2))
        for response in result.responses:
            shown = response.response if response.response is not None \
                else "-"
            naive = response.naive_response \
                if response.naive_response is not None else "-"
            crpd = ", ".join(f"{name}:{cost}" for name, cost
                             in sorted(response.crpd.items())) or "-"
            print(f"  {response.name:<10} {response.priority:>4} "
                  f"{response.period:>8} {response.wcet_cycles:>8} "
                  f"{shown:>8} {naive:>8}  {crpd}")
        print(f"  phase cache: {result.cache_hits} hits / "
              f"{result.cache_misses} misses; naive full-refill CRPD "
              f"{result.naive_crpd_cycles} cycles")
        if args.verify:
            report = verify_taskset(result)
            print(f"  S7/S8 oracle: {report.summary()}")
            if not report.ok:
                failures.extend(str(v) for v in report.violations)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_batch(args: argparse.Namespace) -> int:
    from .batch import (compare_rows, golden_from_rows, load_golden,
                        merge_golden, save_golden)
    from .workloads.suite import sweep_suite

    if args.scenario == "rta":
        if not args.taskset:
            raise SystemExit("--scenario rta requires --taskset")
        return _rta_sweep(args.taskset, cache_dir=args.cache_dir,
                          golden=args.golden,
                          write_golden=args.write_golden)

    scheduler_options = {}
    if args.task_retries is not None:
        scheduler_options["max_task_retries"] = args.task_retries
    if args.pool_rebuilds is not None:
        scheduler_options["max_pool_rebuilds"] = args.pool_rebuilds
    result = sweep_suite(args.matrix, parallel=args.jobs,
                         cache_dir=args.cache_dir,
                         use_cache=not args.no_cache,
                         jsonl_path=args.jsonl,
                         cache_limit_mb=args.cache_limit_mb,
                         **scheduler_options)
    jobs = result.jobs

    header = (f"{'workload':<12} {'policy':<12} {'model':<9} "
              f"{'wcet':>8} {'ms':>8} {'cache':>9}")
    print(header)
    print("-" * len(header))
    for row in result.rows:
        if "error" in row:
            print(f"{row['workload']:<12} {row['policy']:<12} "
                  f"{row['model']:<9} ERROR: {row['error']}")
            continue
        cache = row["cache"]
        provenance = f"{cache['hits']}h/{cache['misses']}m" \
            if cache["hits"] or cache["misses"] else "off"
        print(f"{row['workload']:<12} {row['policy']:<12} "
              f"{row['model']:<9} {row['wcet_cycles']:>8} "
              f"{row['wall_seconds'] * 1000:>8.1f} {provenance:>9}")
    ratio = result.hit_ratio()
    print(f"\n{len(jobs)} jobs in {result.wall_seconds:.2f}s "
          f"({args.jobs} worker{'s' if args.jobs != 1 else ''}); "
          f"phase cache: {result.cache_hits} hits / "
          f"{result.cache_misses} misses ({ratio:.0%})")
    scheduler = result.scheduler
    if scheduler:
        busy = scheduler["worker_busy_fraction"]
        busy_text = ", ".join(f"{fraction:.0%}"
                              for fraction in busy.values()) or "-"
        print(f"scheduler: {scheduler['phase_refs']} phase refs -> "
              f"{scheduler['unique_tasks']} tasks "
              f"({scheduler['deduped_tasks']} deduped); "
              f"{scheduler['computed_tasks']} computed / "
              f"{scheduler['cache_served_tasks']} cache-served; "
              f"{scheduler['steals']} steals; "
              f"worker busy: {busy_text}")
        if scheduler["retries"] or scheduler["pool_rebuilds"] \
                or scheduler["degraded_tasks"] \
                or scheduler["quarantined"]:
            print(f"fault tolerance: {scheduler['retries']} retries, "
                  f"{scheduler['pool_rebuilds']} pool rebuilds, "
                  f"{scheduler['degraded_tasks']} tasks run degraded "
                  f"in-process, {scheduler['quarantined']} artifacts "
                  f"quarantined")
    if args.jsonl:
        print(f"results written to {args.jsonl}")

    failures = list(result.errors)
    if args.golden:
        # Failed jobs are already in result.errors; compare only the
        # rows that produced a bound.
        completed = [row for row in result.rows if "error" not in row]
        failures.extend(compare_rows(completed,
                                     load_golden(args.golden)))
    if args.write_golden:
        if result.errors:
            failures.append("refusing to write golden bounds from a "
                            "sweep with failed jobs")
        else:
            # Merge into an existing file so a partial-matrix sweep
            # refreshes only its own points.
            updated = golden_from_rows(result.rows)
            try:
                updated = merge_golden(load_golden(args.write_golden),
                                       updated)
            except FileNotFoundError:
                pass
            save_golden(args.write_golden, updated)
            print(f"golden bounds written to {args.write_golden}")
    if args.require_hit_ratio is not None \
            and ratio < args.require_hit_ratio:
        failures.append(f"cache hit ratio {ratio:.2%} below required "
                        f"{args.require_hit_ratio:.2%}")
    if args.min_dedup is not None:
        deduped = scheduler["deduped_tasks"] if scheduler else 0
        if deduped < args.min_dedup:
            failures.append(f"scheduler deduplicated {deduped} phase "
                            f"tasks, below required {args.min_dedup} "
                            f"(cross-job sharing not exercised)")
    if args.min_retries is not None:
        retries = scheduler["retries"] if scheduler else 0
        if retries < args.min_retries:
            failures.append(f"scheduler retried {retries} tasks, below "
                            f"required {args.min_retries} (fault "
                            f"injection not exercised)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import AnalysisServer, AnalysisService

    # Unset flags keep the ArtifactCache class defaults (bounded);
    # explicit 0 is rejected rather than silently meaning "unbounded".
    memo_kwargs = {}
    if args.memo_entries is not None:
        if args.memo_entries <= 0:
            raise SystemExit("--memo-entries must be positive")
        memo_kwargs["memo_entries"] = args.memo_entries
    if args.memo_mb is not None:
        if args.memo_mb <= 0:
            raise SystemExit("--memo-mb must be positive")
        memo_kwargs["memo_bytes"] = int(args.memo_mb * 1024 * 1024)
    if args.max_jobs is not None and args.max_jobs <= 0:
        raise SystemExit("--max-jobs must be positive")
    if args.max_jobs is not None:
        memo_kwargs["max_jobs"] = args.max_jobs
    service = AnalysisService(cache_dir=args.cache_dir,
                              workers=args.workers,
                              cache_limit_mb=args.cache_limit_mb,
                              journal_dir=args.journal,
                              **memo_kwargs)
    server = AnalysisServer((args.host, args.port), service)
    host, port = server.server_address[:2]
    print(f"repro serve listening on http://{host}:{port} "
          f"({args.workers} worker"
          f"{'s' if args.workers != 1 else ''}, cache: "
          f"{args.cache_dir or 'in-memory'}, journal: "
          f"{args.journal or 'off'})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .serve import ServeClientError, analyze, server_stats

    with open(args.file) as handle:
        text = handle.read()
    kind = "source" if args.file.endswith(".c") else "assembly"
    payload: dict = {kind: text}
    if args.policy:
        payload["policies"] = args.policy
    if args.model:
        payload["models"] = args.model
    if args.entry:
        payload["entry"] = args.entry
    if args.loop_bound:
        payload["loop_bounds"] = _parse_assignments(args.loop_bound,
                                                    "loop bound")
    if args.reg_range:
        ranges = {}
        for item in args.reg_range:
            name, _, span = item.partition("=")
            low, _, high = span.partition(":")
            ranges[name.strip()] = [int(low, 0), int(high, 0)]
        payload["register_ranges"] = ranges
    if args.label:
        payload["label"] = args.label

    try:
        record = analyze(args.url, payload, timeout=args.timeout)
    except ServeClientError as exc:
        print(f"request rejected: {exc}", file=sys.stderr)
        return 1
    if record["status"] == "error":
        print(f"analysis failed: {record['error']}", file=sys.stderr)
        return 1

    header = (f"{'label':<12} {'policy':<12} {'model':<9} "
              f"{'wcet':>8} {'cache':>9}")
    print(header)
    print("-" * len(header))
    for row in record["rows"]:
        cache = row["cache"]
        provenance = f"{cache['hits']}h/{cache['misses']}m"
        print(f"{row['workload']:<12} {row['policy']:<12} "
              f"{row['model']:<9} {row['wcet_cycles']:>8} "
              f"{provenance:>9}")
    summary = record["cache"]
    print(f"\nphase cache: {summary['hits']} hits / "
          f"{summary['misses']} misses "
          f"({summary['hit_ratio']:.0%}); "
          f"compile {record['compile_seconds'] * 1000:.1f}ms, "
          f"wall {record['wall_seconds'] * 1000:.1f}ms")
    if args.stats:
        import json as json_module
        print(json_module.dumps(server_stats(args.url), indent=2,
                                sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WCET and stack-usage verification by abstract "
                    "interpretation (DATE 2005 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_wcet = sub.add_parser("wcet", help="verify worst-case timing")
    p_wcet.add_argument("file")
    p_wcet.add_argument("--dot", help="write annotated CFG (DOT)")
    p_wcet.add_argument("--path", action="store_true",
                        help="print the worst-case path table")
    p_wcet.add_argument("--loop-bound", action="append", default=[],
                        metavar="ADDR=N",
                        help="manual bound for a loop header address")
    p_wcet.add_argument("--reg-range", action="append", default=[],
                        metavar="Rk=LO:HI",
                        help="entry value range annotation")
    p_wcet.add_argument("--context-policy", default="full",
                        choices=["full", "klimited", "vivu"],
                        help="context sensitivity: full call strings "
                             "(default), k-limited call strings, or "
                             "VIVU loop peeling")
    p_wcet.add_argument("--k", type=int, default=None, metavar="K",
                        help="call-string depth: required meaningfully "
                             "by --context-policy klimited (default 2); "
                             "optional for vivu (combines peeling with "
                             "k-limited call strings)")
    p_wcet.add_argument("--peel", type=int, default=1, metavar="N",
                        help="loop iterations peeled per loop for "
                             "--context-policy vivu (default 1; higher "
                             "values can loosen the bound where "
                             "persistence already covered the loop)")
    p_wcet.add_argument("--pipeline-model", default="additive",
                        choices=["additive", "krisc5"],
                        help="machine timing model: per-instruction "
                             "additive costs (default) or the "
                             "overlapped 5-stage krisc5 pipeline "
                             "(abstract pipeline-state analysis)")
    p_wcet.add_argument("--domain-impl", default=None,
                        choices=["python", "numpy"],
                        help="abstract-domain implementation: packed "
                             "numpy arrays (default) or the pure-Python "
                             "reference; bounds are identical either "
                             "way (overrides $REPRO_DOMAIN_IMPL)")
    p_wcet.add_argument("--profile", action="store_true",
                        help="profile each analysis phase (cProfile) "
                             "and print its top-20 functions by "
                             "cumulative time")
    p_wcet.set_defaults(func=cmd_wcet)

    p_stack = sub.add_parser("stack", help="verify stack usage")
    p_stack.add_argument("file")
    p_stack.set_defaults(func=cmd_stack)

    p_run = sub.add_parser("run", help="simulate one concrete run")
    p_run.add_argument("file")
    p_run.add_argument("--reg", action="append", default=[],
                       metavar="Rk=V", help="initial register value")
    p_run.add_argument("--max-steps", type=int, default=1_000_000)
    p_run.add_argument("--pipeline-model", default="additive",
                       choices=["additive", "krisc5"],
                       help="timing model to account cycles under")
    p_run.set_defaults(func=cmd_run)

    p_dis = sub.add_parser("disasm", help="disassemble a binary")
    p_dis.add_argument("file")
    p_dis.set_defaults(func=cmd_disasm)

    p_batch = sub.add_parser(
        "batch", help="run an analysis sweep over the workload matrix")
    p_batch.add_argument("--matrix", default="all:all:all",
                        metavar="W:P:M",
                        help="sweep matrix WORKLOADS:POLICIES:MODELS; "
                             "each component a comma list or 'all' "
                             "(policies: full, klimited[@K], "
                             "vivu[@PEEL[@K]])")
    p_batch.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (1 = in-process)")
    p_batch.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed artifact cache "
                             "directory, shared across runs and "
                             "workers (default: in-memory only)")
    p_batch.add_argument("--no-cache", action="store_true",
                        help="disable artifact caching entirely")
    p_batch.add_argument("--jsonl", default=None, metavar="PATH",
                        help="write one JSON result line per job")
    p_batch.add_argument("--golden", default=None, metavar="PATH",
                        help="assert bounds are bit-identical to this "
                             "golden-bounds JSON file")
    p_batch.add_argument("--write-golden", default=None, metavar="PATH",
                        help="regenerate a golden-bounds JSON file "
                             "from this sweep's results")
    p_batch.add_argument("--require-hit-ratio", type=float,
                        default=None, metavar="R",
                        help="fail unless the phase-cache hit ratio "
                             "is at least R (CI warm-cache guard)")
    p_batch.add_argument("--cache-limit-mb", type=float, default=None,
                        metavar="MB",
                        help="evict least-recently-used artifact-cache "
                             "entries once the on-disk cache exceeds "
                             "this size; requires --cache-dir")
    p_batch.add_argument("--min-dedup", type=int, default=None,
                        metavar="N",
                        help="fail unless the DAG scheduler "
                             "deduplicated at least N phase tasks "
                             "(CI cross-job sharing guard; needs "
                             "--jobs > 1 and caching enabled)")
    p_batch.add_argument("--min-retries", type=int, default=None,
                        metavar="N",
                        help="fail unless the DAG scheduler retried "
                             "at least N tasks (CI chaos guard; pair "
                             "with $REPRO_FAULTS)")
    p_batch.add_argument("--task-retries", type=int, default=None,
                        metavar="N",
                        help="per-task retry budget before a task "
                             "becomes an error row (default 2)")
    p_batch.add_argument("--pool-rebuilds", type=int, default=None,
                        metavar="N",
                        help="worker-pool rebuilds after pool death "
                             "before degrading to in-process "
                             "execution (default 3)")
    p_batch.add_argument("--scenario", choices=("wcet", "rta"),
                        default="wcet",
                        help="sweep kind: per-task WCET matrix "
                             "(default) or task-set schedulability "
                             "(orderings x geometries; needs "
                             "--taskset)")
    p_batch.add_argument("--taskset", action="append", default=None,
                        metavar="TASKSET.json",
                        help="task-set file for --scenario rta "
                             "(repeatable)")
    p_batch.set_defaults(func=cmd_batch)

    p_rta = sub.add_parser(
        "rta", help="multi-task response-time analysis with CRPD")
    p_rta.add_argument("files", nargs="+", metavar="TASKSET.json",
                       help="task-set JSON file(s)")
    p_rta.add_argument("--sweep", action="store_true",
                       help="sweep priority orderings x cache "
                            "geometries instead of a single analysis")
    p_rta.add_argument("--orderings", default=None, metavar="LIST",
                       help="comma list of priority orderings "
                            "(given, rate_monotonic, reverse)")
    p_rta.add_argument("--geometries", default=None, metavar="LIST",
                       help="comma list of cache geometries, each "
                            "SETSxASSOCxLINE (e.g. 16x2x16)")
    p_rta.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="content-addressed artifact cache "
                            "directory (default: in-memory only)")
    p_rta.add_argument("--verify", action="store_true",
                       help="run the preemptive-simulation oracle "
                            "(S7/S8) after analysis")
    p_rta.add_argument("--golden", default=None, metavar="PATH",
                       help="assert sweep verdicts match this golden "
                            "JSON file (implies nothing without "
                            "--sweep)")
    p_rta.add_argument("--write-golden", default=None, metavar="PATH",
                       help="write/refresh golden sweep verdicts")
    p_rta.set_defaults(func=cmd_rta)

    p_serve = sub.add_parser(
        "serve", help="run the analysis service (HTTP, stdlib only)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8349,
                         help="listen port (0 picks a free one)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="analysis worker threads (default 2)")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent artifact cache directory "
                              "(default: in-memory only)")
    p_serve.add_argument("--cache-limit-mb", type=float, default=None,
                         metavar="MB",
                         help="bound the on-disk artifact store "
                              "(requires --cache-dir)")
    p_serve.add_argument("--memo-entries", type=int,
                         default=None, metavar="N",
                         help="bound the in-memory artifact memo by "
                              "entry count (default 4096)")
    p_serve.add_argument("--memo-mb", type=float, default=None,
                         metavar="MB",
                         help="bound the in-memory artifact memo by "
                              "size (default 512)")
    p_serve.add_argument("--journal", default=None, metavar="DIR",
                         help="durable job-lifecycle journal directory;"
                              " a restarted server replays finished "
                              "jobs and marks in-flight ones "
                              "interrupted")
    p_serve.add_argument("--max-jobs", type=int, default=None,
                         metavar="N",
                         help="bound the in-memory job table; oldest "
                              "finished records evict past N "
                              "(default 256)")
    p_serve.set_defaults(func=cmd_serve)

    p_an = sub.add_parser(
        "analyze", help="submit a file to a running 'repro serve'")
    p_an.add_argument("file", help="mini-C (.c) or KRISC assembly")
    p_an.add_argument("--url", required=True, metavar="URL",
                      help="base URL of the server, e.g. "
                           "http://127.0.0.1:8349")
    p_an.add_argument("--policy", action="append", default=[],
                      metavar="P",
                      help="context policy token (repeatable; "
                           "default full)")
    p_an.add_argument("--model", action="append", default=[],
                      metavar="M",
                      help="pipeline model (repeatable; "
                           "default additive)")
    p_an.add_argument("--entry", default=None, metavar="SYMBOL",
                      help="analysis entry symbol (default: program "
                           "entry)")
    p_an.add_argument("--loop-bound", action="append", default=[],
                      metavar="ADDR=N",
                      help="manual bound for a loop header address")
    p_an.add_argument("--reg-range", action="append", default=[],
                      metavar="Rk=LO:HI",
                      help="entry value range annotation")
    p_an.add_argument("--label", default=None,
                      help="label reported in result rows")
    p_an.add_argument("--timeout", type=float, default=300.0,
                      metavar="S", help="poll timeout in seconds")
    p_an.add_argument("--stats", action="store_true",
                      help="also print GET /stats afterwards")
    p_an.set_defaults(func=cmd_analyze)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
