"""Concrete LRU set-associative cache.

This is the ground-truth hardware model used by the simulator.  The
abstract must/may caches of :mod:`repro.cache.abstract` over-approximate
exactly this behaviour (checked by property tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .config import CacheConfig


class LRUCache:
    """A set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        # Per set: list of memory-line numbers, most recent first.
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access the byte at ``address``; returns True on a hit."""
        line = self.config.line_of(address)
        cache_set = self._sets[self.config.set_of(address)]
        if line in cache_set:
            cache_set.remove(line)
            cache_set.insert(0, line)
            self.hits += 1
            return True
        cache_set.insert(0, line)
        if len(cache_set) > self.config.associativity:
            cache_set.pop()
        self.misses += 1
        return False

    def contains(self, address: int) -> bool:
        """Non-destructive lookup."""
        line = self.config.line_of(address)
        return line in self._sets[self.config.set_of(address)]

    def age_of(self, address: int) -> Optional[int]:
        """LRU age of the line holding ``address`` (0 = most recent), or
        ``None`` if not cached."""
        line = self.config.line_of(address)
        cache_set = self._sets[self.config.set_of(address)]
        try:
            return cache_set.index(line)
        except ValueError:
            return None

    def contents(self) -> Dict[int, List[int]]:
        """Snapshot: set index -> lines, most recent first."""
        return {index: list(lines)
                for index, lines in enumerate(self._sets) if lines}

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def __repr__(self) -> str:
        return (f"LRUCache({self.config.num_sets}x"
                f"{self.config.associativity}x{self.config.line_size}, "
                f"{self.hits} hits, {self.misses} misses)")
