"""Cache modelling: concrete LRU hardware model and the must/may/
persistence abstract interpretation (phase 4 of the aiT pipeline)."""

from .abstract import (Classification, MayCache, MustCache,
                       PersistenceCache, TripleCacheState)
from .analysis import (AccessSpec, CacheFixpoint, ClassificationStats,
                       ClassifiedAccess, DCacheResult, ICacheResult,
                       analyze_dcache, analyze_icache)
from .config import CacheConfig, MachineConfig
from .lru import LRUCache
from .vectorized import CacheLineIndex, VectorTripleCacheState

__all__ = [
    "Classification", "MayCache", "MustCache", "PersistenceCache",
    "TripleCacheState",
    "AccessSpec", "CacheFixpoint", "ClassificationStats",
    "ClassifiedAccess", "DCacheResult", "ICacheResult",
    "analyze_dcache", "analyze_icache",
    "CacheLineIndex", "VectorTripleCacheState",
    "CacheConfig", "MachineConfig", "LRUCache",
]
