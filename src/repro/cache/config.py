"""Cache and machine timing configuration.

One configuration object is shared by the concrete simulator and the
abstract cache/pipeline analyses, so "the hardware" and "the model of
the hardware" can never drift apart.  The timing parameters define the
KRISC core: a 5-stage in-order scalar pipeline with separate
set-associative LRU instruction and data caches — the class of
"performance-oriented processors" whose caches and pipelines the paper
identifies as the source of execution-history-dependent timing
(Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..domainimpl import DOMAIN_IMPLS


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and miss cost of one LRU cache."""

    num_sets: int = 16
    associativity: int = 2
    line_size: int = 16          # bytes; must be a power of two
    miss_penalty: int = 10       # extra cycles on a miss

    def __post_init__(self):
        for name in ("num_sets", "associativity", "line_size"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if self.miss_penalty < 0:
            raise ValueError("miss_penalty must be non-negative")

    @property
    def capacity(self) -> int:
        """Total bytes held by the cache."""
        return self.num_sets * self.associativity * self.line_size

    def line_of(self, address: int) -> int:
        """Memory-line number containing ``address``."""
        return address // self.line_size

    def set_of(self, address: int) -> int:
        """Cache set index for ``address``."""
        return self.line_of(address) % self.num_sets


#: Timing models a :class:`MachineConfig` can select.
PIPELINE_MODELS = ("additive", "krisc5")


@dataclass(frozen=True)
class MachineConfig:
    """The complete timing model of the KRISC core.

    Two timing models share the same hazard parameters, selected by
    ``pipeline_model``:

    ``additive`` (the default) charges every instruction the sum of its
    worst-case components, with no overlap between them:

    * 1 base cycle (pipelined issue),
    * instruction-fetch: +``icache.miss_penalty`` on an I-cache miss,
    * ``mul_extra`` further EX cycles for ``MUL``/``MULI``,
    * each data access beyond the first in a block transfer costs +1
      cycle; every D-cache miss costs +``dcache.miss_penalty``,
    * ``load_use_stall`` cycles when an instruction reads the register
      loaded by its immediate predecessor,
    * ``branch_penalty`` cycles for every taken control transfer
      (taken branches, calls, returns, indirect jumps).

    ``krisc5`` models the 5-stage in-order pipeline (IF/ID/EX/MEM/WB)
    the KRISC core actually is: instruction fetch overlaps the EX stage
    of the preceding instruction, the MEM unit services cache misses
    while later instructions keep executing (they queue only on the
    next memory access or a load-use interlock), multiplies occupy EX
    for ``1 + mul_extra`` cycles, and taken transfers redirect fetch
    ``branch_penalty`` cycles after the branch leaves EX.  The same
    hazard parameters apply, so ``krisc5`` cycle counts are bounded by
    the ``additive`` ones whenever any overlap is possible.

    ``pipeline_state_cap`` bounds the number of abstract pipeline
    states the krisc5 *analysis* tracks per program point (the concrete
    simulator is unaffected): smaller caps merge entry states earlier,
    trading bound tightness for analysis time.

    ``domain_impl`` pins the abstract-domain implementation
    (``python``/``numpy``, see :mod:`repro.domainimpl`) for analyses
    run under this configuration; ``None`` defers to the environment
    (``$REPRO_DOMAIN_IMPL``) and the built-in default.  Both
    implementations produce bit-identical bounds — this knob exists
    for differential testing and benchmarking.
    """

    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=CacheConfig)
    branch_penalty: int = 2
    mul_extra: int = 2
    load_use_stall: int = 1
    pipeline_model: str = "additive"
    pipeline_state_cap: int = 8
    domain_impl: Optional[str] = None

    def __post_init__(self):
        if self.pipeline_model not in PIPELINE_MODELS:
            raise ValueError(
                f"unknown pipeline model {self.pipeline_model!r}; "
                f"expected one of {', '.join(PIPELINE_MODELS)}")
        if self.pipeline_state_cap < 1:
            raise ValueError("pipeline_state_cap must be at least 1")
        if self.domain_impl is not None \
                and self.domain_impl not in DOMAIN_IMPLS:
            raise ValueError(
                f"unknown domain implementation {self.domain_impl!r}; "
                f"expected one of {', '.join(DOMAIN_IMPLS)}")

    @classmethod
    def default(cls) -> "MachineConfig":
        return cls()

    def with_model(self, model: str) -> "MachineConfig":
        """This configuration with a different ``pipeline_model``."""
        from dataclasses import replace
        return replace(self, pipeline_model=model)

    @classmethod
    def no_cache(cls) -> "MachineConfig":
        """A machine where every access costs the miss penalty (the
        all-miss baseline of ablation D3/E3 — timing as if caches were
        absent but penalties unchanged)."""
        return cls(icache=CacheConfig(num_sets=1, associativity=1,
                                      line_size=4, miss_penalty=10),
                   dcache=CacheConfig(num_sets=1, associativity=1,
                                      line_size=4, miss_penalty=10))
