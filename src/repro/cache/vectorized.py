"""Dense numpy representation of the must/may/persistence cache states.

The dict-based lattices of :mod:`repro.cache.abstract` spend the cache
fixpoint's time iterating per-line dictionaries; this module re-encodes
all three analyses of one cache as a single ``(3, n)`` age matrix over
the finite *line universe* of the task (every line any access of the
task can touch), with encodings chosen so the lattice operations become
whole-array numpy ops:

====  ===========================  ==========================  =========
row   analysis                     present line                 absent
====  ===========================  ==========================  =========
0     must (upper age bound)       age ``0 .. assoc-1``        ``assoc``
1     may (lower age bound)        ``-age`` (``0 .. -(a-1)``)  ``-assoc``
2     persistence (saturating)     age ``0 .. assoc``          ``-1``
====  ===========================  ==========================  =========

Under these encodings *all three* joins are an elementwise
``np.maximum`` and all three partial orders are an elementwise ``<=``:

* must join is intersection-with-max-age (absent = ``assoc`` dominates),
* may join is union-with-min-age (negating ages turns min into max and
  makes absent, ``-assoc``, the identity),
* persistence join is union-with-max-age (absent ``-1`` is the
  identity).

The may cache's ``universal`` flag (after an unknown-address access) is
kept beside the matrix exactly as in the dict implementation.

Slots are ordered by ``(line % num_sets, line)``, so each cache set is
one contiguous slice and the aging step of a single access is a masked
increment on that slice.  Every operation reproduces the dict
implementation bit for bit — same joins, same ``leq`` verdicts, same
classifications — which the hypothesis lockstep suite
(``tests/test_vectorized_domains.py``) pins operation by operation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .abstract import Classification
from .config import CacheConfig

#: Compiled access kinds (first element of a compiled access tuple).
_UNKNOWN, _SINGLE, _MANY, _FUSED = 0, 1, 2, 3


class CacheLineIndex:
    """Immutable mapping from the task's line universe to matrix slots.

    Slots are sorted by ``(set index, line)``: each set occupies one
    contiguous slice ``set_bounds[s] = (start, end)``.  Lines outside
    the universe can never be accessed by the task, so they need no
    slot (a cold absent entry they would stay forever).
    """

    __slots__ = ("config", "assoc", "lines", "slot_of", "n", "set_bounds")

    def __init__(self, config: CacheConfig, lines: Iterable[int]):
        self.config = config
        self.assoc = config.associativity
        ordered = sorted(set(lines),
                         key=lambda line: (line % config.num_sets, line))
        self.lines = ordered
        self.slot_of: Dict[int, int] = {line: slot for slot, line
                                        in enumerate(ordered)}
        self.n = len(ordered)
        self.set_bounds: Dict[int, Tuple[int, int]] = {}
        for slot, line in enumerate(ordered):
            set_index = line % config.num_sets
            start, _ = self.set_bounds.get(set_index, (slot, slot))
            self.set_bounds[set_index] = (start, slot + 1)


class VectorTripleCacheState:
    """numpy twin of :class:`repro.cache.abstract.TripleCacheState`."""

    __slots__ = ("index", "mat", "universal")

    def __init__(self, index: CacheLineIndex,
                 mat: Optional[np.ndarray] = None,
                 universal: bool = False):
        self.index = index
        if mat is None:
            # Cold cache: everything absent in all three analyses.
            mat = np.empty((3, index.n), dtype=np.int16)
            mat[0] = index.assoc
            mat[1] = -index.assoc
            mat[2] = -1
        self.mat = mat
        self.universal = universal

    def copy(self) -> "VectorTripleCacheState":
        return VectorTripleCacheState(self.index, self.mat.copy(),
                                      self.universal)

    # -- Abstract accesses -------------------------------------------------

    def access_slot(self, slot: int, start: int, end: int) -> None:
        """Definite access to the line at ``slot`` (set slice
        ``start:end``): Ferdinand's single-line update for all three
        analyses at once."""
        mat = self.mat
        assoc = self.index.assoc
        # Must: lines younger than the accessed line's old upper bound
        # age by one; reaching the associativity means eviction, which
        # the absent sentinel (== assoc) encodes for free.
        sub = mat[0, start:end]
        old = int(mat[0, slot])
        np.add(sub, 1, out=sub, where=sub < old)
        mat[0, slot] = 0
        # May (negated ages): lines whose minimal age is at most the
        # accessed line's shift; -assoc (absent) stays put.
        sub = mat[1, start:end]
        old_age = 0 if self.universal else -int(mat[1, slot])
        np.subtract(sub, 1, out=sub,
                    where=(sub >= -old_age) & (sub > -assoc))
        mat[1, slot] = 0
        # Persistence: like must but saturating, and only tracked
        # (>= 0) lines age.
        sub = mat[2, start:end]
        old = int(mat[2, slot])
        if old < 0:
            old = assoc
        np.add(sub, 1, out=sub, where=(sub >= 0) & (sub < old))
        mat[2, slot] = 0

    def access_slots(self, slots: np.ndarray,
                     affected: np.ndarray) -> None:
        """Access known only to touch one of ``slots`` (all slots of
        the affected sets in ``affected``): the sound join of the
        single-line updates."""
        mat = self.mat
        assoc = self.index.assoc
        # Must: every line of an affected set may age (clamping at the
        # absent sentinel keeps absent lines absent).
        sub = mat[0, affected]
        mat[0, affected] = np.minimum(sub + 1, assoc)
        # May: each candidate line becomes possibly present at age 0.
        mat[1, slots] = 0
        # Persistence: tracked lines of affected sets age saturating;
        # candidate lines become tracked at their current bound (0 if
        # new — min(old, assoc) in the dict implementation).
        sub = mat[2, affected]
        mat[2, affected] = np.where(sub >= 0,
                                    np.minimum(sub + 1, assoc), sub)
        sub = mat[2, slots]
        mat[2, slots] = np.where(sub < 0, 0, sub)

    def access_fused(self, slots: np.ndarray, members: np.ndarray,
                     owner: np.ndarray) -> None:
        """Apply a run of definite single-line accesses to pairwise
        *distinct* cache sets in one batch.

        Accesses to different sets touch disjoint matrix columns, so
        the sequential result equals this fused update exactly:
        ``members`` concatenates the set slices of all accessed sets
        and ``owner[j]`` indexes into ``slots`` for the access that
        owns member ``j``'s set.
        """
        mat = self.mat
        assoc = self.index.assoc
        # Must: per set, lines younger than its accessed line's old
        # upper bound age by one.
        old = mat[0, slots]
        sub = mat[0, members]
        np.add(sub, 1, out=sub, where=sub < old[owner])
        mat[0, members] = sub
        mat[0, slots] = 0
        # May (negated ages): per set, lines at most as old as the
        # accessed line shift down by one.
        sub = mat[1, members]
        if self.universal:
            np.subtract(sub, 1, out=sub,
                        where=(sub >= 0) & (sub > -assoc))
        else:
            thr = mat[1, slots][owner]
            np.subtract(sub, 1, out=sub,
                        where=(sub >= thr) & (sub > -assoc))
        mat[1, members] = sub
        mat[1, slots] = 0
        # Persistence: like must, saturating, tracked lines only.
        old = mat[2, slots]
        old = np.where(old < 0, assoc, old)
        sub = mat[2, members]
        np.add(sub, 1, out=sub, where=(sub >= 0) & (sub < old[owner]))
        mat[2, members] = sub
        mat[2, slots] = 0

    def access_unknown(self) -> None:
        """Access with a completely unknown address: any set may be
        touched (must/persistence age everywhere), and the may cache
        becomes universal."""
        mat = self.mat
        assoc = self.index.assoc
        mat[0] = np.minimum(mat[0] + 1, assoc)
        self.universal = True
        mat[1] = -assoc
        sub = mat[2]
        mat[2] = np.where(sub >= 0, np.minimum(sub + 1, assoc), -1)

    # -- Classification ----------------------------------------------------

    def classify_slot(self, slot: int) -> Classification:
        mat = self.mat
        assoc = self.index.assoc
        if mat[0, slot] < assoc:
            return Classification.ALWAYS_HIT
        if not self.universal and mat[1, slot] == -assoc:
            return Classification.ALWAYS_MISS
        if mat[2, slot] < assoc:
            return Classification.PERSISTENT
        return Classification.NOT_CLASSIFIED

    def classify_slots(self, slots: np.ndarray) -> Classification:
        mat = self.mat
        assoc = self.index.assoc
        if bool((mat[0, slots] < assoc).all()):
            return Classification.ALWAYS_HIT
        if not self.universal and bool((mat[1, slots] == -assoc).all()):
            return Classification.ALWAYS_MISS
        if bool((mat[2, slots] < assoc).all()):
            return Classification.PERSISTENT
        return Classification.NOT_CLASSIFIED

    # -- Lattice -----------------------------------------------------------

    def join(self, other: "VectorTripleCacheState"
             ) -> "VectorTripleCacheState":
        mat = np.maximum(self.mat, other.mat)
        universal = self.universal or other.universal
        if universal:
            # The dict join of a universal may cache drops all ages.
            mat[1] = -self.index.assoc
        return VectorTripleCacheState(self.index, mat, universal)

    def leq(self, other: "VectorTripleCacheState") -> bool:
        if other.universal:
            return bool((self.mat[0] <= other.mat[0]).all()
                        and (self.mat[2] <= other.mat[2]).all())
        if self.universal:
            return False
        return bool((self.mat <= other.mat).all())

    def __repr__(self) -> str:
        assoc = self.index.assoc
        return (f"VectorTripleCacheState("
                f"must={int((self.mat[0] < assoc).sum())}, "
                f"may={'⊤' if self.universal else int((self.mat[1] > -assoc).sum())}, "
                f"pers={int((self.mat[2] >= 0).sum())})")


# -- Compiled access specs -------------------------------------------------


def compile_access(index: CacheLineIndex,
                   lines: Optional[Tuple[int, ...]]) -> tuple:
    """Precompile one :class:`~repro.cache.analysis.AccessSpec` into
    slot/slice arrays so the fixpoint's transfer does no per-access
    line-to-slot mapping."""
    if lines is None:
        return (_UNKNOWN,)
    if len(lines) == 1:
        line = lines[0]
        start, end = index.set_bounds[line % index.config.num_sets]
        return (_SINGLE, index.slot_of[line], start, end)
    unique = sorted(set(lines))
    slots = np.array([index.slot_of[line] for line in unique],
                     dtype=np.intp)
    sets = sorted({line % index.config.num_sets for line in unique})
    affected = np.concatenate(
        [np.arange(*index.set_bounds[s], dtype=np.intp) for s in sets])
    return (_MANY, slots, affected)


def compile_block_accesses(index: CacheLineIndex,
                           compiled: List[tuple]) -> List[tuple]:
    """Fuse a block's compiled access sequence for the fixpoint
    transfer (classification still replays the per-access list).

    Two exact rewrites shrink the op count:

    * an immediately repeated single-line access is a no-op on all
      three lattices (the line is at age 0 and nothing else in its set
      can be, so no aging condition fires) — drop it;
    * consecutive single-line accesses to pairwise distinct sets touch
      disjoint columns, so a maximal such run collapses into one
      :meth:`~VectorTripleCacheState.access_fused` batch.

    Instruction fetch is the ideal case: a block's fetch lines are
    non-decreasing, so repeats are always adjacent and distinct lines
    land in distinct sets unless the block spans a full cache round.
    """
    ops: List[tuple] = []
    run: List[tuple] = []           # pending _SINGLE accesses
    run_sets: set = set()           # their (start, end) set slices

    def flush() -> None:
        if not run:
            return
        if len(run) == 1:
            ops.append(run[0])
        else:
            slots = np.array([c[1] for c in run], dtype=np.intp)
            members = np.concatenate(
                [np.arange(c[2], c[3], dtype=np.intp) for c in run])
            owner = np.concatenate(
                [np.full(c[3] - c[2], i, dtype=np.intp)
                 for i, c in enumerate(run)])
            ops.append((_FUSED, slots, members, owner))
        run.clear()
        run_sets.clear()

    for c in compiled:
        if c[0] != _SINGLE:
            flush()
            ops.append(c)
            continue
        if run and c[1] == run[-1][1]:
            continue                # repeated access: exact no-op
        span = (c[2], c[3])
        if span in run_sets:
            flush()
        run.append(c)
        run_sets.add(span)
    flush()
    return ops


def apply_access(state: VectorTripleCacheState, compiled: tuple) -> None:
    kind = compiled[0]
    if kind == _UNKNOWN:
        state.access_unknown()
    elif kind == _SINGLE:
        state.access_slot(compiled[1], compiled[2], compiled[3])
    elif kind == _MANY:
        state.access_slots(compiled[1], compiled[2])
    else:
        state.access_fused(compiled[1], compiled[2], compiled[3])


def classify_access(state: VectorTripleCacheState,
                    compiled: tuple) -> Classification:
    kind = compiled[0]
    if kind == _UNKNOWN:
        return Classification.NOT_CLASSIFIED
    if kind == _SINGLE:
        return state.classify_slot(compiled[1])
    return state.classify_slots(compiled[1])
