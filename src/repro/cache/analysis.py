"""CFG-level cache analysis (phase 4 of the aiT pipeline).

Runs the must/may/persistence abstract caches to a fixpoint over the
whole-task graph and classifies every instruction fetch (I-cache) and
every data access (D-cache) as always-hit, always-miss, persistent, or
not-classified.  Data-access address sets come from value analysis —
"the results of value analysis are used to determine possible addresses
of indirect memory accesses — important for cache analysis" (Section 3,
ablation D4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cfg.expand import NodeId, TaskGraph
from ..domainimpl import resolve_domain_impl
from ..isa.instructions import Instruction
from .abstract import Classification, TripleCacheState
from .config import CacheConfig
from .vectorized import (CacheLineIndex, VectorTripleCacheState,
                         apply_access, classify_access, compile_access,
                         compile_block_accesses)
from ..analysis.fixpoint import (FixpointKernel, FixpointSemantics,
                                 FixpointStats)
from ..analysis.valueanalysis import MemoryAccess, ValueAnalysisResult

#: An access covering more than this many candidate lines is treated as
#: having an unknown address.
MAX_CANDIDATE_LINES = 256


@dataclass(frozen=True)
class AccessSpec:
    """One abstract cache access: candidate lines, or unknown address."""

    lines: Optional[Tuple[int, ...]]    # None = completely unknown

    @property
    def is_unknown(self) -> bool:
        return self.lines is None


@dataclass
class ClassificationStats:
    """Counts per classification outcome (experiment E3)."""

    always_hit: int = 0
    always_miss: int = 0
    persistent: int = 0
    not_classified: int = 0

    def record(self, outcome: Classification) -> None:
        if outcome is Classification.ALWAYS_HIT:
            self.always_hit += 1
        elif outcome is Classification.ALWAYS_MISS:
            self.always_miss += 1
        elif outcome is Classification.PERSISTENT:
            self.persistent += 1
        else:
            self.not_classified += 1

    @property
    def total(self) -> int:
        return (self.always_hit + self.always_miss + self.persistent
                + self.not_classified)

    def ratio(self, outcome: Classification) -> float:
        if not self.total:
            return 0.0
        return {
            Classification.ALWAYS_HIT: self.always_hit,
            Classification.ALWAYS_MISS: self.always_miss,
            Classification.PERSISTENT: self.persistent,
            Classification.NOT_CLASSIFIED: self.not_classified,
        }[outcome] / self.total


class _CacheSemantics(FixpointSemantics):
    """Kernel adapter for abstract cache states.

    The must/may/persistence lattices are finite, so no widening (and
    no narrowing) is needed; the WTO recursive strategy alone brings
    each loop to its fixpoint before downstream blocks are visited.
    """

    widening = False

    def __init__(self, fixpoint: "CacheFixpoint"):
        self.fixpoint = fixpoint

    def transfer(self, node: NodeId,
                 state: TripleCacheState) -> TripleCacheState:
        return self.fixpoint.transfer(state.copy(), node)

    def is_bottom(self, state: TripleCacheState) -> bool:
        return False    # the cold cache is the least element


class CacheFixpoint:
    """Generic must/may/persistence fixpoint over the task graph.

    Runs on the shared WTO kernel (:mod:`repro.analysis.fixpoint`) —
    the same engine as value analysis — instead of a private FIFO
    worklist; ``stats`` carries the kernel's work counters after
    :meth:`solve`.
    """

    def __init__(self, graph: TaskGraph, config: CacheConfig,
                 accesses_of: Dict[NodeId, List[AccessSpec]],
                 impl: Optional[str] = None):
        self.graph = graph
        self.config = config
        self.accesses_of = accesses_of
        self.impl = resolve_domain_impl(impl)
        self.stats: Optional[FixpointStats] = None
        self._index: Optional[CacheLineIndex] = None
        self._compiled: Dict[NodeId, List[tuple]] = {}
        self._fused: Dict[NodeId, List[tuple]] = {}
        if self.impl == "numpy":
            universe = set()
            for specs in accesses_of.values():
                for spec in specs:
                    if spec.lines is not None:
                        universe.update(spec.lines)
            self._index = CacheLineIndex(config, universe)
            self._compiled = {
                node: [compile_access(self._index, spec.lines)
                       for spec in specs]
                for node, specs in accesses_of.items()}
            # The fixpoint transfer only needs the block's *final*
            # state, so it runs the fused form; classification replays
            # the per-access list for intermediate states.
            self._fused = {
                node: compile_block_accesses(self._index, compiled)
                for node, compiled in self._compiled.items()}

    def solve(self) -> Dict[NodeId, object]:
        """Entry cache state per node, starting from a cold cache."""
        graph = self.graph
        kernel = FixpointKernel(
            graph.entry, graph.successors, lambda e: e.target,
            _CacheSemantics(self), sort_key=TaskGraph.node_key)
        if self.impl == "numpy":
            cold = VectorTripleCacheState(self._index)
        else:
            cold = TripleCacheState(self.config)
        states = kernel.solve(cold)
        self.stats = kernel.stats
        return states

    def transfer(self, state, node: NodeId):
        if self.impl == "numpy":
            for compiled in self._fused.get(node, []):
                apply_access(state, compiled)
            return state
        for spec in self.accesses_of.get(node, []):
            if spec.is_unknown:
                state.access_unknown()
            else:
                state.access_range(list(spec.lines))
        return state

    def classify_all(self, entry_states: Dict[NodeId, object]
                     ) -> Dict[NodeId, List[Classification]]:
        """Classification of every access, walking each block from its
        fixpoint entry state."""
        result: Dict[NodeId, List[Classification]] = {}
        if self.impl == "numpy":
            for node, compiled_specs in self._compiled.items():
                state = entry_states.get(node)
                if state is None:
                    continue
                state = state.copy()
                outcomes = []
                for compiled in compiled_specs:
                    outcomes.append(classify_access(state, compiled))
                    apply_access(state, compiled)
                result[node] = outcomes
            return result
        for node, specs in self.accesses_of.items():
            state = entry_states.get(node)
            if state is None:
                continue
            state = state.copy()
            outcomes = []
            for spec in specs:
                if spec.is_unknown:
                    outcomes.append(Classification.NOT_CLASSIFIED)
                    state.access_unknown()
                else:
                    lines = list(spec.lines)
                    outcomes.append(state.classify_range(lines))
                    state.access_range(lines)
            result[node] = outcomes
        return result


def iteration_phase_stats(graph: TaskGraph,
                          classifications: Dict[NodeId,
                                                List[Classification]]
                          ) -> Optional[Dict[str, ClassificationStats]]:
    """Classification counts split by loop-iteration phase.

    Under a peeling (VIVU) policy the first-iteration context copies
    absorb the compulsory misses, so the steady-state copies should
    classify ``ALWAYS_HIT`` where the unpeeled analysis could at best
    say ``PERSISTENT``/``NOT_CLASSIFIED``.  This split makes that
    visible (and testable).  Accesses outside any peeled loop are not
    counted.  Returns ``None`` when the policy does not peel.
    """
    peel = graph.policy.peel
    if not peel:
        return None
    split = {"first-iteration": ClassificationStats(),
             "steady-state": ClassificationStats()}
    for node, outcomes in classifications.items():
        context = node.context
        if not context.iters:
            continue
        group = "first-iteration" if context.has_phase_below(peel) \
            else "steady-state"
        for outcome in outcomes:
            split[group].record(outcome)
    return split


# -- Instruction cache ----------------------------------------------------------


@dataclass
class ICacheResult:
    """Per-instruction fetch classifications."""

    config: CacheConfig
    classifications: Dict[NodeId, List[Classification]]
    stats: ClassificationStats
    #: Work counters of the underlying fixpoint (shared WTO kernel).
    fixpoint_stats: Optional[FixpointStats] = None
    #: Per-iteration-phase classification split (peeling policies only).
    iteration_stats: Optional[Dict[str, ClassificationStats]] = None

    def for_node(self, node: NodeId) -> List[Classification]:
        return self.classifications.get(node, [])


def icache_access_specs(graph: TaskGraph, config: CacheConfig
                        ) -> Dict[NodeId, List[AccessSpec]]:
    """Per-node instruction-fetch access specs (one per instruction).

    Shared by the I-cache fixpoint below and the UCB/ECB analysis of
    :mod:`repro.rta.ucb`, so both reason about exactly the same
    abstract accesses."""
    accesses: Dict[NodeId, List[AccessSpec]] = {}
    for node in graph.nodes():
        accesses[node] = [AccessSpec((config.line_of(instr.address),))
                          for instr in graph.blocks[node]]
    return accesses


def analyze_icache(graph: TaskGraph, config: CacheConfig,
                   impl: Optional[str] = None) -> ICacheResult:
    """Classify every instruction fetch of the task."""
    accesses = icache_access_specs(graph, config)
    fixpoint = CacheFixpoint(graph, config, accesses, impl=impl)
    classifications = fixpoint.classify_all(fixpoint.solve())
    stats = ClassificationStats()
    for outcomes in classifications.values():
        for outcome in outcomes:
            stats.record(outcome)
    return ICacheResult(config, classifications, stats,
                        fixpoint_stats=fixpoint.stats,
                        iteration_stats=iteration_phase_stats(
                            graph, classifications))


# -- Data cache ----------------------------------------------------------------------


@dataclass
class ClassifiedAccess:
    """A data access paired with its classification."""

    access: MemoryAccess
    classification: Classification


@dataclass
class DCacheResult:
    """Per-node classified data accesses."""

    config: CacheConfig
    classified: Dict[NodeId, List[ClassifiedAccess]]
    stats: ClassificationStats
    #: Work counters of the underlying fixpoint (shared WTO kernel).
    fixpoint_stats: Optional[FixpointStats] = None
    #: Per-iteration-phase classification split (peeling policies only).
    iteration_stats: Optional[Dict[str, ClassificationStats]] = None

    def for_node(self, node: NodeId) -> List[ClassifiedAccess]:
        return self.classified.get(node, [])

    def all_accesses(self) -> List[ClassifiedAccess]:
        return [item for items in self.classified.values()
                for item in items]


def _lines_of_access(access: MemoryAccess,
                     config: CacheConfig) -> AccessSpec:
    constant = access.address.as_constant()
    if constant is not None:
        return AccessSpec((config.line_of(constant),))
    if access.address.is_top():
        return AccessSpec(None)
    # Congruence-aware domains (strided intervals) expose the sparse
    # value set, which can skip whole lines for wide-stride accesses.
    values = access.address.possible_values(4 * MAX_CANDIDATE_LINES)
    if values is not None:
        lines = tuple(sorted({config.line_of(v) for v in values}))
        if 0 < len(lines) <= MAX_CANDIDATE_LINES:
            return AccessSpec(lines)
    lo, hi = access.byte_range
    first, last = config.line_of(lo), config.line_of(hi)
    if last - first + 1 > MAX_CANDIDATE_LINES:
        return AccessSpec(None)
    return AccessSpec(tuple(range(first, last + 1)))


def _accesses_by_node(values: ValueAnalysisResult
                      ) -> Dict[NodeId, List[MemoryAccess]]:
    by_node: Dict[NodeId, List[MemoryAccess]] = {}
    for access in values.accesses:
        by_node.setdefault(access.node, []).append(access)
    return by_node


def dcache_access_specs(graph: TaskGraph, config: CacheConfig,
                        values: ValueAnalysisResult,
                        use_value_analysis: bool = True
                        ) -> Dict[NodeId, List[AccessSpec]]:
    """Per-node data-access specs, derived from value analysis.

    Shared by the D-cache fixpoint below and the UCB/ECB analysis of
    :mod:`repro.rta.ucb`."""
    specs: Dict[NodeId, List[AccessSpec]] = {}
    for node, node_accesses in _accesses_by_node(values).items():
        if use_value_analysis:
            specs[node] = [_lines_of_access(a, config)
                           for a in node_accesses]
        else:
            specs[node] = [AccessSpec(None) for _ in node_accesses]
    return specs


def analyze_dcache(graph: TaskGraph, config: CacheConfig,
                   values: ValueAnalysisResult,
                   use_value_analysis: bool = True,
                   impl: Optional[str] = None) -> DCacheResult:
    """Classify every data access of the task.

    ``use_value_analysis=False`` is the D4 ablation: every access is
    treated as having an unknown address, as a tool without value
    analysis would have to.
    """
    by_node = _accesses_by_node(values)
    specs = dcache_access_specs(graph, config, values,
                                use_value_analysis=use_value_analysis)
    fixpoint = CacheFixpoint(graph, config, specs, impl=impl)
    classifications = fixpoint.classify_all(fixpoint.solve())

    classified: Dict[NodeId, List[ClassifiedAccess]] = {}
    stats = ClassificationStats()
    for node, node_accesses in by_node.items():
        outcomes = classifications.get(node, [])
        items = []
        for access, outcome in zip(node_accesses, outcomes):
            items.append(ClassifiedAccess(access, outcome))
            stats.record(outcome)
        classified[node] = items
    return DCacheResult(config, classified, stats,
                        fixpoint_stats=fixpoint.stats,
                        iteration_stats=iteration_phase_stats(
                            graph, classifications))
