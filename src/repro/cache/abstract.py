"""Abstract LRU cache states: must, may, and persistence analyses.

These are the abstract interpretations of the concrete LRU cache
(:mod:`repro.cache.lru`) following Ferdinand's cache analysis, which
the paper applies as phase 4 of the aiT pipeline: "cache analysis
classifies memory references as cache misses or hits".

* **Must** cache: per line an *upper* bound on its LRU age; presence
  proves the line is in the cache → *always hit*.
* **May** cache: per line a *lower* bound on its age; absence proves
  the line is not in the cache → *always miss*.
* **Persistence** cache: like must, but ages saturate at the
  associativity instead of evicting; an access whose line never
  saturates can miss at most once per task run → *persistent*.

All three are finite lattices, so the cache fixpoint needs no widening.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Tuple

from .config import CacheConfig


class Classification(enum.Enum):
    """Outcome of abstract hit/miss classification for one access."""

    ALWAYS_HIT = "AH"
    ALWAYS_MISS = "AM"
    PERSISTENT = "PS"    # at most one miss per task run
    NOT_CLASSIFIED = "NC"

    @property
    def worst_is_miss(self) -> bool:
        """Must the WCET account a full miss on every execution?"""
        return self in (Classification.ALWAYS_MISS,
                        Classification.NOT_CLASSIFIED)


class MustCache:
    """Upper bounds on LRU ages; lines present are definitely cached."""

    __slots__ = ("config", "ages")

    def __init__(self, config: CacheConfig,
                 ages: Optional[Dict[int, int]] = None):
        self.config = config
        self.ages = ages if ages is not None else {}

    def copy(self) -> "MustCache":
        return MustCache(self.config, dict(self.ages))

    def contains(self, line: int) -> bool:
        return line in self.ages

    def access(self, line: int) -> None:
        """Abstract update for a definite access to ``line``."""
        assoc = self.config.associativity
        set_index = line % self.config.num_sets
        old_age = self.ages.get(line, assoc)
        for other, age in list(self.ages.items()):
            if other % self.config.num_sets != set_index or other == line:
                continue
            if age < old_age:
                if age + 1 >= assoc:
                    del self.ages[other]
                else:
                    self.ages[other] = age + 1
        self.ages[line] = 0

    def access_any_of(self, lines: Iterable[int]) -> None:
        """Update for an access known only to touch one of ``lines``.

        Sound join of all single-line updates: no line's age can be
        asserted 0; every line in an affected set may age.
        """
        lines = set(lines)
        assoc = self.config.associativity
        affected_sets = {line % self.config.num_sets for line in lines}
        for other, age in list(self.ages.items()):
            if other % self.config.num_sets not in affected_sets:
                continue
            if other in lines and len(lines) == 1:
                continue  # handled by access()
            if age + 1 >= assoc:
                del self.ages[other]
            else:
                self.ages[other] = age + 1

    def age_all_sets(self) -> None:
        """Update for an access with unknown address: any set may be
        touched, any line may age."""
        assoc = self.config.associativity
        for line, age in list(self.ages.items()):
            if age + 1 >= assoc:
                del self.ages[line]
            else:
                self.ages[line] = age + 1

    def join(self, other: "MustCache") -> "MustCache":
        merged = {}
        for line, age in self.ages.items():
            other_age = other.ages.get(line)
            if other_age is not None:
                merged[line] = max(age, other_age)
        return MustCache(self.config, merged)

    def leq(self, other: "MustCache") -> bool:
        """Order: self is more precise (knows more lines, younger)."""
        for line, other_age in other.ages.items():
            age = self.ages.get(line)
            if age is None or age > other_age:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MustCache) and self.ages == other.ages

    def __repr__(self) -> str:
        return f"MustCache({len(self.ages)} lines)"


class MayCache:
    """Lower bounds on LRU ages; lines absent are definitely not cached.

    A ``universal`` may-cache (after an unknown-address access) admits
    any line and defeats always-miss classification.
    """

    __slots__ = ("config", "ages", "universal")

    def __init__(self, config: CacheConfig,
                 ages: Optional[Dict[int, int]] = None,
                 universal: bool = False):
        self.config = config
        self.ages = ages if ages is not None else {}
        self.universal = universal

    def copy(self) -> "MayCache":
        return MayCache(self.config, dict(self.ages), self.universal)

    def may_contain(self, line: int) -> bool:
        return self.universal or line in self.ages

    def access(self, line: int) -> None:
        # A line's minimal age grows only when it must age in every
        # concretisation, i.e. when its minimal age is at most the
        # accessed line's minimal age (Ferdinand's may update: lines
        # with age <= age(l) are shifted).
        assoc = self.config.associativity
        set_index = line % self.config.num_sets
        old_age = self.ages.get(line, assoc) \
            if not self.universal else 0
        for other, age in list(self.ages.items()):
            if other % self.config.num_sets != set_index or other == line:
                continue
            if age <= old_age:
                if age + 1 >= assoc:
                    del self.ages[other]
                else:
                    self.ages[other] = age + 1
        self.ages[line] = 0

    def access_any_of(self, lines: Iterable[int]) -> None:
        """One of ``lines`` is accessed: all become possibly present."""
        for line in set(lines):
            self.ages[line] = 0

    def make_universal(self) -> None:
        self.universal = True
        self.ages = {}

    def join(self, other: "MayCache") -> "MayCache":
        if self.universal or other.universal:
            return MayCache(self.config, universal=True)
        merged = dict(self.ages)
        for line, age in other.ages.items():
            mine = merged.get(line)
            merged[line] = age if mine is None else min(mine, age)
        return MayCache(self.config, merged)

    def leq(self, other: "MayCache") -> bool:
        if other.universal:
            return True
        if self.universal:
            return False
        for line, age in self.ages.items():
            other_age = other.ages.get(line)
            if other_age is None or age < other_age:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, MayCache) and self.ages == other.ages
                and self.universal == other.universal)

    def __repr__(self) -> str:
        if self.universal:
            return "MayCache(⊤)"
        return f"MayCache({len(self.ages)} lines)"


class PersistenceCache:
    """Must-style ages that saturate at the associativity.

    A line whose age bound stays below the associativity throughout the
    fixpoint was never possibly evicted after its first load: accesses
    to it miss at most once per task run.
    """

    __slots__ = ("config", "ages")

    def __init__(self, config: CacheConfig,
                 ages: Optional[Dict[int, int]] = None):
        self.config = config
        self.ages = ages if ages is not None else {}

    def copy(self) -> "PersistenceCache":
        return PersistenceCache(self.config, dict(self.ages))

    def saturated(self, line: int) -> bool:
        """Possibly evicted since first load?"""
        age = self.ages.get(line)
        return age is not None and age >= self.config.associativity

    def is_tracked(self, line: int) -> bool:
        return line in self.ages

    def access(self, line: int) -> None:
        assoc = self.config.associativity
        set_index = line % self.config.num_sets
        old_age = self.ages.get(line, assoc)
        for other, age in self.ages.items():
            if other % self.config.num_sets != set_index or other == line:
                continue
            if age < old_age:
                self.ages[other] = min(age + 1, assoc)
        self.ages[line] = 0

    def access_any_of(self, lines: Iterable[int]) -> None:
        lines = set(lines)
        assoc = self.config.associativity
        affected_sets = {line % self.config.num_sets for line in lines}
        for other, age in self.ages.items():
            if other % self.config.num_sets in affected_sets:
                self.ages[other] = min(age + 1, assoc)
        for line in lines:
            self.ages[line] = min(self.ages.get(line, 0), assoc)

    def age_all_sets(self) -> None:
        assoc = self.config.associativity
        for line in self.ages:
            self.ages[line] = min(self.ages[line] + 1, assoc)

    def join(self, other: "PersistenceCache") -> "PersistenceCache":
        # Absence means "never loaded yet", which imposes no constraint:
        # union with max age.
        merged = dict(self.ages)
        for line, age in other.ages.items():
            mine = merged.get(line)
            merged[line] = age if mine is None else max(mine, age)
        return PersistenceCache(self.config, merged)

    def leq(self, other: "PersistenceCache") -> bool:
        for line, age in self.ages.items():
            other_age = other.ages.get(line)
            if other_age is None or age > other_age:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PersistenceCache) \
            and self.ages == other.ages

    def __repr__(self) -> str:
        return f"PersistenceCache({len(self.ages)} lines)"


class TripleCacheState:
    """Product of must, may, and persistence states (one per cache)."""

    __slots__ = ("must", "may", "pers")

    def __init__(self, config: CacheConfig,
                 must: Optional[MustCache] = None,
                 may: Optional[MayCache] = None,
                 pers: Optional[PersistenceCache] = None):
        self.must = must if must is not None else MustCache(config)
        self.may = may if may is not None else MayCache(config)
        self.pers = pers if pers is not None else PersistenceCache(config)

    @property
    def config(self) -> CacheConfig:
        return self.must.config

    def copy(self) -> "TripleCacheState":
        return TripleCacheState(self.config, self.must.copy(),
                                self.may.copy(), self.pers.copy())

    def classify(self, line: int) -> Classification:
        """Classify an access to exactly ``line`` in the current state."""
        if self.must.contains(line):
            return Classification.ALWAYS_HIT
        if not self.may.may_contain(line):
            return Classification.ALWAYS_MISS
        if not self.pers.saturated(line):
            return Classification.PERSISTENT
        return Classification.NOT_CLASSIFIED

    def classify_range(self, lines: List[int]) -> Classification:
        """Classify an access touching exactly one of ``lines``."""
        if len(lines) == 1:
            return self.classify(lines[0])
        if all(self.must.contains(line) for line in lines):
            return Classification.ALWAYS_HIT
        if all(not self.may.may_contain(line) for line in lines):
            return Classification.ALWAYS_MISS
        if all(not self.pers.saturated(line) for line in lines):
            return Classification.PERSISTENT
        return Classification.NOT_CLASSIFIED

    def access(self, line: int) -> None:
        self.must.access(line)
        self.may.access(line)
        self.pers.access(line)

    def access_range(self, lines: List[int]) -> None:
        if len(lines) == 1:
            self.access(lines[0])
            return
        self.must.access_any_of(lines)
        self.may.access_any_of(lines)
        self.pers.access_any_of(lines)

    def access_unknown(self) -> None:
        """An access whose address is completely unknown."""
        self.must.age_all_sets()
        self.may.make_universal()
        self.pers.age_all_sets()

    def join(self, other: "TripleCacheState") -> "TripleCacheState":
        return TripleCacheState(self.config,
                                self.must.join(other.must),
                                self.may.join(other.may),
                                self.pers.join(other.pers))

    def leq(self, other: "TripleCacheState") -> bool:
        return (self.must.leq(other.must) and self.may.leq(other.may)
                and self.pers.leq(other.pers))
