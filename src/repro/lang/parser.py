"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from typing import List, Optional

from . import ast
from .lexer import Token, tokenize


class ParseError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.message = message
        self.line = line

    def __reduce__(self):
        # args holds the joined string, so default exception pickling
        # would replay a one-argument constructor call and fail.
        return (type(self), (self.message, self.line))


#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10,
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- Token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if not token.is_eof:
            self.position += 1
        return token

    def check(self, kind: str) -> bool:
        return self.current.kind == kind

    def accept(self, kind: str) -> Optional[Token]:
        if self.check(kind):
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        if not self.check(kind):
            raise ParseError(
                f"expected {kind!r}, found {self.current.text!r}",
                self.current.line)
        return self.advance()

    # -- Top level ---------------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self.current.is_eof:
            returns_value = True
            if self.accept("void"):
                returns_value = False
            else:
                self.expect("int")
            name = self.expect("ident")
            if self.check("("):
                unit.functions.append(
                    self._function(name.text, returns_value, name.line))
            else:
                if not returns_value:
                    raise ParseError("void variables are not allowed",
                                     name.line)
                unit.globals.append(self._global(name.text, name.line))
        return unit

    def _global(self, name: str, line: int) -> ast.GlobalVar:
        array_size = None
        initializer: List[int] = []
        if self.accept("["):
            array_size = self._constant()
            self.expect("]")
        if self.accept("="):
            if array_size is None:
                initializer = [self._signed_constant()]
            else:
                self.expect("{")
                while not self.check("}"):
                    initializer.append(self._signed_constant())
                    if not self.accept(","):
                        break
                self.expect("}")
                if len(initializer) > array_size:
                    raise ParseError(
                        f"too many initializers for {name}", line)
        self.expect(";")
        return ast.GlobalVar(line=line, name=name, array_size=array_size,
                             initializer=initializer)

    def _constant(self) -> int:
        token = self.expect("number")
        return int(token.text, 0)

    def _signed_constant(self) -> int:
        negative = bool(self.accept("-"))
        value = self._constant()
        return -value if negative else value

    def _function(self, name: str, returns_value: bool,
                  line: int) -> ast.Function:
        self.expect("(")
        parameters: List[ast.Parameter] = []
        if not self.check(")") and not self.accept("void"):
            while True:
                self.expect("int")
                param = self.expect("ident")
                parameters.append(ast.Parameter(line=param.line,
                                                name=param.text))
                if not self.accept(","):
                    break
        self.expect(")")
        if len(parameters) > 4:
            raise ParseError(
                f"{name}: at most 4 parameters supported", line)
        body = self._block()
        return ast.Function(line=line, name=name, parameters=parameters,
                            body=body, returns_value=returns_value)

    # -- Statements ----------------------------------------------------------------

    def _block(self) -> List[ast.Stmt]:
        self.expect("{")
        statements: List[ast.Stmt] = []
        while not self.check("}"):
            statements.append(self._statement())
        self.expect("}")
        return statements

    def _statement(self) -> ast.Stmt:
        token = self.current
        if token.kind == "int":
            return self._declaration()
        if token.kind == "if":
            return self._if()
        if token.kind == "while":
            return self._while()
        if token.kind == "do":
            return self._do_while()
        if token.kind == "for":
            return self._for()
        if token.kind == "return":
            self.advance()
            value = None if self.check(";") else self._expression()
            self.expect(";")
            return ast.Return(line=token.line, value=value)
        if token.kind == "break":
            self.advance()
            self.expect(";")
            return ast.Break(line=token.line)
        if token.kind == "continue":
            self.advance()
            self.expect(";")
            return ast.Continue(line=token.line)
        if token.kind == "{":
            # Anonymous block: flatten into an If(1) is ugly; represent
            # via a While? Simplest: inline sequence using If with
            # constant condition is wrong; return statements list is not
            # a Stmt. Mini-C therefore models bare blocks as if(1){...}.
            body = self._block()
            return ast.If(line=token.line,
                          condition=ast.IntLiteral(line=token.line,
                                                   value=1),
                          then_body=body, else_body=[])
        return self._simple_statement(expect_semicolon=True)

    def _declaration(self) -> ast.Stmt:
        token = self.expect("int")
        name = self.expect("ident")
        if self.accept("["):
            size = self._constant()
            self.expect("]")
            self.expect(";")
            return ast.Declaration(line=token.line, name=name.text,
                                   array_size=size)
        initializer = None
        if self.accept("="):
            initializer = self._expression()
        self.expect(";")
        return ast.Declaration(line=token.line, name=name.text,
                               initializer=initializer)

    def _simple_statement(self, expect_semicolon: bool) -> ast.Stmt:
        """Assignment or expression statement (no declarations)."""
        token = self.current
        expression = self._expression()
        if self.accept("="):
            if not isinstance(expression, (ast.VarRef, ast.ArrayRef)):
                raise ParseError("invalid assignment target", token.line)
            value = self._expression()
            if expect_semicolon:
                self.expect(";")
            return ast.Assignment(line=token.line, target=expression,
                                  value=value)
        if expect_semicolon:
            self.expect(";")
        return ast.ExprStmt(line=token.line, expression=expression)

    def _if(self) -> ast.If:
        token = self.expect("if")
        self.expect("(")
        condition = self._expression()
        self.expect(")")
        then_body = self._body_or_single()
        else_body: List[ast.Stmt] = []
        if self.accept("else"):
            else_body = self._body_or_single()
        return ast.If(line=token.line, condition=condition,
                      then_body=then_body, else_body=else_body)

    def _while(self) -> ast.While:
        token = self.expect("while")
        self.expect("(")
        condition = self._expression()
        self.expect(")")
        return ast.While(line=token.line, condition=condition,
                         body=self._body_or_single())

    def _do_while(self) -> ast.DoWhile:
        token = self.expect("do")
        body = self._body_or_single()
        self.expect("while")
        self.expect("(")
        condition = self._expression()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(line=token.line, condition=condition, body=body)

    def _for(self) -> ast.For:
        token = self.expect("for")
        self.expect("(")
        init: Optional[ast.Stmt] = None
        if not self.check(";"):
            if self.check("int"):
                init = self._declaration()
            else:
                init = self._simple_statement(expect_semicolon=True)
        else:
            self.expect(";")
        if init is not None and isinstance(init, ast.Declaration) \
                and init.array_size is not None:
            raise ParseError("array declaration in for-init", token.line)
        condition = None if self.check(";") else self._expression()
        self.expect(";")
        update: Optional[ast.Stmt] = None
        if not self.check(")"):
            update = self._simple_statement(expect_semicolon=False)
        self.expect(")")
        return ast.For(line=token.line, init=init, condition=condition,
                       update=update, body=self._body_or_single())

    def _body_or_single(self) -> List[ast.Stmt]:
        if self.check("{"):
            return self._block()
        return [self._statement()]

    # -- Expressions -------------------------------------------------------------------

    def _expression(self, min_precedence: int = 1) -> ast.Expr:
        left = self._unary()
        while True:
            op = self.current.kind
            precedence = _PRECEDENCE.get(op)
            if precedence is None or precedence < min_precedence:
                return left
            token = self.advance()
            right = self._expression(precedence + 1)
            left = ast.Binary(line=token.line, op=op, left=left,
                              right=right)

    def _unary(self) -> ast.Expr:
        token = self.current
        if token.kind in ("-", "!", "~"):
            self.advance()
            return ast.Unary(line=token.line, op=token.kind,
                             operand=self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.IntLiteral(line=token.line, value=int(token.text, 0))
        if token.kind == "(":
            self.advance()
            inner = self._expression()
            self.expect(")")
            return inner
        if token.kind == "ident":
            self.advance()
            if self.accept("("):
                arguments: List[ast.Expr] = []
                if not self.check(")"):
                    while True:
                        arguments.append(self._expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                if len(arguments) > 4:
                    raise ParseError(
                        f"{token.text}: at most 4 arguments supported",
                        token.line)
                return ast.Call(line=token.line, name=token.text,
                                arguments=arguments)
            if self.accept("["):
                index = self._expression()
                self.expect("]")
                return ast.ArrayRef(line=token.line, name=token.text,
                                    index=index)
            return ast.VarRef(line=token.line, name=token.text)
        raise ParseError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C source into a translation unit."""
    return Parser(tokenize(source)).parse_unit()
