"""Mini-C code generator: AST -> KRISC assembly text.

Code is generated in an analysis-friendly but realistic style:

* Scalar locals and parameters live in callee-saved registers
  (``R4``-``R9``); overflow scalars and all local arrays live in the
  stack frame.  Register-resident loop counters are what makes the
  affine loop-bound pattern of :mod:`repro.analysis.loopbounds` fire on
  compiled code, exactly as aiT's pattern matching expects of embedded
  compilers.
* Expression temporaries use ``R10``-``R12`` with LIFO spilling to the
  machine stack when an expression is deeper than the pool.
* ``while``/``for`` loops are *rotated* (guard + do-while) so every
  loop is a natural loop with its test at the latch — the shape that
  keeps binaries reducible.
* All functions preserve every ``R4``-``R12`` register they touch, so
  temporaries survive calls.

The generator emits assembly text for :mod:`repro.isa.assembler`, i.e.
the compiler output goes through the *real binary encoder* before any
analysis sees it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from . import ast

#: Registers available for scalar locals/parameters.
VARIABLE_REGISTERS = (4, 5, 6, 7, 8, 9)
#: Registers for expression temporaries.
TEMP_REGISTERS = (10, 11, 12)

_COMPARISONS = {"<": "LT", "<=": "LE", ">": "GT", ">=": "GE",
                "==": "EQ", "!=": "NE"}
_NEGATED = {"LT": "GE", "LE": "GT", "GT": "LE", "GE": "LT",
            "EQ": "NE", "NE": "EQ"}
_ALU = {"+": "ADD", "-": "SUB", "*": "MUL", "&": "AND", "|": "OR",
        "^": "XOR", "<<": "SHL", ">>": "ASR"}
_ALU_IMM = {"+": "ADDI", "-": "SUBI", "*": "MULI", "&": "ANDI",
            "|": "ORI", "^": "XORI", "<<": "SHLI", ">>": "ASRI"}


class CodegenError(ValueError):
    def __init__(self, message: str, line: int = 0):
        location = f"line {line}: " if line else ""
        super().__init__(f"{location}{message}")


@dataclass
class RegisterHome:
    register: int


@dataclass
class StackHome:
    offset: int          # bytes from SP after the prologue


@dataclass
class ArrayHome:
    offset: int
    size: int            # elements


Home = Union[RegisterHome, StackHome, ArrayHome]


@dataclass
class GlobalInfo:
    label: str
    array_size: Optional[int]


class _Temp:
    """A value on the expression evaluation stack."""

    __slots__ = ("register", "spilled", "pinned")

    def __init__(self, register: int):
        self.register = register
        self.spilled = False
        #: Pinned temps are never chosen as spill victims (used when a
        #: register must stay stable across nested condition codegen).
        self.pinned = False


class FunctionCodegen:
    """Generates the body of a single function."""

    def __init__(self, unit_cg: "Codegen", function: ast.Function):
        self.unit = unit_cg
        self.function = function
        self.lines: List[str] = []
        self.homes: Dict[str, Home] = {}
        self.frame_size = 0
        self.temp_stack: List[_Temp] = []
        self.free_temps: List[int] = list(TEMP_REGISTERS)
        self.used_temps: Set[int] = set()
        self.used_var_regs: Set[int] = set()
        self.spill_depth = 0                  # bytes pushed by spills
        self.loop_stack: List[Tuple[str, str]] = []   # (continue, break)
        self.makes_calls = self._contains_call(function.body)
        self.is_main = function.name == "main"

    # -- Helpers --------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self) -> str:
        return self.unit.new_label()

    def _contains_call(self, statements) -> bool:
        found = False

        def walk_expr(expr):
            nonlocal found
            if expr is None or found:
                return
            if isinstance(expr, ast.Call):
                found = True
                return
            if isinstance(expr, ast.Unary):
                walk_expr(expr.operand)
            elif isinstance(expr, ast.Binary):
                walk_expr(expr.left)
                walk_expr(expr.right)
            elif isinstance(expr, ast.ArrayRef):
                walk_expr(expr.index)

        def walk_stmt(stmt):
            if found:
                return
            for attr in ("initializer", "value", "condition",
                         "expression"):
                walk_expr(getattr(stmt, attr, None))
            if isinstance(stmt, ast.Assignment):
                walk_expr(stmt.target.index
                          if isinstance(stmt.target, ast.ArrayRef)
                          else None)
            for attr in ("then_body", "else_body", "body"):
                for inner in getattr(stmt, attr, []):
                    walk_stmt(inner)
            for attr in ("init", "update"):
                inner = getattr(stmt, attr, None)
                if inner is not None:
                    walk_stmt(inner)

        for statement in statements:
            walk_stmt(statement)
        return found

    # -- Homes ----------------------------------------------------------------------

    def _assign_homes(self) -> None:
        registers = list(VARIABLE_REGISTERS)
        stack_cursor = 0

        def place_scalar(name: str, line: int) -> None:
            nonlocal stack_cursor
            if name in self.homes:
                raise CodegenError(f"duplicate variable {name!r}", line)
            if registers:
                register = registers.pop(0)
                self.homes[name] = RegisterHome(register)
                self.used_var_regs.add(register)
            else:
                self.homes[name] = StackHome(stack_cursor)
                stack_cursor += 4

        for parameter in self.function.parameters:
            place_scalar(parameter.name, parameter.line)

        def walk(statements) -> None:
            nonlocal stack_cursor
            for stmt in statements:
                if isinstance(stmt, ast.Declaration):
                    if stmt.array_size is not None:
                        if stmt.name in self.homes:
                            raise CodegenError(
                                f"duplicate variable {stmt.name!r}",
                                stmt.line)
                        self.homes[stmt.name] = ArrayHome(
                            stack_cursor, stmt.array_size)
                        stack_cursor += 4 * stmt.array_size
                    else:
                        place_scalar(stmt.name, stmt.line)
                for attr in ("then_body", "else_body", "body"):
                    walk(getattr(stmt, attr, []))
                init = getattr(stmt, "init", None)
                if isinstance(init, ast.Declaration):
                    place_scalar(init.name, init.line)

        walk(self.function.body)
        self.frame_size = stack_cursor

    # -- Temp management ----------------------------------------------------------------

    def alloc_temp(self, line: int = 0) -> _Temp:
        if self.free_temps:
            register = self.free_temps.pop(0)
            self.used_temps.add(register)
            temp = _Temp(register)
            self.temp_stack.append(temp)
            return temp
        # Spill the deepest in-register, unpinned temp.
        victim = next((t for t in self.temp_stack
                       if not t.spilled and not t.pinned), None)
        if victim is None:
            raise CodegenError("expression too complex", line)
        self.emit(f"PUSH {{R{victim.register}}}")
        self.spill_depth += 4
        register = victim.register
        victim.spilled = True
        temp = _Temp(register)
        self.temp_stack.append(temp)
        return temp

    def pop_temp(self) -> _Temp:
        temp = self.temp_stack.pop()
        assert not temp.spilled, "top temp can never be spilled"
        self.free_temps.insert(0, temp.register)
        return temp

    def unspill(self, temp: _Temp) -> None:
        """Restore a spilled temp (it must be the most recent spill)."""
        if not temp.spilled:
            return
        register = self.free_temps.pop(0)
        self.used_temps.add(register)
        self.emit(f"POP {{R{register}}}")
        self.spill_depth -= 4
        temp.register = register
        temp.spilled = False

    def sp_offset(self, offset: int) -> int:
        """Frame offset adjusted for temporaries spilled on top."""
        return offset + self.spill_depth

    # -- Expressions --------------------------------------------------------------

    def gen_expression(self, expr: ast.Expr) -> _Temp:
        """Evaluate ``expr`` into a fresh temp (top of temp stack)."""
        if isinstance(expr, ast.IntLiteral):
            temp = self.alloc_temp(expr.line)
            self.emit(f"LDI R{temp.register}, #{expr.value}")
            return temp
        if isinstance(expr, ast.VarRef):
            return self._gen_var_read(expr)
        if isinstance(expr, ast.ArrayRef):
            return self._gen_array_read(expr)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Binary):
            if expr.op in _COMPARISONS or expr.op in ("&&", "||"):
                return self._gen_boolean_value(expr)
            return self._gen_binary(expr)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr)
        raise CodegenError(f"unsupported expression {expr!r}", expr.line)

    def _gen_var_read(self, expr: ast.VarRef) -> _Temp:
        home = self.homes.get(expr.name)
        temp = self.alloc_temp(expr.line)
        if home is None:
            info = self.unit.globals.get(expr.name)
            if info is None:
                raise CodegenError(f"undefined variable {expr.name!r}",
                                   expr.line)
            if info.array_size is not None:
                raise CodegenError(
                    f"array {expr.name!r} used as scalar", expr.line)
            self.emit(f"LDA R{temp.register}, {info.label}")
            self.emit(f"LDR R{temp.register}, [R{temp.register}]")
        elif isinstance(home, RegisterHome):
            self.emit(f"MOV R{temp.register}, R{home.register}")
        elif isinstance(home, StackHome):
            self.emit(f"LDR R{temp.register}, "
                      f"[SP, #{self.sp_offset(home.offset)}]")
        else:
            raise CodegenError(
                f"array {expr.name!r} used as scalar", expr.line)
        return temp

    def _gen_array_read(self, expr: ast.ArrayRef) -> _Temp:
        base = self._gen_array_base(expr.name, expr.line)
        index = self.gen_expression(expr.index)
        self.unspill(index)
        self.unspill(base)
        self.emit(f"SHLI R{index.register}, R{index.register}, #2")
        self.emit(f"LDR R{base.register}, "
                  f"[R{base.register}, R{index.register}]")
        self.pop_temp()   # index
        return base

    def _gen_array_base(self, name: str, line: int) -> _Temp:
        """Temp holding the byte address of ``name[0]``."""
        home = self.homes.get(name)
        temp = self.alloc_temp(line)
        if home is None:
            info = self.unit.globals.get(name)
            if info is None or info.array_size is None:
                raise CodegenError(f"undefined array {name!r}", line)
            self.emit(f"LDA R{temp.register}, {info.label}")
        elif isinstance(home, ArrayHome):
            self.emit(f"ADDI R{temp.register}, SP, "
                      f"#{self.sp_offset(home.offset)}")
        else:
            raise CodegenError(f"scalar {name!r} indexed as array", line)
        return temp

    def _gen_unary(self, expr: ast.Unary) -> _Temp:
        if expr.op == "!":
            return self._gen_boolean_value(expr)
        if expr.op == "-":
            zero = self.alloc_temp(expr.line)
            self.emit(f"MOVI R{zero.register}, #0")
            operand = self.gen_expression(expr.operand)
            self.unspill(operand)
            self.unspill(zero)
            self.emit(f"SUB R{zero.register}, R{zero.register}, "
                      f"R{operand.register}")
            self.pop_temp()   # operand
            return zero
        operand = self.gen_expression(expr.operand)
        self.unspill(operand)
        if expr.op == "~":
            self.emit(f"XORI R{operand.register}, R{operand.register}, "
                      "#-1")
        else:  # pragma: no cover
            raise CodegenError(f"unknown unary {expr.op!r}", expr.line)
        return operand

    def _register_of_variable(self, expr: ast.Expr) -> Optional[int]:
        """The home register of a plain register-resident variable, so
        it can be used as an ALU/compare operand without a copy.  This
        is what keeps compiled loop counters recognisable to the affine
        loop-bound pattern (a single ``ADDI Rc, Rc, #step`` def and a
        ``CMP Rc, ...`` at the latch)."""
        if isinstance(expr, ast.VarRef):
            home = self.homes.get(expr.name)
            if isinstance(home, RegisterHome):
                return home.register
        return None

    def _gen_binary(self, expr: ast.Binary) -> _Temp:
        mnemonic = _ALU.get(expr.op)
        if mnemonic is None:
            raise CodegenError(f"unsupported operator {expr.op!r} "
                               "(mini-C has no division)", expr.line)
        left_reg = self._register_of_variable(expr.left)
        # Constant right operand: use the immediate form.
        if isinstance(expr.right, ast.IntLiteral) \
                and -32768 <= expr.right.value <= 32767:
            if left_reg is not None:
                result = self.alloc_temp(expr.line)
                self.emit(f"{_ALU_IMM[expr.op]} R{result.register}, "
                          f"R{left_reg}, #{expr.right.value}")
                return result
            left = self.gen_expression(expr.left)
            self.unspill(left)
            self.emit(f"{_ALU_IMM[expr.op]} R{left.register}, "
                      f"R{left.register}, #{expr.right.value}")
            return left
        right_reg = self._register_of_variable(expr.right)
        if left_reg is not None and right_reg is not None:
            result = self.alloc_temp(expr.line)
            self.emit(f"{mnemonic} R{result.register}, R{left_reg}, "
                      f"R{right_reg}")
            return result
        if left_reg is not None:
            right = self.gen_expression(expr.right)
            self.unspill(right)
            self.emit(f"{mnemonic} R{right.register}, R{left_reg}, "
                      f"R{right.register}")
            return right
        if right_reg is not None:
            left = self.gen_expression(expr.left)
            self.unspill(left)
            self.emit(f"{mnemonic} R{left.register}, R{left.register}, "
                      f"R{right_reg}")
            return left
        left = self.gen_expression(expr.left)
        right = self.gen_expression(expr.right)
        self.unspill(right)   # right is top; never spilled, defensive
        self.unspill(left)
        self.emit(f"{mnemonic} R{left.register}, R{left.register}, "
                  f"R{right.register}")
        self.pop_temp()       # right
        return left

    def _gen_boolean_value(self, expr: ast.Expr) -> _Temp:
        """Materialise a condition as 0/1."""
        true_label = self.new_label()
        end_label = self.new_label()
        temp = self.alloc_temp(expr.line)
        temp.pinned = True   # must keep this register across the branches
        self.gen_condition(expr, true_label, None)
        self.emit(f"MOVI R{temp.register}, #0")
        self.emit(f"B {end_label}")
        self.emit_label(true_label)
        self.emit(f"MOVI R{temp.register}, #1")
        self.emit_label(end_label)
        temp.pinned = False
        return temp

    def _gen_call(self, expr: ast.Call) -> _Temp:
        if expr.name not in self.unit.functions \
                and expr.name not in self.unit.declared_functions:
            raise CodegenError(f"undefined function {expr.name!r}",
                               expr.line)
        argument_temps = [self.gen_expression(arg)
                          for arg in expr.arguments]
        # Move arguments into R0..R3, consuming temps LIFO.
        for position in reversed(range(len(argument_temps))):
            temp = argument_temps[position]
            assert temp is self.temp_stack[-1]
            self.unspill(temp)
            self.emit(f"MOV R{position}, R{temp.register}")
            self.pop_temp()
        self.emit(f"BL {expr.name}")
        result = self.alloc_temp(expr.line)
        self.emit(f"MOV R{result.register}, R0")
        return result

    # -- Conditions ------------------------------------------------------------------

    def gen_condition(self, expr: ast.Expr, true_label: Optional[str],
                      false_label: Optional[str]) -> None:
        """Branch to ``true_label`` when ``expr`` holds, ``false_label``
        otherwise; ``None`` means fall through."""
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.gen_condition(expr.operand, false_label, true_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            middle = self.new_label()
            fail = false_label or self.new_label()
            self.gen_condition(expr.left, middle, fail)
            self.emit_label(middle)
            self.gen_condition(expr.right, true_label, false_label)
            if false_label is None:
                self.emit_label(fail)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            succeed = true_label or self.new_label()
            middle = self.new_label()
            self.gen_condition(expr.left, succeed, middle)
            self.emit_label(middle)
            self.gen_condition(expr.right, true_label, false_label)
            if true_label is None:
                self.emit_label(succeed)
            return
        if isinstance(expr, ast.Binary) and expr.op in _COMPARISONS:
            self._gen_compare_branch(expr, true_label, false_label)
            return
        # Any other expression: compare against zero.
        temp = self.gen_expression(expr)
        self.unspill(temp)
        self.emit(f"CMPI R{temp.register}, #0")
        self.pop_temp()
        self._emit_cond_branches("NE", true_label, false_label)

    def _gen_compare_branch(self, expr: ast.Binary,
                            true_label: Optional[str],
                            false_label: Optional[str]) -> None:
        condition = _COMPARISONS[expr.op]
        left_reg = self._register_of_variable(expr.left)
        right_reg = self._register_of_variable(expr.right)
        if isinstance(expr.right, ast.IntLiteral) \
                and -32768 <= expr.right.value <= 32767:
            if left_reg is not None:
                self.emit(f"CMPI R{left_reg}, #{expr.right.value}")
            else:
                left = self.gen_expression(expr.left)
                self.unspill(left)
                self.emit(f"CMPI R{left.register}, #{expr.right.value}")
                self.pop_temp()
        elif left_reg is not None and right_reg is not None:
            self.emit(f"CMP R{left_reg}, R{right_reg}")
        elif left_reg is not None:
            right = self.gen_expression(expr.right)
            self.unspill(right)
            self.emit(f"CMP R{left_reg}, R{right.register}")
            self.pop_temp()
        elif right_reg is not None:
            left = self.gen_expression(expr.left)
            self.unspill(left)
            self.emit(f"CMP R{left.register}, R{right_reg}")
            self.pop_temp()
        else:
            left = self.gen_expression(expr.left)
            right = self.gen_expression(expr.right)
            self.unspill(right)
            self.unspill(left)
            self.emit(f"CMP R{left.register}, R{right.register}")
            self.pop_temp()
            self.pop_temp()
        self._emit_cond_branches(condition, true_label, false_label)

    def _emit_cond_branches(self, condition: str,
                            true_label: Optional[str],
                            false_label: Optional[str]) -> None:
        if true_label is not None:
            self.emit(f"B{condition} {true_label}")
            if false_label is not None:
                self.emit(f"B {false_label}")
        elif false_label is not None:
            self.emit(f"B{_NEGATED[condition]} {false_label}")

    # -- Statements --------------------------------------------------------------------

    def gen_statements(self, statements) -> None:
        for statement in statements:
            self.gen_statement(statement)

    def gen_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Declaration):
            if stmt.initializer is not None:
                self._store_scalar(stmt.name, stmt.initializer, stmt.line)
        elif isinstance(stmt, ast.Assignment):
            self._gen_assignment(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                temp = self.gen_expression(stmt.value)
                self.unspill(temp)
                self.emit(f"MOV R0, R{temp.register}")
                self.pop_temp()
            self.emit(f"B {self.epilogue_label}")
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise CodegenError("break outside loop", stmt.line)
            self.emit(f"B {self.loop_stack[-1][1]}")
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise CodegenError("continue outside loop", stmt.line)
            self.emit(f"B {self.loop_stack[-1][0]}")
        elif isinstance(stmt, ast.ExprStmt):
            temp = self.gen_expression(stmt.expression)
            self.unspill(temp)
            self.pop_temp()
        else:  # pragma: no cover
            raise CodegenError(f"unsupported statement {stmt!r}",
                               stmt.line)

    def _store_scalar(self, name: str, value: ast.Expr,
                      line: int) -> None:
        home = self.homes.get(name)
        if isinstance(home, RegisterHome) \
                and self._gen_inplace_update(home.register, name, value):
            return
        temp = self.gen_expression(value)
        self.unspill(temp)
        home = self.homes.get(name)
        if home is None:
            info = self.unit.globals.get(name)
            if info is None:
                raise CodegenError(f"undefined variable {name!r}", line)
            if info.array_size is not None:
                raise CodegenError(f"array {name!r} assigned as scalar",
                                   line)
            address = self.alloc_temp(line)
            self.emit(f"LDA R{address.register}, {info.label}")
            self.emit(f"STR R{temp.register}, [R{address.register}]")
            self.pop_temp()
        elif isinstance(home, RegisterHome):
            self.emit(f"MOV R{home.register}, R{temp.register}")
        elif isinstance(home, StackHome):
            self.emit(f"STR R{temp.register}, "
                      f"[SP, #{self.sp_offset(home.offset)}]")
        else:
            raise CodegenError(f"array {name!r} assigned as scalar", line)
        self.pop_temp()

    def _gen_inplace_update(self, register: int, name: str,
                            value: ast.Expr) -> bool:
        """Emit ``x = x <op> operand`` as a single in-place ALU
        instruction when ``x`` lives in a register.  Besides shorter
        code, this is what makes compiled loop counters match the
        affine bound pattern (a unique ``ADDI Rc, Rc, #step`` def)."""
        if not isinstance(value, ast.Binary):
            # x = y (register to register)
            source = self._register_of_variable(value)
            if source is not None:
                self.emit(f"MOV R{register}, R{source}")
                return True
            if isinstance(value, ast.IntLiteral):
                self.emit(f"LDI R{register}, #{value.value}")
                return True
            return False
        mnemonic = _ALU.get(value.op)
        if mnemonic is None:
            return False
        left_is_self = isinstance(value.left, ast.VarRef) \
            and value.left.name == name
        if not left_is_self:
            return False
        if isinstance(value.right, ast.IntLiteral) \
                and -32768 <= value.right.value <= 32767:
            self.emit(f"{_ALU_IMM[value.op]} R{register}, R{register}, "
                      f"#{value.right.value}")
            return True
        right_reg = self._register_of_variable(value.right)
        if right_reg is not None:
            self.emit(f"{mnemonic} R{register}, R{register}, "
                      f"R{right_reg}")
            return True
        return False

    def _gen_assignment(self, stmt: ast.Assignment) -> None:
        if isinstance(stmt.target, ast.VarRef):
            self._store_scalar(stmt.target.name, stmt.value, stmt.line)
            return
        target = stmt.target
        value = self.gen_expression(stmt.value)
        base = self._gen_array_base(target.name, stmt.line)
        index = self.gen_expression(target.index)
        self.unspill(index)
        self.emit(f"SHLI R{index.register}, R{index.register}, #2")
        self.unspill(base)
        self.unspill(value)
        self.emit(f"STR R{value.register}, "
                  f"[R{base.register}, R{index.register}]")
        self.pop_temp()   # index
        self.pop_temp()   # base
        self.pop_temp()   # value

    def _gen_if(self, stmt: ast.If) -> None:
        else_label = self.new_label()
        end_label = self.new_label()
        has_else = bool(stmt.else_body)
        self.gen_condition(stmt.condition, None,
                           else_label if has_else else end_label)
        self.gen_statements(stmt.then_body)
        if has_else:
            self.emit(f"B {end_label}")
            self.emit_label(else_label)
            self.gen_statements(stmt.else_body)
        self.emit_label(end_label)

    def _gen_while(self, stmt: ast.While) -> None:
        body_label = self.new_label()
        continue_label = self.new_label()
        exit_label = self.new_label()
        # Rotated loop: guard, body, bottom test.
        self.gen_condition(stmt.condition, None, exit_label)
        self.emit_label(body_label)
        self.loop_stack.append((continue_label, exit_label))
        self.gen_statements(stmt.body)
        self.loop_stack.pop()
        self.emit_label(continue_label)
        self.gen_condition(stmt.condition, body_label, None)
        self.emit_label(exit_label)

    def _gen_do_while(self, stmt: ast.DoWhile) -> None:
        body_label = self.new_label()
        continue_label = self.new_label()
        exit_label = self.new_label()
        self.emit_label(body_label)
        self.loop_stack.append((continue_label, exit_label))
        self.gen_statements(stmt.body)
        self.loop_stack.pop()
        self.emit_label(continue_label)
        self.gen_condition(stmt.condition, body_label, None)
        self.emit_label(exit_label)

    def _gen_for(self, stmt: ast.For) -> None:
        body_label = self.new_label()
        continue_label = self.new_label()
        exit_label = self.new_label()
        if stmt.init is not None:
            self.gen_statement(stmt.init)
        if stmt.condition is not None:
            self.gen_condition(stmt.condition, None, exit_label)
        self.emit_label(body_label)
        self.loop_stack.append((continue_label, exit_label))
        self.gen_statements(stmt.body)
        self.loop_stack.pop()
        self.emit_label(continue_label)
        if stmt.update is not None:
            self.gen_statement(stmt.update)
        if stmt.condition is not None:
            self.gen_condition(stmt.condition, body_label, None)
        else:
            self.emit(f"B {body_label}")
        self.emit_label(exit_label)

    # -- Function assembly --------------------------------------------------------------

    def generate(self) -> List[str]:
        self._assign_homes()
        self.epilogue_label = self.unit.new_label()

        body_cg_start = len(self.lines)
        # Parameters into their homes.
        for position, parameter in enumerate(self.function.parameters):
            home = self.homes[parameter.name]
            if isinstance(home, RegisterHome):
                self.emit(f"MOV R{home.register}, R{position}")
            else:
                self.emit(f"STR R{position}, [SP, #{home.offset}]")
        self.gen_statements(self.function.body)
        if self.temp_stack:  # pragma: no cover - internal invariant
            raise CodegenError(
                f"{self.function.name}: temp stack not empty")
        body = self.lines[body_cg_start:]

        saved = sorted(self.used_var_regs | self.used_temps)
        if self.makes_calls and not self.is_main:
            saved.append(14)   # LR
        if self.is_main:
            saved = [r for r in saved if r != 14]

        prologue: List[str] = [f"{self.function.name}:"]
        if saved:
            reglist = ", ".join(f"R{r}" if r != 14 else "LR"
                                for r in saved)
            prologue.append(f"    PUSH {{{reglist}}}")
        if self.frame_size:
            prologue.append(f"    SUBI SP, SP, #{self.frame_size}")

        epilogue: List[str] = [f"{self.epilogue_label}:"]
        if self.frame_size:
            epilogue.append(f"    ADDI SP, SP, #{self.frame_size}")
        if saved:
            reglist = ", ".join(f"R{r}" if r != 14 else "LR"
                                for r in saved)
            epilogue.append(f"    POP {{{reglist}}}")
        epilogue.append("    HALT" if self.is_main else "    RET")

        return prologue + body + epilogue


class Codegen:
    """Whole-unit code generator."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.globals: Dict[str, GlobalInfo] = {}
        self.functions: Set[str] = {f.name for f in unit.functions}
        self.declared_functions: Set[str] = set(self.functions)
        self.label_counter = 0

    def new_label(self) -> str:
        label = f".L{self.label_counter}"
        self.label_counter += 1
        return label

    def generate(self) -> str:
        lines: List[str] = []
        for glob in self.unit.globals:
            if glob.name in self.globals:
                raise CodegenError(f"duplicate global {glob.name!r}",
                                   glob.line)
            self.globals[glob.name] = GlobalInfo(
                f"g_{glob.name}", glob.array_size)

        if "main" not in self.functions:
            raise CodegenError("mini-C program needs a main function")

        # main first so it becomes the entry point.
        ordered = sorted(self.unit.functions,
                         key=lambda f: f.name != "main")
        for function in ordered:
            lines.extend(FunctionCodegen(self, function).generate())
            lines.append("")

        if self.unit.globals:
            lines.append(".data")
            for glob in self.unit.globals:
                info = self.globals[glob.name]
                if glob.array_size is None:
                    value = glob.initializer[0] if glob.initializer else 0
                    lines.append(f"{info.label}: .word {value}")
                else:
                    values = list(glob.initializer)
                    values += [0] * (glob.array_size - len(values))
                    if glob.initializer:
                        rendered = ", ".join(str(v) for v in values)
                        lines.append(f"{info.label}: .word {rendered}")
                    else:
                        lines.append(f"{info.label}: "
                                     f".space {4 * glob.array_size}")
        return "\n".join(lines) + "\n"
