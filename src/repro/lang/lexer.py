"""Tokenizer for mini-C."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = frozenset({
    "int", "void", "if", "else", "while", "for", "do", "return",
    "break", "continue",
})

# Multi-character operators first so maximal munch works.
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "&", "|", "^", "<", ">", "=", "!", "~",
    "(", ")", "{", "}", "[", "]", ";", ",",
]


class LexerError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.message = message
        self.line = line

    def __reduce__(self):
        # args holds the joined string, so default exception pickling
        # would replay a one-argument constructor call and fail.
        return (type(self), (self.message, self.line))


@dataclass(frozen=True)
class Token:
    kind: str          # "int" | "ident" | "number" | operator | "eof"
    text: str
    line: int

    @property
    def is_eof(self) -> bool:
        return self.kind == "eof"


def tokenize(source: str) -> List[Token]:
    """Convert mini-C source text into a token list (ending with EOF)."""
    tokens: List[Token] = []
    line = 1
    i = 0
    length = len(source)
    while i < length:
        char = source[i]
        if char == "\n":
            line += 1
            i += 1
            continue
        if char in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = length if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexerError("unterminated comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if char.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < length and source[i] in "0123456789abcdefABCDEF":
                    i += 1
            else:
                while i < length and source[i].isdigit():
                    i += 1
            tokens.append(Token("number", source[start:i], line))
            continue
        if char.isalpha() or char == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = text if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue
        for operator in OPERATORS:
            if source.startswith(operator, i):
                tokens.append(Token(operator, operator, line))
                i += len(operator)
                break
        else:
            raise LexerError(f"unexpected character {char!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
