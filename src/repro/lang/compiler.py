"""Mini-C compiler driver: source -> assembly -> binary Program."""

from __future__ import annotations

from typing import Optional

from ..isa.assembler import assemble
from ..isa.program import MemoryMap, Program
from .codegen import Codegen, CodegenError
from .parser import parse


def compile_to_assembly(source: str) -> str:
    """Compile mini-C source to KRISC assembly text."""
    unit = parse(source)
    return Codegen(unit).generate()


def compile_program(source: str,
                    memory_map: Optional[MemoryMap] = None) -> Program:
    """Compile mini-C source all the way to a linked binary.

    The result is a real :class:`Program` image — the analyses decode
    it from bytes exactly as they would a field binary.
    """
    return assemble(compile_to_assembly(source), memory_map)
