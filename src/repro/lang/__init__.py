"""Mini-C: the C-subset compiler producing KRISC binaries for the
analyses (substrate; see DESIGN.md)."""

from .codegen import Codegen, CodegenError
from .compiler import compile_program, compile_to_assembly
from .lexer import LexerError, tokenize
from .parser import ParseError, parse

__all__ = [
    "Codegen", "CodegenError", "compile_program", "compile_to_assembly",
    "LexerError", "tokenize", "ParseError", "parse",
]
