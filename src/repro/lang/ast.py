"""Abstract syntax tree for mini-C.

Mini-C is the C subset used to generate realistic embedded binaries for
the analyses (see DESIGN.md): 32-bit signed integers, global and local
scalars and one-dimensional arrays, the usual expression operators
(no division — KRISC has no divide unit), ``if``/``while``/``for``/
``do``/``break``/``continue``/``return``, and call-by-value functions
of up to four parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    line: int = field(default=0, compare=False)


# -- Expressions --------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class ArrayRef(Expr):
    name: str = ""
    index: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""                 # "-" | "!" | "~"
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""                 # + - * & | ^ << >> < <= > >= == != && ||
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    arguments: List[Expr] = field(default_factory=list)


# -- Statements -----------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Declaration(Stmt):
    name: str = ""
    array_size: Optional[int] = None      # None = scalar
    initializer: Optional[Expr] = None    # scalars only


@dataclass
class Assignment(Stmt):
    target: Optional[Expr] = None         # VarRef or ArrayRef
    value: Optional[Expr] = None


@dataclass
class If(Stmt):
    condition: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    condition: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class DoWhile(Stmt):
    condition: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None           # Assignment or Declaration
    condition: Optional[Expr] = None
    update: Optional[Stmt] = None          # Assignment
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expression: Optional[Expr] = None


# -- Top level -----------------------------------------------------------------------


@dataclass
class GlobalVar(Node):
    name: str = ""
    array_size: Optional[int] = None
    initializer: List[int] = field(default_factory=list)


@dataclass
class Parameter(Node):
    name: str = ""


@dataclass
class Function(Node):
    name: str = ""
    parameters: List[Parameter] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    returns_value: bool = True             # int f() vs void f()


@dataclass
class TranslationUnit(Node):
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"no function {name!r}")
