"""Worker-pool executor for the sweep phase-task DAG.

:func:`run_dag` drains a :class:`~repro.batch.dag.SweepDAG` on a
persistent :class:`~concurrent.futures.ProcessPoolExecutor`: every
worker serves tasks from one shared ready queue (work stealing falls
out — an idle worker takes whatever became ready, whether or not it
computed the upstream artifacts), tasks are handed out the moment
their dependencies complete, and there are no per-group barriers.
Artifacts travel between workers through the shared content-addressed
store (:mod:`repro.batch.cachestore`); a vanished object — e.g. an
eviction by a concurrent worker under ``--cache-limit-mb`` — is
treated as a miss and recomputed transitively, never raised.

Failure handling is *healing*, not aborting: a task that errors is
retried with exponential backoff up to a per-task budget before its
transitive dependents fail into error rows; a dead worker
(``BrokenProcessPool``) triggers a bounded number of pool *rebuilds*
with the in-flight tasks resubmitted; and once the rebuild budget is
spent the scheduler degrades to in-process sequential execution of
the remaining ready queue — slower, but every row still completes
with bit-identical bounds.  The retry/rebuild/degraded counters land
in :class:`SchedulerStats`.
"""

from __future__ import annotations

import functools
import heapq
import itertools
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .. import faults
from ..domainimpl import resolve_domain_impl
from ..isa.program import Program
from ..wcet.ait import PHASES, build_wcet_result
from ..workloads.suite import get_workload
from .cachestore import ArtifactCache, code_version_salt
from .dag import JobPlan, SweepDAG, TaskNode
from .jobs import JobSpec

#: Default fault-tolerance budgets: how often one task may fail before
#: its jobs become error rows, how often a broken pool is rebuilt
#: before degrading to in-process execution, and the base of the
#: exponential retry backoff.
DEFAULT_TASK_RETRIES = 2
DEFAULT_POOL_REBUILDS = 3
DEFAULT_RETRY_BACKOFF = 0.05

# -- Worker-side state -----------------------------------------------------------
#
# Module-level memos live in each pool worker (fork workers inherit the
# parent's — empty at sweep start — copies): compiled binaries and
# executable job plans are reused across all tasks a worker serves.

_PROGRAM_MEMO: Dict[str, Program] = {}
_PLAN_MEMO: Dict[Tuple[str, str, str, Optional[str]], JobPlan] = {}
_CACHE_MEMO: Dict[Tuple[Optional[str], Optional[str], Optional[int]],
                  ArtifactCache] = {}


def clear_worker_caches() -> None:
    """Drop this process's plan/program/cache memos (benchmark cold
    runs; see :func:`repro.batch.engine.clear_process_caches`)."""
    _PROGRAM_MEMO.clear()
    _PLAN_MEMO.clear()
    _CACHE_MEMO.clear()


def _worker_cache(cache_dir: Optional[str], salt: Optional[str],
                  limit_bytes: Optional[int]) -> ArtifactCache:
    # Same normalization as engine._process_cache: the default salt
    # passed explicitly must not build a second cache instance.
    salt = salt if salt is not None else code_version_salt()
    memo_key = (cache_dir, salt, limit_bytes)
    cache = _CACHE_MEMO.get(memo_key)
    if cache is None:
        cache = ArtifactCache(cache_dir, salt=salt,
                              limit_bytes=limit_bytes)
        _CACHE_MEMO[memo_key] = cache
    return cache


def _plan_for(spec: JobSpec, domain_impl: Optional[str]) -> JobPlan:
    memo_key = (spec.workload, spec.policy, spec.model, domain_impl)
    plan = _PLAN_MEMO.get(memo_key)
    if plan is None:
        program = _PROGRAM_MEMO.get(spec.workload)
        if program is None:
            program = get_workload(spec.workload).compile()
            _PROGRAM_MEMO[spec.workload] = program
        plan = JobPlan(spec, program, domain_impl)
        _PLAN_MEMO[memo_key] = plan
    return plan


class _TaskContext:
    """Key and artifact resolution for one task execution.

    Keys are derived from dependency keys exactly as the sequential
    :class:`~repro.wcet.ait.PhaseRunner` chains them.  Artifact
    resolution is *self-healing*: a dependency artifact that should be
    in the store but is not (evicted under ``--cache-limit-mb``, or a
    corrupt object) is recomputed transitively instead of raising —
    the eviction race degrades to redundant work, never to a failure.
    """

    def __init__(self, plan: JobPlan, cache: ArtifactCache):
        self.plan = plan
        self.cache = cache
        self._keys: Dict[str, str] = {}

    def key_of(self, template: str) -> str:
        key = self._keys.get(template)
        if key is None:
            spec = self.plan.templates[template]
            dep_keys = {dep: self.key_of(dep) for dep in spec.deps}
            key = self.cache.key(spec.material(dep_keys, self.value_of))
            self._keys[template] = key
        return key

    def ensure(self, template: str) -> bool:
        """Make the template's artifact addressable in the store;
        return whether this call computed it.

        Routed through the cache's single-flight latch: when two
        threads (e.g. concurrent identical ``repro serve`` requests
        sharing one in-process cache) race on the same key, one
        computes and the other blocks on its latch — dedup happens
        *before* the work starts, not only through the artifact store
        after completion."""
        _, computed = self.cache.fetch_or_compute(
            self.key_of(template), lambda: self._compute(template))
        return computed

    def value_of(self, template: str) -> Any:
        value, _ = self.cache.fetch_or_compute(
            self.key_of(template), lambda: self._compute(template))
        return value

    def _compute(self, template: str) -> Any:
        spec = self.plan.templates[template]
        deps = {dep: self.value_of(dep) for dep in spec.deps}
        return spec.compute(deps)


def _transportable(task):
    """Run ``task`` but hand exceptions back as plain error payloads.

    Raising across the result pipe is not safe: an exception whose
    class does not survive a pickle round-trip (e.g. a two-argument
    ``__init__`` without a custom ``__reduce__``) blows up in the
    parent's result thread, which declares the whole *pool* broken —
    one bad workload would take every in-flight job down with it.
    A string ``{"error": ...}`` payload always pickles, so task
    failure stays a per-task event no matter what was raised.
    """
    @functools.wraps(task)
    def shielded(payload):
        start = time.perf_counter()
        try:
            return task(payload)
        except Exception as exc:
            return {"pid": os.getpid(),
                    "error": f"{type(exc).__name__}: {exc}",
                    "seconds": time.perf_counter() - start}
    return shielded


@_transportable
def _phase_task(payload: Tuple[JobSpec, str, Optional[str],
                               Optional[str], Optional[int],
                               Optional[str]]) -> dict:
    """Pool task: ensure one phase artifact exists in the store."""
    faults.worker_task_started()
    spec, template, cache_dir, salt, limit_bytes, impl = payload
    start = time.perf_counter()
    plan = _plan_for(spec, impl)
    cache = _worker_cache(cache_dir, salt, limit_bytes)
    context = _TaskContext(plan, cache)
    computed = context.ensure(template)
    return {"pid": os.getpid(), "computed": computed,
            "memo": cache.memo_stats(),
            "quarantined": cache.quarantined,
            "seconds": time.perf_counter() - start}


@_transportable
def _row_task(payload: Tuple[JobSpec, Dict[str, str], Optional[str],
                             Optional[str], Optional[int],
                             Optional[str]]) -> dict:
    """Pool task: assemble one job's result row from its (already
    computed) phase artifacts.

    ``events`` is the parent's canonical-owner hit/miss attribution
    (:meth:`repro.batch.dag.SweepDAG.row_events`), so the row matches
    a sequential sweep byte for byte outside the timing fields.
    """
    from .engine import _result_row

    faults.worker_task_started()
    spec, events, cache_dir, salt, limit_bytes, impl = payload
    start = time.perf_counter()
    plan = _plan_for(spec, impl)
    cache = _worker_cache(cache_dir, salt, limit_bytes)
    context = _TaskContext(plan, cache)
    artifacts = {}
    phase_seconds = {}
    for phase in PHASES:
        phase_start = time.perf_counter()
        artifacts[phase] = context.value_of(phase)
        phase_seconds[phase] = time.perf_counter() - phase_start
    result = build_wcet_result(plan.program, plan.config, artifacts,
                               phase_seconds, dict(events),
                               domain_impl=impl)
    row = _result_row(spec, result, time.perf_counter() - start)
    return {"pid": os.getpid(), "row": row,
            "memo": cache.memo_stats(),
            "quarantined": cache.quarantined,
            "seconds": time.perf_counter() - start}


@_transportable
def _job_task(payload: Tuple[JobSpec]) -> dict:
    """Pool task for ``use_cache=False`` sweeps: one whole job, no
    artifact transport (nothing to share without a store)."""
    from .engine import run_job

    faults.worker_task_started()
    (spec,) = payload
    start = time.perf_counter()
    row = run_job(spec, None)
    return {"pid": os.getpid(), "row": row,
            "seconds": time.perf_counter() - start}


# -- Parent-side scheduling loop -------------------------------------------------


def _pool_context():
    # Fork workers inherit the imported analysis modules, avoiding a
    # per-worker re-import; unavailable on some platforms.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


@dataclass
class SchedulerStats:
    """What the DAG scheduler did with a sweep."""

    workers: int
    phase_refs: int = 0
    unique_tasks: int = 0
    deduped_tasks: int = 0
    computed_tasks: int = 0
    cache_served_tasks: int = 0
    steals: int = 0
    #: task re-executions: error-payload retries plus resubmissions of
    #: tasks that were in flight when the pool died.
    retries: int = 0
    #: times a BrokenProcessPool was replaced with a fresh pool.
    pool_rebuilds: int = 0
    #: tasks executed in-process after the rebuild budget ran out
    #: (0 = the sweep never degraded).
    degraded_tasks: int = 0
    wall_seconds: float = 0.0
    #: worker pid -> seconds spent executing tasks.
    worker_busy: Dict[int, float] = field(default_factory=dict)
    #: worker pid -> latest ArtifactCache.memo_stats() snapshot.
    worker_memo: Dict[int, dict] = field(default_factory=dict)
    #: worker pid -> latest cumulative quarantine count of its cache.
    worker_quarantined: Dict[int, int] = field(default_factory=dict)

    def busy_fractions(self) -> Dict[str, float]:
        if self.wall_seconds <= 0:
            return {}
        return {str(pid): round(busy / self.wall_seconds, 4)
                for pid, busy in sorted(self.worker_busy.items())}

    def memo_summary(self) -> dict:
        """Pool-wide in-memory memo occupancy (summed over workers)."""
        return {"entries": sum(m.get("entries", 0)
                               for m in self.worker_memo.values()),
                "bytes": sum(m.get("bytes", 0)
                             for m in self.worker_memo.values()),
                "evictions": sum(m.get("evictions", 0)
                                 for m in self.worker_memo.values())}

    @property
    def quarantined(self) -> int:
        """Pool-wide quarantine events (summed over worker caches)."""
        return sum(self.worker_quarantined.values())

    def as_dict(self) -> dict:
        return {"workers": self.workers,
                "phase_refs": self.phase_refs,
                "unique_tasks": self.unique_tasks,
                "deduped_tasks": self.deduped_tasks,
                "computed_tasks": self.computed_tasks,
                "cache_served_tasks": self.cache_served_tasks,
                "steals": self.steals,
                "retries": self.retries,
                "pool_rebuilds": self.pool_rebuilds,
                "degraded_tasks": self.degraded_tasks,
                "quarantined": self.quarantined,
                "wall_seconds": round(self.wall_seconds, 6),
                "worker_busy_fraction": self.busy_fractions(),
                "memo": self.memo_summary()}


def _node_error_row(node: TaskNode, message: str) -> dict:
    spec = node.spec
    return {"workload": spec.workload, "policy": spec.policy,
            "model": spec.model, "error": message}


def run_dag(sweep: SweepDAG, parallel: int,
            cache_dir: Optional[str] = None,
            salt: Optional[str] = None,
            limit_bytes: Optional[int] = None,
            domain_impl: Optional[str] = None,
            max_task_retries: int = DEFAULT_TASK_RETRIES,
            max_pool_rebuilds: int = DEFAULT_POOL_REBUILDS,
            retry_backoff_seconds: float = DEFAULT_RETRY_BACKOFF
            ) -> Tuple[List[dict], SchedulerStats]:
    """Execute the sweep DAG on a pool of ``parallel`` workers.

    Returns rows in job order (error rows for failed jobs) and the
    scheduler's statistics.  A task that errors is retried up to
    ``max_task_retries`` times with exponential backoff
    (``retry_backoff_seconds * 2**attempt``) before failing its jobs;
    a dead pool is rebuilt up to ``max_pool_rebuilds`` times with the
    in-flight tasks resubmitted, and past that budget the remaining
    schedule runs in-process sequentially (degraded mode) so every
    row still completes.
    """
    start = time.perf_counter()
    impl = resolve_domain_impl(domain_impl)
    dag = sweep.dag
    stats = SchedulerStats(workers=parallel, **sweep.stats())
    rows: List[Optional[dict]] = [None] * len(sweep.jobs)
    for job_index, message in sweep.build_errors.items():
        spec = sweep.jobs[job_index]
        rows[job_index] = {"workload": spec.workload,
                           "policy": spec.policy, "model": spec.model,
                           "error": message}

    def job_index_of(node: TaskNode) -> Optional[int]:
        if node.kind in ("row", "job"):
            return node.identity[1]
        return None

    def payload_for(node: TaskNode):
        if node.kind == "job":
            return _job_task, (node.spec,)
        if node.kind == "row":
            events = sweep.row_events(job_index_of(node))
            return _row_task, (node.spec, events, cache_dir, salt,
                               limit_bytes, impl)
        return _phase_task, (node.spec, node.template, cache_dir, salt,
                             limit_bytes, impl)

    def record_failure(node: TaskNode, message: str) -> None:
        for failed in dag.fail(node, message):
            failed_index = job_index_of(failed)
            if failed_index is not None and rows[failed_index] is None:
                rows[failed_index] = _node_error_row(failed,
                                                     failed.error)

    # Retry machinery: attempts counts error-payload failures per node
    # (kills don't burn the budget — the culprit can't be identified);
    # deferred holds backoff-delayed resubmissions as (ready-time,
    # tiebreak, node).
    attempts: Dict[int, int] = {}
    deferred: List[Tuple[float, int, TaskNode]] = []
    deferred_seq = itertools.count()

    def retry_or_fail(node: TaskNode, message: str) -> None:
        count = attempts.get(node.index, 0)
        if count >= max_task_retries:
            record_failure(node, f"{message} (task failed "
                                 f"{count + 1} times)")
            return
        attempts[node.index] = count + 1
        stats.retries += 1
        delay = retry_backoff_seconds * (2 ** count)
        heapq.heappush(deferred, (time.monotonic() + delay,
                                  next(deferred_seq), node))

    def absorb(node: TaskNode, outcome: dict) -> List[TaskNode]:
        """Book one returned task payload; error payloads go through
        the retry budget.  Returns the newly-released dependents."""
        pid = outcome["pid"]
        seconds = outcome["seconds"]
        stats.worker_busy[pid] = \
            stats.worker_busy.get(pid, 0.0) + seconds
        memo = outcome.get("memo")
        if memo is not None:
            stats.worker_memo[pid] = memo
        quarantined = outcome.get("quarantined")
        if quarantined is not None:
            stats.worker_quarantined[pid] = quarantined
        error = outcome.get("error")
        if error is not None:
            retry_or_fail(node, error)
            return []
        if node.deps:
            handoff = max(node.deps,
                          key=lambda dep: dep.finish_order or 0)
            if handoff.worker is not None and handoff.worker != pid:
                stats.steals += 1
        computed = outcome.get("computed")
        if node.kind in ("phase", "annotate"):
            if computed:
                stats.computed_tasks += 1
            else:
                stats.cache_served_tasks += 1
        else:
            rows[job_index_of(node)] = outcome["row"]
        return dag.complete(node, computed=computed, seconds=seconds,
                            worker=pid)

    def run_inline(crashed: List[TaskNode]) -> None:
        """Degraded mode: drain the remaining schedule in-process.

        Worker-kill fault injection never fires in this process (see
        :func:`repro.faults.worker_task_started`), so a sweep whose
        pool keeps dying still terminates with complete rows.
        """
        queue = [node.index for node in crashed]
        heapq.heapify(queue)
        while queue or deferred:
            now = time.monotonic()
            while deferred and deferred[0][0] <= now:
                _, _, node = heapq.heappop(deferred)
                heapq.heappush(queue, node.index)
            if not queue:
                time.sleep(max(0.0, deferred[0][0] - now))
                continue
            node = dag.nodes[heapq.heappop(queue)]
            function, payload = payload_for(node)
            stats.degraded_tasks += 1
            for released in absorb(node, function(payload)):
                heapq.heappush(queue, released.index)

    pending_submit: List[TaskNode] = dag.start()
    rebuilds_left = max_pool_rebuilds
    futures: Dict[Any, TaskNode] = {}
    while True:                         # one iteration per pool lifetime
        futures.clear()
        try:
            with ProcessPoolExecutor(max_workers=parallel,
                                     mp_context=_pool_context()) as pool:

                def submit_pending() -> None:
                    # One at a time so a submit() that raises (broken
                    # pool) leaves the unsubmitted rest in
                    # pending_submit for the crash handler.
                    while pending_submit:
                        node = pending_submit[0]
                        function, payload = payload_for(node)
                        futures[pool.submit(function, payload)] = node
                        pending_submit.pop(0)

                submit_pending()
                while futures or deferred:
                    now = time.monotonic()
                    while deferred and deferred[0][0] <= now:
                        _, _, node = heapq.heappop(deferred)
                        pending_submit.append(node)
                    submit_pending()
                    if not futures:
                        # Everything left is waiting out a backoff.
                        time.sleep(max(0.0,
                                       deferred[0][0] - time.monotonic()))
                        continue
                    timeout = max(0.0, deferred[0][0] - now) \
                        if deferred else None
                    done, _ = wait(futures, timeout=timeout,
                                   return_when=FIRST_COMPLETED)
                    for future in done:
                        node = futures.pop(future)
                        try:
                            outcome = future.result()
                        except BrokenProcessPool:
                            # Hand the node back so the crash handler
                            # counts it as in-flight.
                            futures[future] = node
                            raise
                        except Exception as exc:
                            retry_or_fail(
                                node, f"{type(exc).__name__}: {exc}")
                            continue
                        pending_submit.extend(absorb(node, outcome))
                        submit_pending()
            break                       # fully drained
        except BrokenProcessPool:
            # Everything in flight (or queued behind the broken
            # submit) gets re-executed: on a fresh pool while the
            # rebuild budget lasts, in-process afterwards.
            crashed = sorted(set(futures.values())
                             | set(pending_submit),
                             key=lambda node: node.index)
            futures.clear()
            pending_submit = crashed
            stats.retries += len(crashed)
            if rebuilds_left > 0:
                rebuilds_left -= 1
                stats.pool_rebuilds += 1
                continue
            run_inline(pending_submit)
            break

    for node in dag.unfinished():
        # Nodes stranded by an abort that fail() already visited have
        # error rows; anything else (defensively) becomes one too.
        record_failure(node, "task was never scheduled")
    for job_index, row in enumerate(rows):
        if row is None:
            spec = sweep.jobs[job_index]
            rows[job_index] = {"workload": spec.workload,
                               "policy": spec.policy,
                               "model": spec.model,
                               "error": "job did not complete"}
    stats.wall_seconds = time.perf_counter() - start
    return rows, stats
