"""Worker-pool executor for the sweep phase-task DAG.

:func:`run_dag` drains a :class:`~repro.batch.dag.SweepDAG` on a
persistent :class:`~concurrent.futures.ProcessPoolExecutor`: every
worker serves tasks from one shared ready queue (work stealing falls
out — an idle worker takes whatever became ready, whether or not it
computed the upstream artifacts), tasks are handed out the moment
their dependencies complete, and there are no per-group barriers.
Artifacts travel between workers through the shared content-addressed
store (:mod:`repro.batch.cachestore`); a vanished object — e.g. an
eviction by a concurrent worker under ``--cache-limit-mb`` — is
treated as a miss and recomputed transitively, never raised.

Failure handling: a task that raises fails its transitive dependents
and turns the affected jobs into error rows; a dead worker
(``BrokenProcessPool``) aborts the remaining schedule the same way
instead of crashing the sweep.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..domainimpl import resolve_domain_impl
from ..isa.program import Program
from ..wcet.ait import PHASES, build_wcet_result
from ..workloads.suite import get_workload
from .cachestore import ArtifactCache, code_version_salt
from .dag import JobPlan, SweepDAG, TaskNode
from .jobs import JobSpec

# -- Worker-side state -----------------------------------------------------------
#
# Module-level memos live in each pool worker (fork workers inherit the
# parent's — empty at sweep start — copies): compiled binaries and
# executable job plans are reused across all tasks a worker serves.

_PROGRAM_MEMO: Dict[str, Program] = {}
_PLAN_MEMO: Dict[Tuple[str, str, str, Optional[str]], JobPlan] = {}
_CACHE_MEMO: Dict[Tuple[Optional[str], Optional[str], Optional[int]],
                  ArtifactCache] = {}


def clear_worker_caches() -> None:
    """Drop this process's plan/program/cache memos (benchmark cold
    runs; see :func:`repro.batch.engine.clear_process_caches`)."""
    _PROGRAM_MEMO.clear()
    _PLAN_MEMO.clear()
    _CACHE_MEMO.clear()


def _worker_cache(cache_dir: Optional[str], salt: Optional[str],
                  limit_bytes: Optional[int]) -> ArtifactCache:
    # Same normalization as engine._process_cache: the default salt
    # passed explicitly must not build a second cache instance.
    salt = salt if salt is not None else code_version_salt()
    memo_key = (cache_dir, salt, limit_bytes)
    cache = _CACHE_MEMO.get(memo_key)
    if cache is None:
        cache = ArtifactCache(cache_dir, salt=salt,
                              limit_bytes=limit_bytes)
        _CACHE_MEMO[memo_key] = cache
    return cache


def _plan_for(spec: JobSpec, domain_impl: Optional[str]) -> JobPlan:
    memo_key = (spec.workload, spec.policy, spec.model, domain_impl)
    plan = _PLAN_MEMO.get(memo_key)
    if plan is None:
        program = _PROGRAM_MEMO.get(spec.workload)
        if program is None:
            program = get_workload(spec.workload).compile()
            _PROGRAM_MEMO[spec.workload] = program
        plan = JobPlan(spec, program, domain_impl)
        _PLAN_MEMO[memo_key] = plan
    return plan


class _TaskContext:
    """Key and artifact resolution for one task execution.

    Keys are derived from dependency keys exactly as the sequential
    :class:`~repro.wcet.ait.PhaseRunner` chains them.  Artifact
    resolution is *self-healing*: a dependency artifact that should be
    in the store but is not (evicted under ``--cache-limit-mb``, or a
    corrupt object) is recomputed transitively instead of raising —
    the eviction race degrades to redundant work, never to a failure.
    """

    def __init__(self, plan: JobPlan, cache: ArtifactCache):
        self.plan = plan
        self.cache = cache
        self._keys: Dict[str, str] = {}

    def key_of(self, template: str) -> str:
        key = self._keys.get(template)
        if key is None:
            spec = self.plan.templates[template]
            dep_keys = {dep: self.key_of(dep) for dep in spec.deps}
            key = self.cache.key(spec.material(dep_keys, self.value_of))
            self._keys[template] = key
        return key

    def ensure(self, template: str) -> bool:
        """Make the template's artifact addressable in the store;
        return whether this call computed it."""
        key = self.key_of(template)
        hit, _ = self.cache.lookup(key)
        if hit:
            return False
        self._compute(template, key)
        return True

    def value_of(self, template: str) -> Any:
        key = self.key_of(template)
        hit, value = self.cache.lookup(key)
        if hit:
            return value
        return self._compute(template, key)

    def _compute(self, template: str, key: str) -> Any:
        spec = self.plan.templates[template]
        deps = {dep: self.value_of(dep) for dep in spec.deps}
        value = spec.compute(deps)
        self.cache.store(key, value)
        return value


def _transportable(task):
    """Run ``task`` but hand exceptions back as plain error payloads.

    Raising across the result pipe is not safe: an exception whose
    class does not survive a pickle round-trip (e.g. a two-argument
    ``__init__`` without a custom ``__reduce__``) blows up in the
    parent's result thread, which declares the whole *pool* broken —
    one bad workload would take every in-flight job down with it.
    A string ``{"error": ...}`` payload always pickles, so task
    failure stays a per-task event no matter what was raised.
    """
    @functools.wraps(task)
    def shielded(payload):
        start = time.perf_counter()
        try:
            return task(payload)
        except Exception as exc:
            return {"pid": os.getpid(),
                    "error": f"{type(exc).__name__}: {exc}",
                    "seconds": time.perf_counter() - start}
    return shielded


@_transportable
def _phase_task(payload: Tuple[JobSpec, str, Optional[str],
                               Optional[str], Optional[int],
                               Optional[str]]) -> dict:
    """Pool task: ensure one phase artifact exists in the store."""
    spec, template, cache_dir, salt, limit_bytes, impl = payload
    start = time.perf_counter()
    plan = _plan_for(spec, impl)
    cache = _worker_cache(cache_dir, salt, limit_bytes)
    context = _TaskContext(plan, cache)
    computed = context.ensure(template)
    return {"pid": os.getpid(), "computed": computed,
            "memo": cache.memo_stats(),
            "seconds": time.perf_counter() - start}


@_transportable
def _row_task(payload: Tuple[JobSpec, Dict[str, str], Optional[str],
                             Optional[str], Optional[int],
                             Optional[str]]) -> dict:
    """Pool task: assemble one job's result row from its (already
    computed) phase artifacts.

    ``events`` is the parent's canonical-owner hit/miss attribution
    (:meth:`repro.batch.dag.SweepDAG.row_events`), so the row matches
    a sequential sweep byte for byte outside the timing fields.
    """
    from .engine import _result_row

    spec, events, cache_dir, salt, limit_bytes, impl = payload
    start = time.perf_counter()
    plan = _plan_for(spec, impl)
    cache = _worker_cache(cache_dir, salt, limit_bytes)
    context = _TaskContext(plan, cache)
    artifacts = {}
    phase_seconds = {}
    for phase in PHASES:
        phase_start = time.perf_counter()
        artifacts[phase] = context.value_of(phase)
        phase_seconds[phase] = time.perf_counter() - phase_start
    result = build_wcet_result(plan.program, plan.config, artifacts,
                               phase_seconds, dict(events),
                               domain_impl=impl)
    row = _result_row(spec, result, time.perf_counter() - start)
    return {"pid": os.getpid(), "row": row,
            "memo": cache.memo_stats(),
            "seconds": time.perf_counter() - start}


@_transportable
def _job_task(payload: Tuple[JobSpec]) -> dict:
    """Pool task for ``use_cache=False`` sweeps: one whole job, no
    artifact transport (nothing to share without a store)."""
    from .engine import run_job

    (spec,) = payload
    start = time.perf_counter()
    row = run_job(spec, None)
    return {"pid": os.getpid(), "row": row,
            "seconds": time.perf_counter() - start}


# -- Parent-side scheduling loop -------------------------------------------------


def _pool_context():
    # Fork workers inherit the imported analysis modules, avoiding a
    # per-worker re-import; unavailable on some platforms.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


@dataclass
class SchedulerStats:
    """What the DAG scheduler did with a sweep."""

    workers: int
    phase_refs: int = 0
    unique_tasks: int = 0
    deduped_tasks: int = 0
    computed_tasks: int = 0
    cache_served_tasks: int = 0
    steals: int = 0
    wall_seconds: float = 0.0
    #: worker pid -> seconds spent executing tasks.
    worker_busy: Dict[int, float] = field(default_factory=dict)
    #: worker pid -> latest ArtifactCache.memo_stats() snapshot.
    worker_memo: Dict[int, dict] = field(default_factory=dict)

    def busy_fractions(self) -> Dict[str, float]:
        if self.wall_seconds <= 0:
            return {}
        return {str(pid): round(busy / self.wall_seconds, 4)
                for pid, busy in sorted(self.worker_busy.items())}

    def memo_summary(self) -> dict:
        """Pool-wide in-memory memo occupancy (summed over workers)."""
        return {"entries": sum(m.get("entries", 0)
                               for m in self.worker_memo.values()),
                "bytes": sum(m.get("bytes", 0)
                             for m in self.worker_memo.values()),
                "evictions": sum(m.get("evictions", 0)
                                 for m in self.worker_memo.values())}

    def as_dict(self) -> dict:
        return {"workers": self.workers,
                "phase_refs": self.phase_refs,
                "unique_tasks": self.unique_tasks,
                "deduped_tasks": self.deduped_tasks,
                "computed_tasks": self.computed_tasks,
                "cache_served_tasks": self.cache_served_tasks,
                "steals": self.steals,
                "wall_seconds": round(self.wall_seconds, 6),
                "worker_busy_fraction": self.busy_fractions(),
                "memo": self.memo_summary()}


def _node_error_row(node: TaskNode, message: str) -> dict:
    spec = node.spec
    return {"workload": spec.workload, "policy": spec.policy,
            "model": spec.model, "error": message}


def run_dag(sweep: SweepDAG, parallel: int,
            cache_dir: Optional[str] = None,
            salt: Optional[str] = None,
            limit_bytes: Optional[int] = None,
            domain_impl: Optional[str] = None
            ) -> Tuple[List[dict], SchedulerStats]:
    """Execute the sweep DAG on a pool of ``parallel`` workers.

    Returns rows in job order (error rows for failed jobs) and the
    scheduler's statistics.
    """
    start = time.perf_counter()
    impl = resolve_domain_impl(domain_impl)
    dag = sweep.dag
    stats = SchedulerStats(workers=parallel, **sweep.stats())
    rows: List[Optional[dict]] = [None] * len(sweep.jobs)
    for job_index, message in sweep.build_errors.items():
        spec = sweep.jobs[job_index]
        rows[job_index] = {"workload": spec.workload,
                           "policy": spec.policy, "model": spec.model,
                           "error": message}

    def job_index_of(node: TaskNode) -> Optional[int]:
        if node.kind in ("row", "job"):
            return node.identity[1]
        return None

    def payload_for(node: TaskNode):
        if node.kind == "job":
            return _job_task, (node.spec,)
        if node.kind == "row":
            events = sweep.row_events(job_index_of(node))
            return _row_task, (node.spec, events, cache_dir, salt,
                               limit_bytes, impl)
        return _phase_task, (node.spec, node.template, cache_dir, salt,
                             limit_bytes, impl)

    def record_failure(node: TaskNode, message: str) -> None:
        for failed in dag.fail(node, message):
            failed_index = job_index_of(failed)
            if failed_index is not None and rows[failed_index] is None:
                rows[failed_index] = _node_error_row(failed,
                                                     failed.error)

    futures: Dict[Any, TaskNode] = {}
    with ProcessPoolExecutor(max_workers=parallel,
                             mp_context=_pool_context()) as pool:

        def submit(nodes: List[TaskNode]) -> None:
            for node in nodes:
                function, payload = payload_for(node)
                futures[pool.submit(function, payload)] = node

        try:
            submit(dag.start())
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    node = futures.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception as exc:
                        record_failure(
                            node, f"{type(exc).__name__}: {exc}")
                        continue
                    pid = outcome["pid"]
                    seconds = outcome["seconds"]
                    stats.worker_busy[pid] = \
                        stats.worker_busy.get(pid, 0.0) + seconds
                    memo = outcome.get("memo")
                    if memo is not None:
                        stats.worker_memo[pid] = memo
                    error = outcome.get("error")
                    if error is not None:
                        record_failure(node, error)
                        continue
                    if node.deps:
                        handoff = max(node.deps,
                                      key=lambda dep:
                                      dep.finish_order or 0)
                        if handoff.worker is not None \
                                and handoff.worker != pid:
                            stats.steals += 1
                    computed = outcome.get("computed")
                    if node.kind in ("phase", "annotate"):
                        if computed:
                            stats.computed_tasks += 1
                        else:
                            stats.cache_served_tasks += 1
                    else:
                        rows[job_index_of(node)] = outcome["row"]
                    submit(dag.complete(node, computed=computed,
                                        seconds=seconds, worker=pid))
        except BrokenProcessPool as exc:
            message = (f"worker pool died: {type(exc).__name__}: "
                       f"{exc}" if str(exc) else
                       f"worker pool died: {type(exc).__name__}")
            for future in list(futures):
                futures.pop(future)
            for node in dag.unfinished():
                if node.state != "failed":
                    record_failure(node, message)

    for node in dag.unfinished():
        # Nodes stranded by an abort that fail() already visited have
        # error rows; anything else (defensively) becomes one too.
        record_failure(node, "task was never scheduled")
    for job_index, row in enumerate(rows):
        if row is None:
            spec = sweep.jobs[job_index]
            rows[job_index] = {"workload": spec.workload,
                               "policy": spec.policy,
                               "model": spec.model,
                               "error": "job did not complete"}
    stats.wall_seconds = time.perf_counter() - start
    return rows, stats
