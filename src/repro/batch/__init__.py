"""Parallel sweep orchestration with content-addressed artifact caching.

The production layer over :func:`repro.wcet.ait.analyze_wcet`: expand
an analysis matrix (workloads x context policies x pipeline models)
into jobs, schedule them as a deduplicated DAG of phase tasks on a
worker pool, and never recompute a phase artifact whose inputs haven't
changed.  CI, the perf harness, the workload suite, and the
``repro batch`` CLI all drive this one engine.
"""

from .cachestore import ArtifactCache, code_version_salt
from .dag import (DAGCycleError, JobPlan, SweepDAG, TaskDAG, TaskNode,
                  build_sweep_dag)
from .engine import (SweepResult, clear_process_caches, run_job,
                     run_sweep)
from .golden import (compare_rows, flatten_golden, golden_from_rows,
                     load_golden, merge_golden, save_golden)
from .jobs import ALL_POLICIES, JobSpec, expand_matrix, parse_policy
from .scheduler import SchedulerStats, run_dag

__all__ = [
    "ALL_POLICIES", "ArtifactCache", "DAGCycleError", "JobPlan",
    "JobSpec", "SchedulerStats", "SweepDAG", "SweepResult", "TaskDAG",
    "TaskNode", "build_sweep_dag", "clear_process_caches",
    "code_version_salt", "compare_rows", "expand_matrix",
    "flatten_golden", "golden_from_rows", "load_golden",
    "merge_golden", "parse_policy", "run_dag", "run_job", "run_sweep",
    "save_golden",
]
