"""Parallel sweep engine over the WCET analysis matrix.

:func:`run_sweep` executes a list of :class:`~repro.batch.jobs.JobSpec`
points — sequentially, or as a deduplicated phase-task DAG on a worker
pool (:mod:`repro.batch.dag` + :mod:`repro.batch.scheduler`) — and
returns their results in *job order* regardless of completion order,
so sweep output is deterministic under any ``--jobs`` setting.  Each
job runs the full aiT pipeline through the phase-level artifact cache
(:mod:`repro.batch.cachestore`), and its result row records the bound,
per-phase wall clock, solver work counters, cache classification
counts, and the cache hit/miss provenance of every phase.

Rows are plain JSON-able dicts; :meth:`SweepResult.write_jsonl` emits
them as JSON lines, one job per line, in job order.
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.program import Program
from ..wcet.ait import WCETResult
from ..workloads.suite import analyze_workload, get_workload
from . import scheduler as dag_scheduler
from .cachestore import ArtifactCache, code_version_salt
from .dag import build_sweep_dag
from .jobs import JobSpec

#: Per-process memo of compiled workload binaries: a sweep analyses the
#: same workload under several (policy, model) points, and compilation
#: is identical for all of them.
_PROGRAM_MEMO: Dict[str, Program] = {}

#: Per-process artifact cache, keyed by (root, salt, limit) so pool
#: workers reuse one cache (and its in-memory object memo) across
#: their jobs.
_CACHE_MEMO: Dict[Tuple[Optional[str], Optional[str], Optional[int]],
                  ArtifactCache] = {}


def clear_process_caches() -> None:
    """Drop this process's compiled-program and artifact-cache memos.

    Benchmark harnesses call this between measured sweeps so a "cold"
    run really is cold, and so artifacts of deleted temporary cache
    directories don't stay pinned in memory for the process lifetime.
    """
    _PROGRAM_MEMO.clear()
    _CACHE_MEMO.clear()
    dag_scheduler.clear_worker_caches()


def _process_cache(cache_dir: Optional[str], salt: Optional[str],
                   use_cache: bool,
                   limit_bytes: Optional[int] = None
                   ) -> Optional[ArtifactCache]:
    if not use_cache:
        return None
    # Normalize before keying: salt=None means code_version_salt(), so
    # passing the default explicitly must address the same cache (and
    # the same hit/miss stats), not build a twin with a split memo.
    salt = salt if salt is not None else code_version_salt()
    memo_key = (cache_dir, salt, limit_bytes)
    cache = _CACHE_MEMO.get(memo_key)
    if cache is None:
        cache = ArtifactCache(cache_dir, salt=salt,
                              limit_bytes=limit_bytes)
        _CACHE_MEMO[memo_key] = cache
    return cache


def _classification_counts(result) -> Dict[str, int]:
    stats = result.stats
    return {"always_hit": stats.always_hit,
            "always_miss": stats.always_miss,
            "persistent": stats.persistent,
            "not_classified": stats.not_classified}


def _result_row(spec: JobSpec, result: WCETResult,
                wall_seconds: float,
                compile_seconds: float = 0.0) -> dict:
    hits = sum(1 for event in result.cache_events.values()
               if event == "hit")
    misses = sum(1 for event in result.cache_events.values()
                 if event == "miss")
    return {
        "workload": spec.workload,
        "policy": spec.policy,
        "model": spec.model,
        "wcet_cycles": result.wcet_cycles,
        "lp_bound": result.path.lp_bound,
        "integral": result.path.integral,
        "graph": {"nodes": result.graph.node_count(),
                  "edges": result.graph.edge_count(),
                  "contexts": len(result.graph.contexts())},
        "icache": _classification_counts(result.icache),
        "dcache": _classification_counts(result.dcache),
        "solver_stats": {name: stats.as_dict()
                         for name, stats in result.solver_stats.items()},
        "phase_seconds": {phase: round(seconds, 6)
                          for phase, seconds
                          in result.phase_seconds.items()},
        "wall_seconds": round(wall_seconds, 6),
        "compile_seconds": round(compile_seconds, 6),
        "cache": {"events": dict(result.cache_events),
                  "hits": hits, "misses": misses},
    }


def run_job(spec: JobSpec, cache: Optional[ArtifactCache]) -> dict:
    """Run one matrix point and return its JSON-able result row.

    Compilation happens *outside* the analysis timer: the compiled
    binary is memoised per workload, so charging it to whichever
    (policy, model) point happens to arrive first would inflate that
    row's ``wall_seconds`` nondeterministically.  The row reports it
    separately as ``compile_seconds`` (0.0 on a memo hit).
    """
    workload = get_workload(spec.workload)
    program = _PROGRAM_MEMO.get(spec.workload)
    compile_seconds = 0.0
    if program is None:
        compile_start = time.perf_counter()
        program = workload.compile()
        compile_seconds = time.perf_counter() - compile_start
        _PROGRAM_MEMO[spec.workload] = program
    start = time.perf_counter()
    result = analyze_workload(workload, program=program,
                              context_policy=spec.policy_object(),
                              pipeline_model=spec.model,
                              phase_cache=cache)
    return _result_row(spec, result, time.perf_counter() - start,
                       compile_seconds=compile_seconds)


def _error_row(spec: JobSpec, exc: Exception) -> dict:
    return {"workload": spec.workload, "policy": spec.policy,
            "model": spec.model,
            "error": f"{type(exc).__name__}: {exc}"}


@dataclass
class SweepResult:
    """Outcome of one sweep: rows in job order plus aggregate stats."""

    jobs: List[JobSpec]
    rows: List[dict]
    wall_seconds: float
    parallel: int
    cache_dir: Optional[str] = None
    used_cache: bool = True
    errors: List[str] = field(default_factory=list)
    #: DAG scheduler statistics (parallel sweeps only):
    #: :meth:`repro.batch.scheduler.SchedulerStats.as_dict`.
    scheduler: Optional[dict] = None

    @property
    def cache_hits(self) -> int:
        return sum(row.get("cache", {}).get("hits", 0)
                   for row in self.rows)

    @property
    def cache_misses(self) -> int:
        return sum(row.get("cache", {}).get("misses", 0)
                   for row in self.rows)

    def hit_ratio(self) -> float:
        """Fraction of phase executions served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def bounds(self) -> Dict[str, int]:
        return {f"{row['workload']}/{row['policy']}/{row['model']}":
                row["wcet_cycles"]
                for row in self.rows if "error" not in row}

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            for row in self.rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")


def run_sweep(jobs: List[JobSpec],
              parallel: int = 1,
              cache_dir: Optional[str] = None,
              use_cache: bool = True,
              salt: Optional[str] = None,
              jsonl_path: Optional[str] = None,
              cache_limit_mb: Optional[float] = None,
              max_task_retries: int = dag_scheduler.DEFAULT_TASK_RETRIES,
              max_pool_rebuilds: int =
              dag_scheduler.DEFAULT_POOL_REBUILDS) -> SweepResult:
    """Run every job of the sweep and collect rows in job order.

    ``parallel`` > 1 schedules the sweep as a deduplicated phase-task
    DAG (:func:`repro.batch.dag.build_sweep_dag`) on a persistent
    worker pool: one task per distinct phase cache key across all
    jobs, handed out as dependencies complete.  Workers exchange
    artifacts through the shared content-addressed store — a given
    ``cache_dir``, or a temporary spill directory when none is given
    (so an anonymous parallel sweep still starts cold, like the
    sequential in-memory cache).  With ``use_cache=False`` there are
    no addressable artifacts to share, so each job becomes one pool
    task.  ``salt`` overrides the code-version salt (tests only).
    ``cache_limit_mb`` bounds the on-disk store: after each write the
    least-recently-used objects are evicted until the store fits;
    workers treat objects evicted under them as misses and recompute.
    ``max_task_retries`` / ``max_pool_rebuilds`` bound the DAG
    scheduler's fault tolerance (task retry with backoff, dead-pool
    rebuild, then degraded in-process execution; see
    :func:`repro.batch.scheduler.run_dag`).
    """
    start = time.perf_counter()
    limit_bytes = int(cache_limit_mb * 1024 * 1024) \
        if cache_limit_mb is not None else None
    scheduler_stats = None
    if parallel <= 1:
        rows: List[Optional[dict]] = [None] * len(jobs)
        cache = _process_cache(cache_dir, salt, use_cache, limit_bytes) \
            if cache_dir is not None else \
            (ArtifactCache(None, salt=salt) if use_cache else None)
        for index, spec in enumerate(jobs):
            try:
                rows[index] = run_job(spec, cache)
            except Exception as exc:
                rows[index] = _error_row(spec, exc)
    else:
        sweep_dag = build_sweep_dag(jobs, use_cache=use_cache)
        spill = None
        store_dir = cache_dir
        if use_cache and store_dir is None:
            spill = tempfile.TemporaryDirectory(prefix="repro-dag-")
            store_dir = spill.name
        try:
            rows, stats = dag_scheduler.run_dag(
                sweep_dag, parallel=parallel, cache_dir=store_dir,
                salt=salt, limit_bytes=limit_bytes,
                max_task_retries=max_task_retries,
                max_pool_rebuilds=max_pool_rebuilds)
        finally:
            if spill is not None:
                spill.cleanup()
        scheduler_stats = stats.as_dict()

    errors = [f"{row['workload']}/{row['policy']}/{row['model']}: "
              f"{row['error']}" for row in rows if "error" in row]
    result = SweepResult(jobs=list(jobs), rows=rows,
                         wall_seconds=time.perf_counter() - start,
                         parallel=parallel, cache_dir=cache_dir,
                         used_cache=use_cache, errors=errors,
                         scheduler=scheduler_stats)
    if jsonl_path:
        result.write_jsonl(jsonl_path)
    return result
