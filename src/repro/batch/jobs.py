"""Job specifications and matrix expansion for the sweep engine.

A *job* is one point of the analysis cross-product: (workload, context
policy, pipeline model).  The CLI and programmatic callers describe a
sweep with a compact matrix string::

    WORKLOADS:POLICIES:MODELS

where each component is a comma-separated list or ``all`` (omitted
trailing components default to ``all``).  Policy tokens parameterise
the context-sensitivity schemes of :mod:`repro.cfg.contexts`:

* ``full`` — unbounded call strings,
* ``klimited`` / ``klimited@K`` — call strings truncated to K sites
  (default 2),
* ``vivu`` / ``vivu@PEEL`` / ``vivu@PEEL@K`` — VIVU loop peeling
  (default peel 1), optionally combined with k-limited call strings.

Examples::

    all:all:all                      the full 19 x 3 x 2 matrix
    fibcall,bs:full,vivu@2:krisc5    4 jobs
    all:vivu                         all workloads, VIVU, both models
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cache.config import PIPELINE_MODELS
from ..cfg.contexts import ContextPolicy, make_policy
from ..workloads.suite import workload_names

#: Policy tokens expanded by ``all`` (the sweep the bit-identity
#: claims of the golden-bounds suite are stated over).
ALL_POLICIES = ("full", "klimited", "vivu")


def parse_policy(token: str) -> ContextPolicy:
    """Build a context policy from a matrix token (see module doc)."""
    name, _, params = token.partition("@")
    values = [part for part in params.split("@") if part] if params else []
    try:
        numbers = [int(value) for value in values]
    except ValueError:
        raise ValueError(f"bad policy token {token!r}: "
                         "parameters must be integers") from None
    if name == "full":
        if numbers:
            raise ValueError(f"policy 'full' takes no parameters "
                             f"(got {token!r})")
        return make_policy("full")
    if name == "klimited":
        if len(numbers) > 1:
            raise ValueError(f"policy 'klimited' takes at most one "
                             f"parameter (got {token!r})")
        return make_policy("klimited", k=numbers[0] if numbers else None)
    if name == "vivu":
        if len(numbers) > 2:
            raise ValueError(f"policy 'vivu' takes at most two "
                             f"parameters (got {token!r})")
        peel = numbers[0] if numbers else 1
        k = numbers[1] if len(numbers) > 1 else None
        return make_policy("vivu", k=k, peel=peel)
    raise ValueError(f"unknown policy token {token!r}; expected "
                     "full, klimited[@K], or vivu[@PEEL[@K]]")


@dataclass(frozen=True)
class JobSpec:
    """One analysis job of a sweep, as plain picklable strings."""

    workload: str
    policy: str
    model: str

    @property
    def job_id(self) -> str:
        return f"{self.workload}/{self.policy}/{self.model}"

    def policy_object(self) -> ContextPolicy:
        return parse_policy(self.policy)


def _split(component: Optional[str], all_values: Sequence[str],
           what: str) -> List[str]:
    if component is None or component in ("", "all"):
        return list(all_values)
    tokens = [item.strip() for item in component.split(",")
              if item.strip()]
    if "all" in tokens:
        raise ValueError(
            f"'all' cannot be combined with explicit {what} "
            f"(got {component!r}); use 'all' alone for every "
            f"{what.rstrip('s')}")
    # Dedupe preserving first occurrence: repeated tokens would yield
    # duplicate JobSpecs, which double-write golden rows and skew the
    # DAG's canonical-owner hit/miss attribution.
    return list(dict.fromkeys(tokens))


def expand_matrix(spec: str = "all:all:all") -> List[JobSpec]:
    """Expand a matrix string into an ordered job list.

    Ordering is deterministic — workloads outermost (sorted when
    ``all``), then policies, then models — and models iterate
    innermost deliberately: in a sequential cold sweep each (workload,
    policy) pair then computes its task graph, value, loop-bound, and
    cache artifacts once and serves the second model from the cache.
    """
    parts = spec.split(":")
    if len(parts) > 3:
        raise ValueError(f"bad matrix {spec!r}: expected "
                         "WORKLOADS:POLICIES:MODELS")
    parts += [None] * (3 - len(parts))
    workloads = _split(parts[0], workload_names(), "workloads")
    policies = _split(parts[1], ALL_POLICIES, "policies")
    models = _split(parts[2], PIPELINE_MODELS, "models")

    available = set(workload_names())
    for workload in workloads:
        if workload not in available:
            raise ValueError(f"unknown workload {workload!r} in matrix "
                             f"{spec!r}")
    for policy in policies:
        parse_policy(policy)
    for model in models:
        if model not in PIPELINE_MODELS:
            raise ValueError(f"unknown pipeline model {model!r} in "
                             f"matrix {spec!r}")

    return [JobSpec(workload, policy, model)
            for workload in workloads
            for policy in policies
            for model in models]
