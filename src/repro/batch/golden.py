"""Golden-bounds bookkeeping for sweeps.

The repository checks in ``tests/golden_bounds.json`` — the WCET bound
of every (workload x policy x model) point — and both the regression
suite and the sweep CLI compare fresh results against it bit for bit.
The file is nested ``{workload: {policy: {model: bound}}}`` with sorted
keys, so diffs stay reviewable.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

#: Nested golden mapping: workload -> policy -> model -> bound.
GoldenBounds = Dict[str, Dict[str, Dict[str, int]]]


def load_golden(path: str) -> GoldenBounds:
    with open(path) as handle:
        return json.load(handle)


def save_golden(path: str, golden: GoldenBounds) -> None:
    with open(path, "w") as handle:
        json.dump(golden, handle, indent=1, sort_keys=True)
        handle.write("\n")


def golden_from_rows(rows: Iterable[dict]) -> GoldenBounds:
    """Build the nested golden mapping from sweep result rows.

    Refuses error rows: a golden set regenerated from a sweep with
    failed jobs would silently drop points.
    """
    golden: GoldenBounds = {}
    for row in rows:
        if "error" in row:
            raise ValueError(
                f"cannot record golden bounds from a failed job "
                f"{row['workload']}/{row['policy']}/{row['model']}: "
                f"{row['error']}")
        golden.setdefault(row["workload"], {}) \
              .setdefault(row["policy"], {})[row["model"]] = \
            row["wcet_cycles"]
    return golden


def merge_golden(base: GoldenBounds, update: GoldenBounds
                 ) -> GoldenBounds:
    """``base`` with ``update``'s points replacing/extending it.

    Lets a partial-matrix sweep refresh only its own points instead of
    truncating the checked-in golden set to whatever was swept.
    """
    merged: GoldenBounds = {
        workload: {policy: dict(models)
                   for policy, models in policies.items()}
        for workload, policies in base.items()}
    for workload, policies in update.items():
        for policy, models in policies.items():
            merged.setdefault(workload, {}) \
                  .setdefault(policy, {}).update(models)
    return merged


def flatten_golden(golden: GoldenBounds) -> Dict[Tuple[str, str, str], int]:
    return {(workload, policy, model): bound
            for workload, policies in golden.items()
            for policy, models in policies.items()
            for model, bound in models.items()}


def compare_rows(rows: Iterable[dict], golden: GoldenBounds) -> List[str]:
    """Bit-identity check of sweep rows against the golden bounds.

    Returns human-readable mismatch descriptions (empty = identical).
    Rows whose point is absent from the golden file are mismatches too
    — a grown matrix must regenerate the golden set deliberately.
    """
    expected = flatten_golden(golden)
    mismatches = []
    for row in rows:
        if "error" in row:
            mismatches.append(f"{row['workload']}/{row['policy']}/"
                              f"{row['model']}: job failed: "
                              f"{row['error']}")
            continue
        point = (row["workload"], row["policy"], row["model"])
        bound = expected.get(point)
        if bound is None:
            mismatches.append(
                "/".join(point) + ": no golden bound recorded "
                "(regenerate: pytest tests/test_golden_bounds.py "
                "--update-golden, or repro batch --write-golden)")
        elif bound != row["wcet_cycles"]:
            mismatches.append(
                "/".join(point) + f": bound {row['wcet_cycles']} != "
                f"golden {bound}")
    return mismatches
