"""The sweep's phase-task DAG: one task per distinct phase artifact.

PR 5 made every analysis phase an individually *cacheable* step; this
module makes each one an individually *schedulable* task.  A sweep of
(workload x policy x model) jobs expands to a DAG with one node per
distinct phase artifact across **all** jobs — both pipeline models
share a (workload, policy)'s cfg/value/loopbounds/icache/dcache
artifacts, every job of an annotated workload shares its
discover-then-annotate prefix, and a job's phases are chained by
dependency edges — so a 114-point matrix collapses from ~800 phase
executions to a few hundred unique tasks that a worker pool can drain
with no per-group barriers.

Two views of the same plan live here:

* :func:`build_sweep_dag` — the *parent-side* structural view: nodes,
  edges, dedup counts, and a deterministic ready queue.  Task identity
  is structural (phase name + the exact inputs that feed its cache-key
  material), which coincides with cache-key identity without having to
  compile or analyze anything in the parent.
* :class:`JobPlan` — the *worker-side* executable view: the same task
  set for one job, with the real key-material and compute functions
  from :func:`repro.wcet.ait.phase_plan`, so DAG tasks address exactly
  the artifacts a sequential ``analyze_workload`` run would.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..cache.config import PIPELINE_MODELS, MachineConfig
from ..cfg.contexts import DEFAULT_POLICY
from ..domainimpl import resolve_domain_impl
from ..isa.program import Program
from ..wcet.ait import (PHASES, PhaseTask, material_loopbounds, phase_plan)
from ..analysis.loopbounds import analyze_loop_bounds
from ..workloads.suite import (Workload, derive_manual_bounds,
                               get_workload)
from .jobs import JobSpec, parse_policy

#: The discovery prefix of the annotate workflow, in execution order.
DISCOVERY_PHASES = ("discover:cfg", "discover:value",
                    "discover:loopbounds", "annotate")


class DAGCycleError(ValueError):
    """The task graph is not acyclic."""


# -- Parent-side structural DAG --------------------------------------------------


@dataclass
class TaskNode:
    """One schedulable task: a distinct phase artifact (or a per-job
    row-assembly / whole-job task)."""

    index: int                      #: build order; doubles as priority
    identity: Tuple                 #: structural dedup identity
    label: str                      #: human-readable, e.g. "bs/full:value"
    kind: str                       #: "phase" | "annotate" | "row" | "job"
    spec: JobSpec                   #: a job whose plan contains the task
    template: str                   #: template name within that job's plan
    deps: List["TaskNode"] = field(default_factory=list)
    dependents: List["TaskNode"] = field(default_factory=list)
    #: Every (job index, template name) that references this node, in
    #: sequential sweep order.  ``refs[0]`` is the canonical owner used
    #: to attribute hit/miss provenance deterministically.
    refs: List[Tuple[int, str]] = field(default_factory=list)

    # Runtime state, maintained by TaskDAG's scheduling methods.
    state: str = "pending"          #: pending|ready|running|done|failed
    pending: int = 0                #: unfinished dependency count
    computed: Optional[bool] = None  #: ran compute (vs cache-served)
    seconds: float = 0.0
    worker: Optional[int] = None    #: pid of the executing worker
    finish_order: Optional[int] = None
    error: Optional[str] = None

    def __hash__(self):
        return self.index

    def __repr__(self):
        return f"<TaskNode {self.index} {self.label} {self.state}>"


class TaskDAG:
    """A deduplicated task graph plus its scheduling state machine.

    Nodes are added through :meth:`add_node`, which returns the
    existing node when the structural ``identity`` was seen before —
    that is the dedup.  :meth:`validate` rejects cycles (they cannot
    arise from :func:`build_sweep_dag`, but :meth:`add_edge` lets
    callers — and tests — wire arbitrary graphs).  The ready queue is
    a min-heap over node build order, so the dispatch order of
    simultaneously-ready tasks is deterministic.
    """

    def __init__(self):
        self.nodes: List[TaskNode] = []
        self._by_identity: Dict[Tuple, TaskNode] = {}
        self._ready: List[int] = []
        self._started = False
        self._finished = 0
        #: Total add_node references (dedup hits included), row/job
        #: tasks excluded: the "phase executions" a sequential sweep
        #: would issue.
        self.phase_refs = 0

    # -- Construction -------------------------------------------------------

    def add_node(self, identity: Tuple, label: str, kind: str,
                 spec: JobSpec, template: str,
                 deps: Sequence[TaskNode] = (),
                 job_index: int = 0) -> TaskNode:
        if kind in ("phase", "annotate"):
            self.phase_refs += 1
        node = self._by_identity.get(identity)
        if node is None:
            node = TaskNode(index=len(self.nodes), identity=identity,
                            label=label, kind=kind, spec=spec,
                            template=template)
            self.nodes.append(node)
            self._by_identity[identity] = node
            for dep in dict.fromkeys(deps):
                self.add_edge(dep, node)
        node.refs.append((job_index, template))
        return node

    def add_edge(self, dep: TaskNode, node: TaskNode) -> None:
        """``node`` cannot start before ``dep`` finished."""
        if self._started:
            raise RuntimeError("cannot grow a DAG after start()")
        node.deps.append(dep)
        dep.dependents.append(node)

    @property
    def unique_tasks(self) -> int:
        return sum(1 for node in self.nodes
                   if node.kind in ("phase", "annotate"))

    @property
    def deduped_tasks(self) -> int:
        return self.phase_refs - self.unique_tasks

    def validate(self) -> None:
        """Raise :class:`DAGCycleError` unless the graph is acyclic
        (Kahn's algorithm)."""
        pending = {node.index: len(set(dep.index for dep in node.deps))
                   for node in self.nodes}
        queue = [index for index, count in pending.items() if count == 0]
        seen = 0
        while queue:
            index = queue.pop()
            seen += 1
            for dependent in self.nodes[index].dependents:
                pending[dependent.index] -= 1
                if pending[dependent.index] == 0:
                    queue.append(dependent.index)
        if seen != len(self.nodes):
            stuck = sorted(label
                           for label, count in
                           ((node.label, pending[node.index])
                            for node in self.nodes) if count > 0)
            raise DAGCycleError(
                f"task graph has a cycle through: {', '.join(stuck)}")

    # -- Scheduling state machine -------------------------------------------

    def start(self) -> List[TaskNode]:
        """Validate and return the initially-ready tasks in priority
        (build) order."""
        self.validate()
        self._started = True
        ready = []
        for node in self.nodes:
            node.pending = len(set(dep.index for dep in node.deps))
            if node.pending == 0:
                node.state = "ready"
                ready.append(node)
        for node in ready:
            heapq.heappush(self._ready, node.index)
        return self.pop_ready(len(ready))

    def pop_ready(self, limit: Optional[int] = None) -> List[TaskNode]:
        """Pop up to ``limit`` ready tasks, lowest build index first."""
        popped = []
        while self._ready and (limit is None or len(popped) < limit):
            node = self.nodes[heapq.heappop(self._ready)]
            node.state = "running"
            popped.append(node)
        return popped

    def complete(self, node: TaskNode, computed: Optional[bool] = None,
                 seconds: float = 0.0,
                 worker: Optional[int] = None) -> List[TaskNode]:
        """Mark ``node`` done; newly-ready dependents join the queue."""
        node.state = "done"
        node.computed = computed
        node.seconds = seconds
        node.worker = worker
        node.finish_order = self._finished
        self._finished += 1
        released = []
        for dependent in dict.fromkeys(node.dependents):
            dependent.pending -= 1
            if dependent.pending == 0 and dependent.state == "pending":
                dependent.state = "ready"
                heapq.heappush(self._ready, dependent.index)
                released.append(dependent)
        return released

    def fail(self, node: TaskNode, error: str) -> List[TaskNode]:
        """Mark ``node`` failed and cascade to every transitive
        dependent; returns all newly-failed nodes (``node`` first)."""
        failed = []
        stack = [(node, error)]
        while stack:
            current, message = stack.pop()
            if current.state == "failed":
                continue
            current.state = "failed"
            current.error = message
            failed.append(current)
            downstream = f"upstream task {current.label} failed: {message}" \
                if current is node else message
            for dependent in current.dependents:
                stack.append((dependent, downstream))
        return failed

    def unfinished(self) -> List[TaskNode]:
        return [node for node in self.nodes
                if node.state not in ("done", "failed")]


@dataclass
class SweepDAG:
    """The deduplicated task DAG of one sweep."""

    jobs: List[JobSpec]
    dag: TaskDAG
    #: Per job: the row-assembly (or whole-job) node, or ``None`` when
    #: the job failed to plan (unknown workload/policy/model).
    row_nodes: List[Optional[TaskNode]]
    #: Per job: template name -> main-chain phase node.
    job_phase_nodes: List[Dict[str, TaskNode]]
    #: job index -> plan-time error message.
    build_errors: Dict[int, str]

    def stats(self) -> Dict[str, int]:
        return {"phase_refs": self.dag.phase_refs,
                "unique_tasks": self.dag.unique_tasks,
                "deduped_tasks": self.dag.deduped_tasks}

    def row_events(self, job_index: int) -> Dict[str, str]:
        """Deterministic per-phase cache provenance for one job's row.

        Mirrors what a *sequential* sweep records: a phase is a "miss"
        exactly when this job's main-chain reference is the task's
        first reference in sweep order AND the task actually computed
        (rather than being served from a pre-existing store), and a
        "hit" otherwise.  Scheduling order cannot change it, so rows
        are byte-identical at any worker count.
        """
        events = {}
        for phase in PHASES:
            node = self.job_phase_nodes[job_index].get(phase)
            if node is None:
                continue
            owns = node.refs and node.refs[0] == (job_index, phase)
            events[phase] = "miss" if owns and node.computed else "hit"
        return events


def _job_identities(workload: Workload, policy_desc: str, model: str,
                    impl: str) -> List[Tuple[str, Tuple, Tuple[str, ...]]]:
    """The (template, identity, dep templates) triples of one job's
    plan, in sequential execution order.

    The identity tuples are chosen so that two templates coincide
    exactly when their cache-key materials would: every input that
    feeds the material either appears in the tuple or is a pure
    function of an input that does (e.g. a workload's memory-range
    annotations are derived from its name).
    """
    name = workload.name
    annotated = bool(workload.manual_bounds_in_order)
    full_desc = DEFAULT_POLICY.describe()
    entries: List[Tuple[str, Tuple, Tuple[str, ...]]] = []
    if annotated:
        entries += [
            ("discover:cfg", ("cfg", name, full_desc), ()),
            ("discover:value", ("value", name, full_desc, impl),
             ("discover:cfg",)),
            ("discover:loopbounds",
             ("loopbounds", name, full_desc, impl, False),
             ("discover:value",)),
            ("annotate", ("annotate", name, impl),
             ("discover:loopbounds",)),
        ]
    entries += [
        ("cfg", ("cfg", name, policy_desc), ()),
        ("value", ("value", name, policy_desc, impl), ("cfg",)),
        ("loopbounds",
         ("loopbounds", name, policy_desc, impl, annotated),
         ("value", "annotate") if annotated else ("value",)),
        ("icache", ("icache", name, policy_desc, impl), ("cfg",)),
        ("dcache", ("dcache", name, policy_desc, impl),
         ("cfg", "value")),
        ("pipeline", ("pipeline", name, policy_desc, impl, model),
         ("cfg", "icache", "dcache")),
        ("path", ("path", name, policy_desc, impl, model, annotated),
         ("cfg", "pipeline", "loopbounds", "value")),
    ]
    return entries


def build_sweep_dag(jobs: Sequence[JobSpec], use_cache: bool = True,
                    domain_impl: Optional[str] = None) -> SweepDAG:
    """Expand a job list into the deduplicated phase-task DAG.

    With ``use_cache=False`` there is no artifact transport between
    tasks, so each job degrades to a single whole-job node (still
    pool-scheduled, just without cross-job sharing).  Jobs that cannot
    be planned (unknown workload, bad policy/model token) become
    ``build_errors`` entries instead of raising, so one bad point
    cannot take down a sweep.
    """
    impl = resolve_domain_impl(domain_impl)
    dag = TaskDAG()
    row_nodes: List[Optional[TaskNode]] = []
    job_phase_nodes: List[Dict[str, TaskNode]] = []
    build_errors: Dict[int, str] = {}
    for job_index, spec in enumerate(jobs):
        job_phase_nodes.append({})
        if not use_cache:
            row_nodes.append(dag.add_node(
                ("job", job_index), f"{spec.job_id}:job", "job", spec,
                "job", (), job_index))
            continue
        try:
            workload = get_workload(spec.workload)
            policy_desc = parse_policy(spec.policy).describe()
            if spec.model not in PIPELINE_MODELS:
                raise ValueError(
                    f"unknown pipeline model {spec.model!r}")
        except Exception as exc:
            build_errors[job_index] = f"{type(exc).__name__}: {exc}"
            row_nodes.append(None)
            continue
        by_template: Dict[str, TaskNode] = {}
        for template, identity, dep_names in _job_identities(
                workload, policy_desc, spec.model, impl):
            kind = "annotate" if template == "annotate" else "phase"
            node = dag.add_node(
                identity, f"{spec.workload}/{spec.policy}:{template}",
                kind, spec, template,
                [by_template[dep] for dep in dep_names], job_index)
            by_template[template] = node
        job_phase_nodes[job_index] = {phase: by_template[phase]
                                      for phase in PHASES}
        row_nodes.append(dag.add_node(
            ("row", job_index), f"{spec.job_id}:row", "row", spec,
            "row", [by_template[phase] for phase in PHASES], job_index))
    return SweepDAG(list(jobs), dag, row_nodes, job_phase_nodes,
                    build_errors)


# -- Worker-side executable plans ------------------------------------------------


@dataclass(frozen=True)
class ExecTemplate:
    """Executable form of one task template: key material from dep
    keys (plus, for the annotated loop-bound phase, small dep
    *values*), and the compute function over dep artifacts."""

    name: str
    deps: Tuple[str, ...]
    #: (dep template -> key, fetch(dep template) -> artifact) -> material
    material: Callable[[Mapping[str, str], Callable[[str], Any]], str]
    compute: Callable[[Mapping[str, Any]], Any]


def _wrap_phase(template: str, prefix: str, task: PhaseTask
                ) -> ExecTemplate:
    deps = tuple(prefix + dep for dep in task.deps)

    def material(keys, fetch):
        return task.material({dep: keys[prefix + dep]
                              for dep in task.deps})

    def compute(dep_values):
        return task.compute({dep: dep_values[prefix + dep]
                             for dep in task.deps})

    return ExecTemplate(template, deps, material, compute)


class JobPlan:
    """Worker-side plan of one job: every template of
    :func:`_job_identities`, with real materials and computes.

    Materials are built from the exact same
    :func:`repro.wcet.ait.phase_plan` descriptors the sequential
    pipeline runs, so DAG-computed artifacts live under the same cache
    keys a plain ``analyze_workload`` would read and write.
    """

    def __init__(self, spec: JobSpec, program: Program,
                 domain_impl: Optional[str] = None):
        self.spec = spec
        self.program = program
        self.workload = get_workload(spec.workload)
        self.config = MachineConfig.default().with_model(spec.model)
        memory_ranges = self.workload.memory_ranges(program)
        annotated = bool(self.workload.manual_bounds_in_order)
        self.templates: Dict[str, ExecTemplate] = {}

        if annotated:
            discovery = phase_plan(program, memory_ranges=memory_ranges,
                                   domain_impl=domain_impl)
            for task in discovery[:3]:          # cfg, value, loopbounds
                template = _wrap_phase("discover:" + task.name,
                                       "discover:", task)
                self.templates[template.name] = template
            order = ",".join(str(bound) for bound
                             in self.workload.manual_bounds_in_order)
            self.templates["annotate"] = ExecTemplate(
                "annotate", ("discover:loopbounds",),
                lambda keys, fetch:
                    f"annotate|{keys['discover:loopbounds']}"
                    f"|order={order}",
                lambda deps: derive_manual_bounds(
                    self.workload, deps["discover:loopbounds"]))

        main = phase_plan(program, manual_loop_bounds={},
                          context_policy=spec.policy_object(),
                          pipeline_model=spec.model,
                          memory_ranges=memory_ranges,
                          domain_impl=domain_impl)
        for task in main:
            if task.name == "loopbounds" and annotated:
                # The manual mapping is the annotate task's artifact;
                # the material embeds its *value* (small), reproducing
                # byte-for-byte the key a sequential run derives after
                # its in-process discovery pass.
                self.templates["loopbounds"] = ExecTemplate(
                    "loopbounds", ("value", "annotate"),
                    lambda keys, fetch: material_loopbounds(
                        keys["value"], fetch("annotate")),
                    lambda deps: analyze_loop_bounds(deps["value"],
                                                     deps["annotate"]))
            else:
                template = _wrap_phase(task.name, "", task)
                self.templates[template.name] = template
