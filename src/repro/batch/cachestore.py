"""Content-addressed artifact cache for analysis phases.

The sweep engine never recomputes an artifact whose inputs haven't
changed: every phase of :func:`repro.wcet.ait.analyze_wcet` stores its
result under a key that digests

* a *code version salt* — by default a hash of every ``.py`` file in
  the ``repro`` package, so any code change invalidates all cached
  artifacts at once (stale objects are simply never addressed again),
* the phase's own key material — the program's
  :meth:`~repro.isa.program.Program.content_digest` plus the exact
  phase parameters, and the keys of all upstream phases (transitive
  invalidation; see :class:`repro.wcet.ait.PhaseRunner`).

On-disk layout under the cache root::

    objects/<key[:2]>/<key>.pkl     pickled artifact (atomic writes)

Writes go through a temporary file followed by :func:`os.replace`, so
concurrent worker processes can share one cache directory: the worst
race is two processes computing the same artifact and one overwriting
the other with identical bytes (last-writer-wins).  A vanished object
is a plain miss; an object that *exists but does not unpickle*
(truncated write, bit rot, injected corruption) is a **quarantine
event**: the file moves to ``quarantine/`` under the cache root, the
``quarantined`` counter ticks, and the phase recomputes — corruption
is observable, never a silent miss or a wrong artifact.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from .. import faults

_SALT_CACHE: Optional[str] = None


def code_version_salt() -> str:
    """Digest of the ``repro`` package's source files (memoised).

    Keying every artifact on this salt means a cache directory never
    serves results computed by a different version of the analyses.
    """
    global _SALT_CACHE
    if _SALT_CACHE is None:
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for dirpath, _, filenames in sorted(os.walk(package_root)):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(
                    os.path.relpath(path, package_root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _SALT_CACHE = digest.hexdigest()
    return _SALT_CACHE


class ArtifactCache:
    """Content-addressed store of pickled analysis artifacts.

    ``root=None`` keeps artifacts purely in memory (useful to share
    work inside one process without touching disk); with a directory,
    artifacts persist across runs and processes.  Loaded objects are
    additionally memoised in memory, so repeated lookups within one
    process deserialise once.

    The in-memory memo is an LRU bounded by entry count and by
    (estimated pickled) bytes — a long-running process such as the
    ``repro serve`` daemon would otherwise retain every artifact it
    ever touched.  Eviction only forgets the deserialised copy; the
    on-disk object (when ``root`` is set) still serves later lookups.

    This class implements the phase-cache protocol of
    :class:`repro.wcet.ait.PhaseRunner`: :meth:`key`, :meth:`lookup`,
    :meth:`store`.  It is thread-safe: the serve layer shares one
    instance across its worker pool.
    """

    #: Default LRU bounds of the in-memory memo.  ``None`` disables the
    #: corresponding bound (pass explicitly to restore the old
    #: unbounded behaviour).
    MEMO_ENTRY_LIMIT = 4096
    MEMO_BYTE_LIMIT = 512 * 1024 * 1024

    def __init__(self, root: Optional[str] = None,
                 salt: Optional[str] = None,
                 limit_bytes: Optional[int] = None,
                 memo_entries: Optional[int] = MEMO_ENTRY_LIMIT,
                 memo_bytes: Optional[int] = MEMO_BYTE_LIMIT):
        self.root = root
        self.salt = salt if salt is not None else code_version_salt()
        self.limit_bytes = limit_bytes
        self.memo_entries = memo_entries
        self.memo_bytes = memo_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.memo_evictions = 0
        self.quarantined = 0
        self._memory: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._memory_bytes = 0
        self._lock = threading.RLock()
        #: In-flight single-flight latches, one per key being computed
        #: (see :meth:`fetch_or_compute`).
        self._inflight: Dict[str, threading.Event] = {}
        #: Running byte tally of the ``objects/`` tree; ``None`` until
        #: the first full scan (or after suspected drift) forces a
        #: rescan in :meth:`_evict_if_needed`.
        self._disk_bytes: Optional[int] = None

    # -- Protocol -----------------------------------------------------------

    def key(self, material: str) -> str:
        """Content address for one artifact: H(salt | material)."""
        return hashlib.sha256(
            f"{self.salt}|{material}".encode()).hexdigest()

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(True, artifact)`` when present, else ``(False, None)``."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return True, entry[0]
        if self.root is not None:
            path = self._object_path(key)
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except FileNotFoundError:
                # Never written, or evicted by a concurrent worker:
                # a plain miss, the phase is simply recomputed.
                pass
            except Exception:
                # The object exists but does not deserialise —
                # truncated write, bit rot, or an incompatible pickle.
                # Quarantine it so corruption stays observable (and
                # the broken bytes stop shadowing recomputed ones).
                self._quarantine(path)
            else:
                try:
                    # Freshen the mtime so a bounded store evicts
                    # least-recently-*used* objects, not merely the
                    # least recently written.
                    stat = os.stat(path)
                    os.utime(path)
                    size = stat.st_size
                except OSError:
                    size = _estimate_size(value)
                with self._lock:
                    self.hits += 1
                    self._memo_put(key, value, size)
                return True, value
        with self._lock:
            self.misses += 1
        return False, None

    def fetch_or_compute(self, key, compute) -> Tuple[Any, bool]:
        """Cached value for ``key``, computing it at most once per
        process even under concurrency (*single-flight*).

        Returns ``(value, computed)`` where ``computed`` says whether
        *this* call ran ``compute``.  The first caller for a key (the
        *leader*) computes and stores; concurrent callers for the same
        key (*followers*) block on the leader's latch and then serve
        the leader's result from the memo instead of recomputing — so
        N simultaneous identical requests cost exactly one miss and
        one computation per key, not N.

        A leader whose ``compute`` raises releases its followers; the
        first of them takes over leadership (its ``lookup`` still
        misses), so failures retry rather than deadlock.  Nested calls
        (``compute`` fetching its own dependencies) are safe because
        leadership only ever chains *downward* through the phase DAG —
        dependency keys differ from the keys waited on above them.
        """
        while True:
            with self._lock:
                entry = self._memory.get(key)
                if entry is not None:
                    self._memory.move_to_end(key)
                    self.hits += 1
                    return entry[0], False
                latch = self._inflight.get(key)
                if latch is None:
                    # Leadership claimed under the lock: every other
                    # thread arriving for this key becomes a follower.
                    latch = threading.Event()
                    self._inflight[key] = latch
                    leader = True
                else:
                    leader = False
            if not leader:
                latch.wait()
                # Re-enter: the common case hits the leader's memo
                # entry; if the leader failed (no entry, latch gone),
                # this thread claims leadership itself.
                continue
            try:
                hit, value = self.lookup(key)
                if hit:
                    return value, False
                value = compute()
                self.store(key, value)
                return value, True
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                latch.set()

    def store(self, key: str, value: Any) -> None:
        payload: Optional[bytes] = None
        try:
            payload = pickle.dumps(value,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # Unpicklable artifact: memo-only, size estimated.
            payload = None
        size = len(payload) if payload is not None \
            else _estimate_size(value)
        with self._lock:
            self._memo_put(key, value, size)
        if self.root is None or payload is None:
            return
        try:
            faults.check_disk_full()
            payload = faults.corrupt_payload(payload)
            path = self._object_path(key)
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            handle, temp_path = tempfile.mkstemp(dir=directory,
                                                 suffix=".tmp")
            try:
                old_size = 0
                try:
                    old_size = os.stat(path).st_size
                except OSError:
                    pass
                with os.fdopen(handle, "wb") as stream:
                    stream.write(payload)
                os.replace(temp_path, path)
                self._disk_bytes_add(len(payload) - old_size)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except Exception:
            # An artifact that cannot be persisted (full disk, dead
            # mount) degrades to uncached-on-disk: the computed result
            # is still returned and memoised in memory, and the next
            # process simply recomputes, mirroring how lookup() treats
            # unreadable objects as misses.
            pass
        else:
            if self.limit_bytes is not None:
                self._evict_if_needed(protect=self._object_path(key))

    def _memo_put(self, key: str, value: Any, size: int) -> None:
        """Insert into the LRU memo and shed oldest entries past the
        bounds.  The entry just inserted is never evicted (a memo too
        small for one artifact still has to serve it).  Caller holds
        the lock."""
        old = self._memory.pop(key, None)
        if old is not None:
            self._memory_bytes -= old[1]
        self._memory[key] = (value, size)
        self._memory_bytes += size
        while len(self._memory) > 1 and (
                (self.memo_entries is not None
                 and len(self._memory) > self.memo_entries)
                or (self.memo_bytes is not None
                    and self._memory_bytes > self.memo_bytes)):
            _, (_, dropped) = self._memory.popitem(last=False)
            self._memory_bytes -= dropped
            self.memo_evictions += 1

    def memo_stats(self) -> Dict[str, Optional[int]]:
        """Occupancy and eviction counters of the in-memory memo."""
        with self._lock:
            return {
                "entries": len(self._memory),
                "bytes": self._memory_bytes,
                "limit_entries": self.memo_entries,
                "limit_bytes": self.memo_bytes,
                "evictions": self.memo_evictions,
            }

    def _quarantine(self, path: str) -> None:
        """Move one undeserialisable object into ``quarantine/`` under
        the cache root and count the event.  Racing a concurrent
        worker (the file vanishing mid-move) degrades to a no-op —
        either way the broken bytes no longer answer lookups."""
        quarantine_dir = os.path.join(self.root, "quarantine")
        try:
            size = os.stat(path).st_size
        except OSError:
            size = 0
        try:
            os.makedirs(quarantine_dir, exist_ok=True)
            os.replace(path, os.path.join(quarantine_dir,
                                          os.path.basename(path)))
        except OSError:
            return
        self._disk_bytes_add(-size)
        with self._lock:
            self.quarantined += 1

    def _disk_bytes_add(self, delta: int) -> None:
        """Shift the running ``objects/`` byte tally; a tally driven
        negative signals drift (a concurrent worker changed the tree
        under us) and resets to unknown, forcing a rescan."""
        with self._lock:
            if self._disk_bytes is None:
                return
            self._disk_bytes += delta
            if self._disk_bytes < 0:
                self._disk_bytes = None

    def _scan_objects(self) -> Tuple[int, list]:
        """Walk ``objects/`` once: ``(total_bytes, [(mtime, path,
        size), ...])`` of every stored artifact."""
        objects_root = os.path.join(self.root, "objects")
        entries = []
        total = 0
        for dirpath, _, filenames in os.walk(objects_root):
            for filename in filenames:
                if not filename.endswith(".pkl"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((stat.st_mtime, path, stat.st_size))
                total += stat.st_size
        return total, entries

    def _evict_if_needed(self, protect: Optional[str] = None) -> None:
        """Drop oldest on-disk objects (by mtime, ties broken by path)
        until the store fits ``limit_bytes`` again.

        A running byte tally (updated on every store/quarantine) makes
        the common under-limit store O(1): the full ``objects/`` walk
        happens only on first use or when the tally crosses the limit,
        and each walk resynchronises the tally — absorbing any drift
        from concurrent workers sharing the directory.  Ties on mtime
        (1-second-granularity filesystems) break by *path*, never by
        file size, so eviction order is deterministic and independent
        of artifact content.

        Eviction only unlinks files — in-memory memoisation keeps this
        process's working set, and an evicted artifact is simply
        recomputed on its next cold lookup (readers treat a vanished
        object as a miss, so racing a concurrent worker's read is
        safe).  ``protect`` exempts the object this store() call just
        wrote: evicting it would invalidate the scheduler's knowledge
        that the artifact is addressable before anyone could read it.
        Races with concurrent workers (a file disappearing mid-scan)
        degrade to no-ops.
        """
        with self._lock:
            tally = self._disk_bytes
        if tally is not None and tally <= self.limit_bytes:
            return
        total, entries = self._scan_objects()
        if total > self.limit_bytes:
            entries.sort(key=lambda entry: (entry[0], entry[1]))
            for _, path, size in entries:
                if protect is not None and path == protect:
                    continue
                try:
                    os.unlink(path)
                except OSError:
                    continue
                self.evictions += 1
                total -= size
                if total <= self.limit_bytes:
                    break
        with self._lock:
            self._disk_bytes = total

    # -- Introspection ------------------------------------------------------

    def _object_path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key}.pkl")

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


def _estimate_size(value: Any) -> int:
    """Rough byte size of an artifact that couldn't be pickled or
    stat'ed — the memo accounting only needs the right magnitude."""
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return sys.getsizeof(value)
