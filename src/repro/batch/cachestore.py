"""Content-addressed artifact cache for analysis phases.

The sweep engine never recomputes an artifact whose inputs haven't
changed: every phase of :func:`repro.wcet.ait.analyze_wcet` stores its
result under a key that digests

* a *code version salt* — by default a hash of every ``.py`` file in
  the ``repro`` package, so any code change invalidates all cached
  artifacts at once (stale objects are simply never addressed again),
* the phase's own key material — the program's
  :meth:`~repro.isa.program.Program.content_digest` plus the exact
  phase parameters, and the keys of all upstream phases (transitive
  invalidation; see :class:`repro.wcet.ait.PhaseRunner`).

On-disk layout under the cache root::

    objects/<key[:2]>/<key>.pkl     pickled artifact (atomic writes)

Writes go through a temporary file followed by :func:`os.replace`, so
concurrent worker processes can share one cache directory: the worst
race is two processes computing the same artifact and one overwriting
the other with identical bytes (last-writer-wins).  Unreadable or
stale objects are treated as misses and recomputed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, Optional, Tuple

_SALT_CACHE: Optional[str] = None


def code_version_salt() -> str:
    """Digest of the ``repro`` package's source files (memoised).

    Keying every artifact on this salt means a cache directory never
    serves results computed by a different version of the analyses.
    """
    global _SALT_CACHE
    if _SALT_CACHE is None:
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for dirpath, _, filenames in sorted(os.walk(package_root)):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(
                    os.path.relpath(path, package_root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _SALT_CACHE = digest.hexdigest()
    return _SALT_CACHE


class ArtifactCache:
    """Content-addressed store of pickled analysis artifacts.

    ``root=None`` keeps artifacts purely in memory (useful to share
    work inside one process without touching disk); with a directory,
    artifacts persist across runs and processes.  Loaded objects are
    additionally memoised in memory, so repeated lookups within one
    process deserialise once.

    This class implements the phase-cache protocol of
    :class:`repro.wcet.ait.PhaseRunner`: :meth:`key`, :meth:`lookup`,
    :meth:`store`.
    """

    def __init__(self, root: Optional[str] = None,
                 salt: Optional[str] = None,
                 limit_bytes: Optional[int] = None):
        self.root = root
        self.salt = salt if salt is not None else code_version_salt()
        self.limit_bytes = limit_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._memory: dict = {}

    # -- Protocol -----------------------------------------------------------

    def key(self, material: str) -> str:
        """Content address for one artifact: H(salt | material)."""
        return hashlib.sha256(
            f"{self.salt}|{material}".encode()).hexdigest()

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(True, artifact)`` when present, else ``(False, None)``."""
        if key in self._memory:
            self.hits += 1
            return True, self._memory[key]
        if self.root is not None:
            path = self._object_path(key)
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except Exception:
                # Missing, truncated, or stale (e.g. written by an
                # incompatible pickle) object: recompute.  A file a
                # concurrent worker's eviction deleted mid-read lands
                # here too — the phase is simply recomputed.
                pass
            else:
                try:
                    # Freshen the mtime so a bounded store evicts
                    # least-recently-*used* objects, not merely the
                    # least recently written.
                    os.utime(path)
                except OSError:
                    pass
                self.hits += 1
                self._memory[key] = value
                return True, value
        self.misses += 1
        return False, None

    def store(self, key: str, value: Any) -> None:
        self._memory[key] = value
        if self.root is None:
            return
        try:
            path = self._object_path(key)
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            handle, temp_path = tempfile.mkstemp(dir=directory,
                                                 suffix=".tmp")
            try:
                with os.fdopen(handle, "wb") as stream:
                    pickle.dump(value, stream,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except Exception:
            # An artifact that cannot be persisted (unpicklable member,
            # full disk) degrades to uncached-on-disk: the computed
            # result is still returned and memoised in memory, and the
            # next process simply recomputes, mirroring how lookup()
            # treats unreadable objects as misses.
            pass
        else:
            if self.limit_bytes is not None:
                self._evict_if_needed(protect=self._object_path(key))

    def _evict_if_needed(self, protect: Optional[str] = None) -> None:
        """Drop oldest on-disk objects (by mtime) until the store fits
        ``limit_bytes`` again.

        Eviction only unlinks files — in-memory memoisation keeps this
        process's working set, and an evicted artifact is simply
        recomputed on its next cold lookup (readers treat a vanished
        object as a miss, so racing a concurrent worker's read is
        safe).  ``protect`` exempts the object this store() call just
        wrote: evicting it would invalidate the scheduler's knowledge
        that the artifact is addressable before anyone could read it.
        Races with concurrent workers (a file disappearing mid-scan)
        degrade to no-ops.
        """
        objects_root = os.path.join(self.root, "objects")
        entries = []
        total = 0
        for dirpath, _, filenames in os.walk(objects_root):
            for filename in filenames:
                if not filename.endswith(".pkl"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        if total <= self.limit_bytes:
            return
        entries.sort()
        for _, size, path in entries:
            if protect is not None and path == protect:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            self.evictions += 1
            total -= size
            if total <= self.limit_bytes:
                break

    # -- Introspection ------------------------------------------------------

    def _object_path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key}.pkl")

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0
