"""Abstract pipeline states for the krisc5 overlapped timing model.

"Pipeline analysis predicts the behavior of the program on the
processor pipeline" by computing *sets of abstract pipeline states* at
program points (Section 3).  For the 5-stage in-order KRISC pipeline
the timing-relevant state crossing a basic-block boundary is small:

* ``mem_residue`` — how many cycles the MEM unit is still busy past
  the block-entry reference point (an in-flight cache miss whose
  stall later memory accesses would queue behind), and
* ``pending`` — per register, how many cycles until a value loaded
  near the end of a predecessor block becomes forwardable (the
  load-use interlock window).

The shipped analysis *serialises* the MEM residue at every block
boundary (the block's elapsed charge covers it, see
:func:`walk_block`), so exit states always carry ``mem_residue == 0``
— that choice is what makes every per-block cost provably no worse
than the additive model's.  The component stays in the domain as the
walker's entry-side input and as the documented precision lever: an
implementation that propagates bounded residues across boundaries
instead of charging them locally would tighten blocks that can hide a
predecessor's miss, at the cost of the per-node ≤-additive guarantee.

A :class:`PipeState` is one such boundary condition; the analysis
domain is a *set* of them per task-graph node (:class:`PipeStateSet`)
with a join/leq algebra: join is union followed by dominance pruning,
``leq`` is per-state domination, and set growth is bounded by a
deterministic cap that merges the closest states into their
componentwise upper bound.  Domination is sound because the block
walker (:func:`walk_block`) is a monotone max-plus recurrence: larger
entry components can only delay every downstream event.

The walker itself is the abstract transfer function: it replays a
block's instructions against the worst-case cache classifications
(always-hit → hit, always-miss / not-classified → miss, persistent →
hit now plus a one-time penalty, exactly like the additive model) and
returns the elapsed worst-case cycles together with the exit state,
modelling fetch/EX overlap, miss shadowing, and interlocks *inside*
the block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cache.abstract import Classification
from ..cache.config import MachineConfig
from ..cfg.graph import BasicBlock
from ..isa.instructions import Instruction, Opcode

#: Opcodes that always redirect fetch (their penalty is part of the
#: block cost; conditional branches pay on the taken edge instead).
UNCONDITIONAL_TRANSFERS = {Opcode.B, Opcode.BL, Opcode.BR, Opcode.BLR,
                           Opcode.RET}


def loads_registers(instr: Instruction) -> Tuple[int, ...]:
    """Registers written *by a load* in ``instr`` (interlock sources)."""
    if instr.opcode in (Opcode.LDR, Opcode.LDRX):
        return (instr.rd,)
    if instr.opcode is Opcode.POP:
        return tuple(instr.reglist)
    return ()


@dataclass(frozen=True)
class PipeState:
    """One abstract pipeline boundary condition.

    ``pending`` is a sorted tuple of ``(register, delay)`` pairs with
    strictly positive delays — the cycles (past the boundary reference
    point) until the register's loaded value is forwardable.
    """

    mem_residue: int = 0
    pending: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self):
        if self.mem_residue < 0:
            raise ValueError("mem_residue must be non-negative")
        if any(delay < 1 for _, delay in self.pending):
            raise ValueError("pending delays must be positive")
        if list(self.pending) != sorted(self.pending):
            object.__setattr__(self, "pending",
                               tuple(sorted(self.pending)))

    def dominates(self, other: "PipeState") -> bool:
        """Is every timing component at least as late as ``other``'s?

        A dominating state can only produce a later schedule, so
        keeping it and dropping ``other`` over-approximates soundly.
        """
        if self.mem_residue < other.mem_residue:
            return False
        if other.pending:
            mine = dict(self.pending)
            for reg, delay in other.pending:
                if mine.get(reg, 0) < delay:
                    return False
        return True

    def merge(self, other: "PipeState") -> "PipeState":
        """Componentwise upper bound (the join of two single states)."""
        pending = dict(self.pending)
        for reg, delay in other.pending:
            if pending.get(reg, 0) < delay:
                pending[reg] = delay
        return PipeState(max(self.mem_residue, other.mem_residue),
                         tuple(sorted(pending.items())))

    def _key(self) -> Tuple:
        return (self.mem_residue, self.pending)


@dataclass
class StateSetStats:
    """Work/size counters of one krisc5 pipeline analysis."""

    peak_states: int = 0        # largest entry set seen on any node
    cap_merges: int = 0         # state merges forced by the cap
    walked_states: int = 0      # block walks performed

    def as_dict(self) -> Dict[str, int]:
        return {"peak_states": self.peak_states,
                "cap_merges": self.cap_merges,
                "walked_states": self.walked_states}


class PipeStateSet:
    """A canonical, dominance-pruned, cap-bounded set of states.

    Canonical form makes equality, hashing, and the capped join
    deterministic: states are dominance-pruned and kept sorted; when
    more than ``cap`` maximal states survive, the two closest (by
    componentwise distance) are merged into their upper bound until
    the cap is met.  The same input set always yields the same capped
    set regardless of arrival order.
    """

    __slots__ = ("states", "cap")

    def __init__(self, states: Iterable[PipeState], cap: int,
                 stats: Optional[StateSetStats] = None):
        self.cap = cap
        self.states: Tuple[PipeState, ...] = self._canonical(
            states, cap, stats)

    @staticmethod
    def _canonical(states: Iterable[PipeState], cap: int,
                   stats: Optional[StateSetStats]) -> Tuple[PipeState, ...]:
        # Mutual domination between *distinct* states is impossible
        # (it forces identical components), so after de-duplication a
        # single strict-domination sweep yields the maximal elements.
        unique = sorted(set(states), key=PipeState._key)
        maximal = [state for state in unique
                   if not any(other is not state and other.dominates(state)
                              for other in unique)]
        while len(maximal) > cap:
            best = None
            for i in range(len(maximal) - 1):
                for j in range(i + 1, len(maximal)):
                    d = _distance(maximal[i], maximal[j])
                    if best is None or d < best[0]:
                        best = (d, i, j)
            _, i, j = best
            merged = maximal[i].merge(maximal[j])
            if stats is not None:
                stats.cap_merges += 1
            del maximal[j], maximal[i]
            if not any(m.dominates(merged) for m in maximal):
                maximal = [m for m in maximal
                           if not merged.dominates(m)] + [merged]
                maximal.sort(key=PipeState._key)
        return tuple(maximal)

    # -- Lattice operations -------------------------------------------------

    def join(self, other: "PipeStateSet",
             stats: Optional[StateSetStats] = None) -> "PipeStateSet":
        return PipeStateSet(self.states + other.states, self.cap, stats)

    def leq(self, other: "PipeStateSet") -> bool:
        """Every behaviour of ``self`` is covered by ``other``."""
        return all(any(theirs.dominates(mine) for theirs in other.states)
                   for mine in self.states)

    def is_bottom(self) -> bool:
        return not self.states

    def copy(self) -> "PipeStateSet":
        return self    # immutable

    def __eq__(self, other) -> bool:
        return isinstance(other, PipeStateSet) \
            and self.states == other.states

    def __hash__(self) -> int:
        return hash(self.states)

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self):
        return iter(self.states)

    def __repr__(self) -> str:
        return f"PipeStateSet({list(self.states)!r})"

    @classmethod
    def initial(cls, cap: int) -> "PipeStateSet":
        """The task-entry set: an empty pipeline."""
        return cls((PipeState(),), cap)


def _distance(a: PipeState, b: PipeState) -> Tuple[int, Tuple]:
    """Deterministic closeness measure for cap merging."""
    pa, pb = dict(a.pending), dict(b.pending)
    total = abs(a.mem_residue - b.mem_residue)
    for reg in set(pa) | set(pb):
        total += abs(pa.get(reg, 0) - pb.get(reg, 0))
    return (total, a._key(), b._key())


# -- The abstract block walker ---------------------------------------------------


@dataclass
class BlockWalk:
    """Outcome of walking one block from one entry state."""

    elapsed: int                 # worst-case cycles consumed by the block
    exit_state: PipeState        # boundary condition handed to successors
    onetime: int = 0             # persistence penalties (paid once per run)


def walk_block(block: BasicBlock, state: PipeState,
               fetch_outcomes: Sequence[Classification],
               data_outcomes: Sequence[Tuple[int, Classification]],
               config: MachineConfig, is_exit: bool = False) -> BlockWalk:
    """Replay ``block`` on the abstract 5-stage pipeline.

    ``fetch_outcomes`` classifies each instruction fetch;
    ``data_outcomes`` lists ``(instruction_index, classification)``
    per data access in recording order; ``is_exit`` marks task-exit
    blocks, whose elapsed time must cover the full MEM-unit drain.
    The recurrence mirrors
    :meth:`repro.sim.cpu.Simulator._account_krisc5` with every
    unclassified event resolved to its worst case, and it is monotone
    in every component of ``state`` (max-plus), which is what makes
    dominance pruning and cap merging sound.
    """
    icache, dcache = config.icache, config.dcache
    load_use = config.load_use_stall
    accesses_of: Dict[int, List[Classification]] = {}
    for index, outcome in data_outcomes:
        accesses_of.setdefault(index, []).append(outcome)

    fetch_free = 0
    ex_free = 0
    mem_free = state.mem_residue
    pending: Dict[int, int] = dict(state.pending)
    onetime = 0

    for index, instr in enumerate(block.instructions):
        fetch = fetch_outcomes[index] if index < len(fetch_outcomes) \
            else Classification.NOT_CLASSIFIED
        penalty = 0
        if fetch is Classification.PERSISTENT:
            onetime += icache.miss_penalty
        elif fetch.worst_is_miss:
            penalty = icache.miss_penalty
        fetch_done = fetch_free + 1 + penalty

        operand_ready = 0
        if pending:
            for reg in instr.read_registers():
                when = pending.get(reg)
                if when is not None and when > operand_ready:
                    operand_ready = when
        issue = max(fetch_done, ex_free, operand_ready)
        occupancy = 1
        if instr.opcode in (Opcode.MUL, Opcode.MULI):
            occupancy += config.mul_extra
        ex_done = issue + occupancy

        mem_done = None
        instr_accesses = accesses_of.get(index)
        if instr_accesses:
            clock = max(ex_done, mem_free)
            for beat, outcome in enumerate(instr_accesses):
                if beat:
                    clock += 1
                if outcome is Classification.PERSISTENT:
                    onetime += dcache.miss_penalty
                elif outcome.worst_is_miss:
                    clock += dcache.miss_penalty
            mem_done = clock
            mem_free = clock

        ex_free = ex_done
        fetch_free = issue
        if pending:
            for reg in instr.written_registers():
                pending.pop(reg, None)
        loaded = loads_registers(instr)
        if loaded:
            available = (mem_done if mem_done is not None else ex_done) \
                + load_use
            for reg in loaded:
                pending[reg] = available

    if block.last.opcode in UNCONDITIONAL_TRANSFERS:
        ex_free += config.branch_penalty

    # MEM residue is charged here, at the boundary: the elapsed time
    # covers the in-flight miss, so successors start with a free MEM
    # unit and only the load-use window survives the boundary.  The
    # two ``- 1`` terms are boundary overlaps: the successor's first
    # fetch starts while this block's last instruction is still in EX
    # (the successor walk re-charges that fetch cycle in full), and a
    # 1-cycle MEM residue can never surface downstream — the earliest
    # successor memory access starts at least 2 cycles past the
    # boundary.  Exit blocks must cover the full drain instead,
    # matching the simulator's ``max(ex_free - 1, mem_free)`` count.
    elapsed = max(ex_free - 1, mem_free if is_exit else mem_free - 1)
    exit_pending = tuple(sorted(
        (reg, when - elapsed) for reg, when in pending.items()
        if when > elapsed))
    return BlockWalk(elapsed, PipeState(0, exit_pending), onetime)
