"""Pipeline analysis (phase 5 of the aiT pipeline).

"Pipeline analysis predicts the behavior of the program on the
processor pipeline" using "the results of cache analysis ... allowing
the prediction of pipeline stalls due to cache misses" (Section 3).

The KRISC pipeline timing model is additive (see
:class:`~repro.cache.config.MachineConfig`), so the per-block
worst-case contribution is a sum over instructions where each cache
access contributes its classified worst case:

* always-hit: the hit cost,
* always-miss / not-classified: the miss penalty on every execution,
* persistent: hit cost per execution plus a *one-time* miss penalty.

The only timing state crossing block boundaries is a possibly pending
load (load-use hazard); it is propagated as a small abstract state (the
set of registers possibly loaded by a block's last instruction), and
the stall is charged to edges in the worst case.  Taken-branch
penalties are likewise charged per edge, so IPET can distinguish taken
from fall-through executions of a conditional branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..cache.abstract import Classification
from ..cache.analysis import DCacheResult, ICacheResult
from ..cache.config import MachineConfig
from ..cfg.expand import NodeId, TaskEdge, TaskGraph
from ..cfg.graph import EdgeKind
from ..isa.instructions import Instruction, Opcode

_UNCONDITIONAL_TRANSFERS = {Opcode.B, Opcode.BL, Opcode.BR, Opcode.BLR,
                            Opcode.RET}


@dataclass
class BlockTiming:
    """Worst-case cycle contribution of one task-graph node."""

    node: NodeId
    base_cycles: int          # paid on every execution
    onetime_cycles: int = 0   # paid at most once per task run (PS misses)


@dataclass
class TimingModel:
    """Per-block and per-edge worst-case costs for IPET."""

    blocks: Dict[NodeId, BlockTiming]
    edges: Dict[Tuple[NodeId, NodeId, EdgeKind], int]

    def block_cost(self, node: NodeId) -> int:
        return self.blocks[node].base_cycles

    def onetime_cost(self, node: NodeId) -> int:
        return self.blocks[node].onetime_cycles

    def edge_cost(self, edge: TaskEdge) -> int:
        return self.edges.get((edge.source, edge.target, edge.kind), 0)

    def total_onetime(self) -> int:
        return sum(t.onetime_cycles for t in self.blocks.values())


class PipelineAnalysis:
    """Computes the worst-case timing model of a task."""

    def __init__(self, graph: TaskGraph, config: MachineConfig,
                 icache: ICacheResult, dcache: DCacheResult):
        self.graph = graph
        self.config = config
        self.icache = icache
        self.dcache = dcache

    def analyze(self) -> TimingModel:
        blocks = {node: self._time_block(node)
                  for node in self.graph.nodes()}
        edges = self._time_edges()
        return TimingModel(blocks, edges)

    # -- Per-block cost ----------------------------------------------------------

    def _time_block(self, node: NodeId) -> BlockTiming:
        config = self.config
        block = self.graph.blocks[node]
        fetch_classes = self.icache.for_node(node)
        data_classes = self.dcache.for_node(node)

        base = 0
        onetime = 0

        # Instruction issue + fetch + EX latency.
        for index, instr in enumerate(block):
            base += 1
            if instr.opcode in (Opcode.MUL, Opcode.MULI):
                base += config.mul_extra
            outcome = fetch_classes[index] if index < len(fetch_classes) \
                else Classification.NOT_CLASSIFIED
            if outcome.worst_is_miss:
                base += config.icache.miss_penalty
            elif outcome is Classification.PERSISTENT:
                onetime += config.icache.miss_penalty

        # Data accesses: classified in recording order, grouped by the
        # owning instruction for block-transfer beat costs.
        per_instruction: Dict[int, int] = {}
        for item in data_classes:
            index = item.access.index
            beat = per_instruction.get(index, 0)
            if beat > 0:
                base += 1   # extra beat of a PUSH/POP block transfer
            per_instruction[index] = beat + 1
            outcome = item.classification
            if outcome.worst_is_miss:
                base += config.dcache.miss_penalty
            elif outcome is Classification.PERSISTENT:
                onetime += config.dcache.miss_penalty

        # Intra-block load-use stalls.
        instructions = block.instructions
        for current, following in zip(instructions, instructions[1:]):
            if _loads_registers(current) & set(following.read_registers()):
                base += config.load_use_stall

        # Unconditional control transfers always pay the redirect.
        if block.last.opcode in _UNCONDITIONAL_TRANSFERS:
            base += config.branch_penalty

        return BlockTiming(node, base, onetime)

    # -- Per-edge cost ----------------------------------------------------------------

    def _time_edges(self) -> Dict[Tuple[NodeId, NodeId, EdgeKind], int]:
        config = self.config
        costs: Dict[Tuple[NodeId, NodeId, EdgeKind], int] = {}
        for node in self.graph.nodes():
            block = self.graph.blocks[node]
            pending = _loads_registers(block.last)
            for edge in self.graph.successors(node):
                cost = 0
                # Taken conditional branches pay the redirect penalty.
                if block.last.opcode is Opcode.BCC \
                        and edge.kind is EdgeKind.TAKEN:
                    cost += config.branch_penalty
                # Cross-block load-use hazard.
                if pending:
                    successor = self.graph.blocks[edge.target]
                    first = successor.instructions[0]
                    if pending & set(first.read_registers()):
                        cost += config.load_use_stall
                if cost:
                    costs[(edge.source, edge.target, edge.kind)] = cost
        return costs


def _loads_registers(instr: Instruction) -> Set[int]:
    """Registers written by a load in ``instr`` (pending-load hazard
    sources)."""
    if instr.opcode in (Opcode.LDR, Opcode.LDRX):
        return {instr.rd}
    if instr.opcode is Opcode.POP:
        return set(instr.reglist)
    return set()


def analyze_pipeline(graph: TaskGraph, config: MachineConfig,
                     icache: ICacheResult,
                     dcache: DCacheResult) -> TimingModel:
    """Derive the worst-case timing model (phase 5 of the pipeline)."""
    return PipelineAnalysis(graph, config, icache, dcache).analyze()
