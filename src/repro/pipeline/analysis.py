"""Pipeline analysis (phase 5 of the aiT pipeline).

"Pipeline analysis predicts the behavior of the program on the
processor pipeline" using "the results of cache analysis ... allowing
the prediction of pipeline stalls due to cache misses" (Section 3).

Two timing models are supported, selected by
:attr:`~repro.cache.config.MachineConfig.pipeline_model`:

* ``additive`` — the per-block worst-case contribution is a sum over
  instructions where each cache access contributes its classified
  worst case (always-hit: the hit cost; always-miss / not-classified:
  the miss penalty on every execution; persistent: hit cost per
  execution plus a *one-time* miss penalty).  The only timing state
  crossing block boundaries is a possibly pending load (load-use
  hazard), charged to edges in the worst case.

* ``krisc5`` — the overlapped 5-stage pipeline.  Per-block costs come
  from *sets of abstract pipeline states* (:mod:`repro.pipeline.states`)
  computed to a fixpoint over the whole (context-expanded, possibly
  VIVU-peeled) task graph on the shared WTO kernel: each entry state
  is walked through the block's stage-occupancy recurrence under the
  worst-case cache classifications, yielding the block's worst-case
  elapsed cycles and the successor boundary states.  Peeled
  first-iteration contexts are separate task-graph nodes with their
  own (compulsory-miss) classifications, so first-iteration and
  steady-state stalls are distinguished without extra machinery.

Both models produce the same :class:`TimingModel` shape, so IPET
(phase 6) is model-agnostic.  Taken-branch penalties are charged per
edge in both, so IPET can distinguish taken from fall-through
executions of a conditional branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.fixpoint import (FixpointKernel, FixpointSemantics,
                                 FixpointStats)
from ..cache.abstract import Classification
from ..cache.analysis import DCacheResult, ICacheResult
from ..cache.config import MachineConfig
from ..cfg.expand import NodeId, TaskEdge, TaskGraph
from ..cfg.graph import EdgeKind
from ..isa.instructions import Instruction, Opcode
from .states import (PipeState, PipeStateSet, StateSetStats,
                     UNCONDITIONAL_TRANSFERS, walk_block)

_UNCONDITIONAL_TRANSFERS = UNCONDITIONAL_TRANSFERS


@dataclass
class BlockTiming:
    """Worst-case cycle contribution of one task-graph node."""

    node: NodeId
    base_cycles: int          # paid on every execution
    onetime_cycles: int = 0   # paid at most once per task run (PS misses)


@dataclass
class TimingModel:
    """Per-block and per-edge worst-case costs for IPET."""

    blocks: Dict[NodeId, BlockTiming]
    edges: Dict[Tuple[NodeId, NodeId, EdgeKind], int]
    #: Which timing model produced these costs.
    model: str = "additive"
    #: WTO-kernel counters of the pipeline-state fixpoint (krisc5 only).
    fixpoint_stats: Optional[FixpointStats] = None
    #: State-set size/merge counters (krisc5 only).
    state_stats: Optional[StateSetStats] = None

    def block_cost(self, node: NodeId) -> int:
        return self.blocks[node].base_cycles

    def onetime_cost(self, node: NodeId) -> int:
        return self.blocks[node].onetime_cycles

    def edge_cost(self, edge: TaskEdge) -> int:
        return self.edges.get((edge.source, edge.target, edge.kind), 0)

    def total_onetime(self) -> int:
        return sum(t.onetime_cycles for t in self.blocks.values())


class PipelineAnalysis:
    """Computes the worst-case timing model of a task."""

    def __init__(self, graph: TaskGraph, config: MachineConfig,
                 icache: ICacheResult, dcache: DCacheResult):
        self.graph = graph
        self.config = config
        self.icache = icache
        self.dcache = dcache

    def analyze(self) -> TimingModel:
        blocks = {node: self._time_block(node)
                  for node in self.graph.nodes()}
        edges = self._time_edges()
        return TimingModel(blocks, edges)

    # -- Per-block cost ----------------------------------------------------------

    def _time_block(self, node: NodeId) -> BlockTiming:
        config = self.config
        block = self.graph.blocks[node]
        fetch_classes = self.icache.for_node(node)
        data_classes = self.dcache.for_node(node)

        base = 0
        onetime = 0

        # Instruction issue + fetch + EX latency.
        for index, instr in enumerate(block):
            base += 1
            if instr.opcode in (Opcode.MUL, Opcode.MULI):
                base += config.mul_extra
            outcome = fetch_classes[index] if index < len(fetch_classes) \
                else Classification.NOT_CLASSIFIED
            if outcome.worst_is_miss:
                base += config.icache.miss_penalty
            elif outcome is Classification.PERSISTENT:
                onetime += config.icache.miss_penalty

        # Data accesses: classified in recording order, grouped by the
        # owning instruction for block-transfer beat costs.
        per_instruction: Dict[int, int] = {}
        for item in data_classes:
            index = item.access.index
            beat = per_instruction.get(index, 0)
            if beat > 0:
                base += 1   # extra beat of a PUSH/POP block transfer
            per_instruction[index] = beat + 1
            outcome = item.classification
            if outcome.worst_is_miss:
                base += config.dcache.miss_penalty
            elif outcome is Classification.PERSISTENT:
                onetime += config.dcache.miss_penalty

        # Intra-block load-use stalls.
        instructions = block.instructions
        for current, following in zip(instructions, instructions[1:]):
            if _loads_registers(current) & set(following.read_registers()):
                base += config.load_use_stall

        # Unconditional control transfers always pay the redirect.
        if block.last.opcode in _UNCONDITIONAL_TRANSFERS:
            base += config.branch_penalty

        return BlockTiming(node, base, onetime)

    # -- Per-edge cost ----------------------------------------------------------------

    def _time_edges(self) -> Dict[Tuple[NodeId, NodeId, EdgeKind], int]:
        config = self.config
        costs: Dict[Tuple[NodeId, NodeId, EdgeKind], int] = {}
        for node in self.graph.nodes():
            block = self.graph.blocks[node]
            pending = _loads_registers(block.last)
            for edge in self.graph.successors(node):
                cost = 0
                # Taken conditional branches pay the redirect penalty.
                if block.last.opcode is Opcode.BCC \
                        and edge.kind is EdgeKind.TAKEN:
                    cost += config.branch_penalty
                # Cross-block load-use hazard.
                if pending:
                    successor = self.graph.blocks[edge.target]
                    first = successor.instructions[0]
                    if pending & set(first.read_registers()):
                        cost += config.load_use_stall
                if cost:
                    costs[(edge.source, edge.target, edge.kind)] = cost
        return costs


def _loads_registers(instr: Instruction) -> Set[int]:
    """Registers written by a load in ``instr`` (pending-load hazard
    sources)."""
    if instr.opcode in (Opcode.LDR, Opcode.LDRX):
        return {instr.rd}
    if instr.opcode is Opcode.POP:
        return set(instr.reglist)
    return set()


# -- krisc5: abstract pipeline-state analysis ------------------------------------


class _PipelineSemantics(FixpointSemantics):
    """WTO-kernel adapter for pipeline-state sets.

    The domain is finite (residues and interlock windows are bounded
    by the machine parameters, the set size by the cap), so no
    widening is needed; joins are union + dominance pruning + the
    deterministic cap merge.
    """

    widening = False

    def __init__(self, analysis: "Krisc5PipelineAnalysis"):
        self.analysis = analysis

    def transfer(self, node: NodeId, state: PipeStateSet) -> PipeStateSet:
        return self.analysis.exit_states(node, state)

    def join(self, old: PipeStateSet, new: PipeStateSet) -> PipeStateSet:
        return old.join(new, self.analysis.state_stats)

    def is_bottom(self, state: PipeStateSet) -> bool:
        return state.is_bottom()


class Krisc5PipelineAnalysis:
    """Abstract pipeline-state analysis for the overlapped 5-stage model.

    Runs a fixpoint over sets of entry pipeline states per task-graph
    node (on the shared WTO kernel), then extracts per-node worst-case
    cycles and per-edge redirect penalties in the :class:`TimingModel`
    shape the additive model produces, keeping IPET unchanged.
    """

    def __init__(self, graph: TaskGraph, config: MachineConfig,
                 icache: ICacheResult, dcache: DCacheResult):
        self.graph = graph
        self.config = config
        self.icache = icache
        self.dcache = dcache
        self.state_stats = StateSetStats()
        self._data_outcomes: Dict[
            NodeId, List[Tuple[int, Classification]]] = {}
        for node in graph.nodes():
            self._data_outcomes[node] = [
                (item.access.index, item.classification)
                for item in dcache.for_node(node)]
        # (node, entry state) -> BlockWalk: the fixpoint and the final
        # cost extraction walk the same pairs, so walks are memoised
        # (PipeState is frozen/hashable) and counted once.
        self._walk_cache: Dict[Tuple[NodeId, PipeState], object] = {}

    def _walk(self, node: NodeId, state: PipeState):
        key = (node, state)
        walk = self._walk_cache.get(key)
        if walk is None:
            self.state_stats.walked_states += 1
            walk = walk_block(self.graph.blocks[node], state,
                              self.icache.for_node(node),
                              self._data_outcomes[node], self.config,
                              is_exit=not self.graph.successors(node))
            self._walk_cache[key] = walk
        return walk

    def exit_states(self, node: NodeId,
                    entry: PipeStateSet) -> PipeStateSet:
        return PipeStateSet(
            (self._walk(node, state).exit_state for state in entry),
            entry.cap, self.state_stats)

    def analyze(self) -> TimingModel:
        graph = self.graph
        cap = self.config.pipeline_state_cap
        kernel = FixpointKernel(
            graph.entry, graph.successors, lambda e: e.target,
            _PipelineSemantics(self), sort_key=TaskGraph.node_key)
        entries = kernel.solve(PipeStateSet.initial(cap))

        fallback = PipeStateSet.initial(cap)
        blocks: Dict[NodeId, BlockTiming] = {}
        for node in graph.nodes():
            entry = entries.get(node)
            if entry is None or entry.is_bottom():
                entry = fallback    # unreachable: any sound cost works
            self.state_stats.peak_states = max(
                self.state_stats.peak_states, len(entry))
            base = 0
            onetime = 0
            for state in entry:
                walk = self._walk(node, state)
                base = max(base, walk.elapsed)
                onetime = max(onetime, walk.onetime)
            blocks[node] = BlockTiming(node, base, onetime)

        # Taken conditional branches pay the fetch redirect on the
        # edge, exactly like the additive model; cross-block load-use
        # stalls are part of the entry states instead.
        edges: Dict[Tuple[NodeId, NodeId, EdgeKind], int] = {}
        penalty = self.config.branch_penalty
        for node in graph.nodes():
            if graph.blocks[node].last.opcode is not Opcode.BCC:
                continue
            for edge in graph.successors(node):
                if edge.kind is EdgeKind.TAKEN:
                    edges[(edge.source, edge.target, edge.kind)] = penalty
        return TimingModel(blocks, edges, model="krisc5",
                           fixpoint_stats=kernel.stats,
                           state_stats=self.state_stats)


def analyze_pipeline(graph: TaskGraph, config: MachineConfig,
                     icache: ICacheResult,
                     dcache: DCacheResult) -> TimingModel:
    """Derive the worst-case timing model (phase 5 of the pipeline).

    Dispatches on ``config.pipeline_model``: the bit-compatible
    ``additive`` baseline, or the overlapped ``krisc5`` abstract
    pipeline-state analysis.
    """
    if config.pipeline_model == "krisc5":
        return Krisc5PipelineAnalysis(graph, config, icache,
                                      dcache).analyze()
    return PipelineAnalysis(graph, config, icache, dcache).analyze()
