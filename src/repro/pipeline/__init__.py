"""Pipeline timing analysis (phase 5 of the aiT pipeline)."""

from .analysis import (BlockTiming, PipelineAnalysis, TimingModel,
                       analyze_pipeline)

__all__ = [
    "BlockTiming", "PipelineAnalysis", "TimingModel", "analyze_pipeline",
]
