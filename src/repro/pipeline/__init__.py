"""Pipeline timing analysis (phase 5 of the aiT pipeline)."""

from .analysis import (BlockTiming, Krisc5PipelineAnalysis,
                       PipelineAnalysis, TimingModel, analyze_pipeline)
from .states import (BlockWalk, PipeState, PipeStateSet, StateSetStats,
                     walk_block)

__all__ = [
    "BlockTiming", "BlockWalk", "Krisc5PipelineAnalysis",
    "PipeState", "PipeStateSet", "PipelineAnalysis", "StateSetStats",
    "TimingModel", "analyze_pipeline", "walk_block",
]
