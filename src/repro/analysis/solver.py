"""Worklist fixpoint engine with widening and narrowing.

This is the Cousot & Cousot machinery the paper rests on (reference
[1]): chaotic iteration to a post-fixpoint with widening at loop
headers, followed by bounded narrowing passes to recover precision.
Thresholds for widening are harvested from the program's comparison
immediates, so loop counters stabilise at their tested limits instead
of jumping to the type bounds (ablation D1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

from ..cfg.expand import NodeId, TaskEdge, TaskGraph
from ..cfg.loops import LoopForest, find_loops
from ..isa.instructions import Opcode
from .domain import AbstractValue
from .state import AbstractState
from .transfer import refine_by_condition, transfer_block

#: Visits of a loop header before widening kicks in (delayed widening
#: buys precision for short loops at negligible cost).
DEFAULT_WIDEN_DELAY = 3

#: Narrowing passes after the ascending fixpoint.
DEFAULT_NARROWING_PASSES = 2

#: Safety valve on total block transfers.
MAX_TRANSFERS = 2_000_000


@dataclass
class FixpointResult:
    """Solver output: entry states per node plus iteration statistics."""

    entry_states: Dict[NodeId, AbstractState]
    loop_forest: LoopForest
    transfers: int = 0
    widenings: int = 0
    #: The abstract state at task entry (before the entry block), kept
    #: for analyses that must distinguish the implicit entry edge from
    #: loop back edges when the entry block heads a loop.
    task_entry_state: Optional[AbstractState] = None

    def state_at(self, node: NodeId) -> Optional[AbstractState]:
        return self.entry_states.get(node)

    def reachable(self, node: NodeId) -> bool:
        state = self.entry_states.get(node)
        return state is not None and not state.is_bottom()


class FixpointSolver:
    """Chaotic iteration over a :class:`TaskGraph`."""

    def __init__(self, graph: TaskGraph,
                 widen_delay: int = DEFAULT_WIDEN_DELAY,
                 narrowing_passes: int = DEFAULT_NARROWING_PASSES,
                 use_widening_thresholds: bool = True):
        self.graph = graph
        self.widen_delay = widen_delay
        self.narrowing_passes = narrowing_passes
        self.thresholds = tuple(collect_thresholds(graph)) \
            if use_widening_thresholds else ()

    def solve(self, entry_state: AbstractState) -> FixpointResult:
        graph = self.graph
        loop_forest = find_loops(graph.entry, graph.adjacency())
        headers = loop_forest.headers()

        states: Dict[NodeId, AbstractState] = {graph.entry: entry_state}
        visits: Dict[NodeId, int] = {}
        transfers = widenings = 0

        worklist = deque([graph.entry])
        queued: Set[NodeId] = {graph.entry}
        while worklist:
            node = worklist.popleft()
            queued.discard(node)
            state = states[node]
            if state.is_bottom():
                continue
            out_state = transfer_block(state, graph.blocks[node])
            transfers += 1
            if transfers > MAX_TRANSFERS:
                raise RuntimeError("value analysis exceeded transfer budget")
            for edge in graph.successors(node):
                edge_state = out_state
                if edge.cond is not None:
                    edge_state = refine_by_condition(out_state, edge.cond)
                if edge_state.is_bottom():
                    continue
                target = edge.target
                old = states.get(target)
                if old is None:
                    states[target] = edge_state.copy()
                    if target not in queued:
                        worklist.append(target)
                        queued.add(target)
                    continue
                new = old.join(edge_state)
                if target in headers:
                    count = visits.get(target, 0) + 1
                    visits[target] = count
                    if count > self.widen_delay:
                        new = old.widen(new, self.thresholds)
                        widenings += 1
                if not new.leq(old):
                    states[target] = new
                    if target not in queued:
                        worklist.append(target)
                        queued.add(target)

        for _ in range(self.narrowing_passes):
            if not self._narrow_pass(states, entry_state):
                break

        return FixpointResult(states, loop_forest, transfers, widenings,
                              task_entry_state=entry_state)

    def _narrow_pass(self, states: Dict[NodeId, AbstractState],
                     entry_state: AbstractState) -> bool:
        """One decreasing pass; returns True if anything changed."""
        graph = self.graph
        changed = False
        for node in graph.topological_order():
            if node not in states:
                continue
            if node == graph.entry:
                incoming = [entry_state]
            else:
                incoming = []
            for edge in graph.predecessors(node):
                pred_state = states.get(edge.source)
                if pred_state is None or pred_state.is_bottom():
                    continue
                out_state = transfer_block(pred_state,
                                           graph.blocks[edge.source])
                if edge.cond is not None:
                    out_state = refine_by_condition(out_state, edge.cond)
                if not out_state.is_bottom():
                    incoming.append(out_state)
            if not incoming:
                continue
            joined = incoming[0]
            for other in incoming[1:]:
                joined = joined.join(other)
            narrowed = states[node].narrow(joined)
            if not states[node].leq(narrowed) \
                    or not narrowed.leq(states[node]):
                states[node] = narrowed
                changed = True
        return changed


def collect_thresholds(graph: TaskGraph) -> List[int]:
    """Widening thresholds: comparison constants (and neighbours) of the
    program, which are exactly the bounds loops are tested against."""
    thresholds: Set[int] = {0}
    seen: Set[int] = set()
    for block in graph.blocks.values():
        if id(block) in seen:
            continue
        seen.add(id(block))
        for instr in block:
            if instr.opcode is Opcode.CMPI:
                thresholds.update((instr.imm - 1, instr.imm,
                                   instr.imm + 1))
            elif instr.opcode is Opcode.MOVI:
                thresholds.add(instr.imm)
    return sorted(thresholds)
