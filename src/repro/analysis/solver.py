"""Value-analysis fixpoint solver with widening and narrowing.

This is the Cousot & Cousot machinery the paper rests on (reference
[1]): iteration to a post-fixpoint with widening at loop headers,
followed by bounded narrowing passes to recover precision.  Thresholds
for widening are harvested from the program's comparison immediates, so
loop counters stabilise at their tested limits instead of jumping to
the type bounds (ablation D1).

Iteration itself is delegated to the shared WTO kernel
(:mod:`repro.analysis.fixpoint`): Bourdoncle's recursive strategy
stabilises inner loops before re-entering outer ones and widens only at
component heads, which — together with copy-on-write states and cached
out-states — replaces the historical FIFO worklist at a fraction of the
transfer count.  The FIFO engine is retained behind
``strategy="fifo"`` as a reference implementation for differential
testing and benchmarking; its counters now also include narrowing
transfers so the two strategies are compared honestly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

from ..cfg.expand import NodeId, TaskEdge, TaskGraph
from ..cfg.loops import LoopForest, find_loops
from ..isa.instructions import Opcode
from .domain import AbstractValue
from .fixpoint import (MAX_TRANSFERS, FixpointKernel, FixpointSemantics,
                       FixpointStats)
from .state import AbstractState
from .transfer import compile_block, refine_by_condition, transfer_block

#: Visits of a loop header before widening kicks in (delayed widening
#: buys precision for short loops at negligible cost).
DEFAULT_WIDEN_DELAY = 3

#: Narrowing passes after the ascending fixpoint.
DEFAULT_NARROWING_PASSES = 2


@dataclass
class FixpointResult:
    """Solver output: entry states per node plus iteration statistics."""

    entry_states: Dict[NodeId, AbstractState]
    loop_forest: LoopForest
    transfers: int = 0
    widenings: int = 0
    #: The abstract state at task entry (before the entry block), kept
    #: for analyses that must distinguish the implicit entry edge from
    #: loop back edges when the entry block heads a loop.
    task_entry_state: Optional[AbstractState] = None
    #: Full work counters of the solve (kernel instrumentation).
    stats: Optional[FixpointStats] = None

    def state_at(self, node: NodeId) -> Optional[AbstractState]:
        return self.entry_states.get(node)

    def reachable(self, node: NodeId) -> bool:
        state = self.entry_states.get(node)
        return state is not None and not state.is_bottom()

    def states_equal(self, other: "FixpointResult") -> bool:
        """Same nodes and lattice-equal entry states (mutual ``leq``) —
        the notion of precision-neutrality used by the differential
        tests and the perf harness's CI guard."""
        if set(self.entry_states) != set(other.entry_states):
            return False
        return all(state.leq(other.entry_states[node])
                   and other.entry_states[node].leq(state)
                   for node, state in self.entry_states.items())


class _ValueSemantics(FixpointSemantics):
    """Kernel adapter for abstract machine states over a task graph.

    With ``compiled=True`` every basic block is compiled once into a
    fused transfer closure (:func:`compile_block`) keyed by block
    identity — context copies of the same block share one compilation
    — and the kernel's transfers (including narrowing passes, which
    route through the same hook) run the compiled form.
    """

    widening = True

    def __init__(self, graph: TaskGraph, thresholds: Sequence[int],
                 compiled: bool = False):
        self.blocks = graph.blocks
        self.thresholds = thresholds
        self.compiled = compiled
        # id -> (block, fn); the block reference keeps the id alive.
        self._compiled_blocks: Dict[int, Tuple[object, object]] = {}

    def transfer(self, node: NodeId, state: AbstractState) -> AbstractState:
        block = self.blocks[node]
        if self.compiled:
            entry = self._compiled_blocks.get(id(block))
            if entry is None:
                entry = (block, compile_block(block, state.domain))
                self._compiled_blocks[id(block)] = entry
            return entry[1](state)
        return transfer_block(state, block)

    def edge_state(self, edge: TaskEdge,
                   out_state: AbstractState) -> Optional[AbstractState]:
        if edge.cond is None:
            return out_state
        return refine_by_condition(out_state, edge.cond)

    def widen(self, old: AbstractState,
              new: AbstractState) -> AbstractState:
        return old.widen(new, self.thresholds)


class FixpointSolver:
    """Value-analysis fixpoint over a :class:`TaskGraph`.

    ``strategy="wto"`` (default) runs the shared WTO kernel;
    ``strategy="fifo"`` runs the legacy FIFO worklist for differential
    testing and perf comparison.
    """

    def __init__(self, graph: TaskGraph,
                 widen_delay: int = DEFAULT_WIDEN_DELAY,
                 narrowing_passes: int = DEFAULT_NARROWING_PASSES,
                 use_widening_thresholds: bool = True,
                 strategy: str = "wto",
                 compiled_transfer: bool = False):
        if strategy not in ("wto", "fifo"):
            raise ValueError(f"unknown solver strategy {strategy!r}")
        self.graph = graph
        self.widen_delay = widen_delay
        self.narrowing_passes = narrowing_passes
        self.strategy = strategy
        self.compiled_transfer = compiled_transfer
        self.thresholds = tuple(collect_thresholds(graph)) \
            if use_widening_thresholds else ()

    def solve(self, entry_state: AbstractState) -> FixpointResult:
        if self.strategy == "fifo":
            return self._solve_fifo(entry_state)
        return self._solve_wto(entry_state)

    # -- WTO strategy (shared kernel) --------------------------------------

    def _solve_wto(self, entry_state: AbstractState) -> FixpointResult:
        graph = self.graph
        loop_forest = find_loops(graph.entry, graph.adjacency())
        kernel = FixpointKernel(
            graph.entry, graph.successors, lambda e: e.target,
            _ValueSemantics(graph, self.thresholds,
                            compiled=self.compiled_transfer),
            widen_delay=self.widen_delay,
            sort_key=TaskGraph.node_key,
            predecessor_edges=graph.predecessors,
            edge_source=lambda e: e.source)
        states = kernel.solve(entry_state)
        if self.narrowing_passes:
            entry = graph.entry

            def entry_inputs(node: NodeId) -> List[AbstractState]:
                return [entry_state] if node == entry else []

            kernel.narrow(self.narrowing_passes, entry_inputs,
                          order=graph.topological_order())
        stats = kernel.stats
        return FixpointResult(states, loop_forest, stats.transfers,
                              stats.widenings,
                              task_entry_state=entry_state, stats=stats)

    # -- FIFO strategy (legacy reference) ----------------------------------

    def _solve_fifo(self, entry_state: AbstractState) -> FixpointResult:
        graph = self.graph
        loop_forest = find_loops(graph.entry, graph.adjacency())
        headers = loop_forest.headers()
        stats = FixpointStats()

        states: Dict[NodeId, AbstractState] = {graph.entry: entry_state}
        visits: Dict[NodeId, int] = {}

        worklist = deque([graph.entry])
        queued: Set[NodeId] = {graph.entry}
        while worklist:
            node = worklist.popleft()
            queued.discard(node)
            state = states[node]
            if state.is_bottom():
                continue
            out_state = transfer_block(state, graph.blocks[node])
            stats.transfers += 1
            if stats.transfers > MAX_TRANSFERS:
                raise RuntimeError("value analysis exceeded transfer budget")
            for edge in graph.successors(node):
                edge_state = out_state
                if edge.cond is not None:
                    edge_state = refine_by_condition(out_state, edge.cond)
                if edge_state.is_bottom():
                    continue
                target = edge.target
                old = states.get(target)
                if old is None:
                    states[target] = edge_state.copy()
                    stats.copies += 1
                    if target not in queued:
                        worklist.append(target)
                        queued.add(target)
                    continue
                new = old.join(edge_state)
                stats.joins += 1
                if target in headers:
                    count = visits.get(target, 0) + 1
                    visits[target] = count
                    if count > self.widen_delay:
                        new = old.widen(new, self.thresholds)
                        stats.widenings += 1
                stats.leq_calls += 1
                if not new.leq(old):
                    states[target] = new
                    if target not in queued:
                        worklist.append(target)
                        queued.add(target)

        for _ in range(self.narrowing_passes):
            if not self._narrow_pass(states, entry_state, stats):
                break

        return FixpointResult(states, loop_forest, stats.transfers,
                              stats.widenings,
                              task_entry_state=entry_state, stats=stats)

    def _narrow_pass(self, states: Dict[NodeId, AbstractState],
                     entry_state: AbstractState,
                     stats: FixpointStats) -> bool:
        """One decreasing pass; returns True if anything changed."""
        graph = self.graph
        changed = False
        for node in graph.topological_order():
            if node not in states:
                continue
            if node == graph.entry:
                incoming = [entry_state]
            else:
                incoming = []
            for edge in graph.predecessors(node):
                pred_state = states.get(edge.source)
                if pred_state is None or pred_state.is_bottom():
                    continue
                out_state = transfer_block(pred_state,
                                           graph.blocks[edge.source])
                stats.transfers += 1
                if stats.transfers > MAX_TRANSFERS:
                    raise RuntimeError(
                        "value analysis exceeded transfer budget")
                if edge.cond is not None:
                    out_state = refine_by_condition(out_state, edge.cond)
                if not out_state.is_bottom():
                    incoming.append(out_state)
            if not incoming:
                continue
            joined = incoming[0]
            for other in incoming[1:]:
                joined = joined.join(other)
                stats.joins += 1
            narrowed = states[node].narrow(joined)
            stats.narrowings += 1
            stats.leq_calls += 2
            if not states[node].leq(narrowed) \
                    or not narrowed.leq(states[node]):
                states[node] = narrowed
                changed = True
        return changed


def collect_thresholds(graph: TaskGraph) -> List[int]:
    """Widening thresholds: comparison constants (and neighbours) of the
    program, which are exactly the bounds loops are tested against."""
    thresholds: Set[int] = {0}
    seen: Set[int] = set()
    for block in graph.blocks.values():
        if id(block) in seen:
            continue
        seen.add(id(block))
        for instr in block:
            if instr.opcode is Opcode.CMPI:
                thresholds.update((instr.imm - 1, instr.imm,
                                   instr.imm + 1))
            elif instr.opcode is Opcode.MOVI:
                thresholds.add(instr.imm)
    return sorted(thresholds)
