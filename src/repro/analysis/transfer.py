"""Abstract transfer functions for KRISC instructions.

Each function over-approximates the concrete semantics implemented by
the simulator (:mod:`repro.sim.cpu`); the correspondence is enforced by
property tests.  Conditional-branch refinement implements the paper's
observation that "value analysis can also determine that certain
conditions always evaluate to true or always evaluate to false"
(Section 3): an edge whose refined state is bottom is infeasible and is
excluded from the WCET path analysis (ablation D5).
"""

from __future__ import annotations

from typing import Optional, Tuple, Type

from ..isa.instructions import Cond, Instruction, Opcode
from ..isa.registers import LR, SP
from .domain import AbstractValue
from .state import AbstractState, FlagsInfo

#: Signed comparison operator asserted by each condition code, applied
#: as ``left <op> right`` for the compare ``CMP left, right``.
_SIGNED_OPS = {
    Cond.EQ: "==", Cond.NE: "!=",
    Cond.LT: "<", Cond.GE: ">=", Cond.GT: ">", Cond.LE: "<=",
}

#: Unsigned conditions map to the same signed operator when both
#: operands are known non-negative (then the views coincide).
_UNSIGNED_OPS = {
    Cond.LO: "<", Cond.HS: ">=", Cond.HI: ">", Cond.LS: "<=",
}

_SWAPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
            "==": "==", "!=": "!="}

_ALU_REG = {
    Opcode.ADD: "add", Opcode.SUB: "sub", Opcode.MUL: "mul",
    Opcode.AND: "bitand", Opcode.OR: "bitor", Opcode.XOR: "bitxor",
    Opcode.SHL: "shl", Opcode.SHR: "shr", Opcode.ASR: "asr",
}

_ALU_IMM = {
    Opcode.ADDI: "add", Opcode.SUBI: "sub", Opcode.MULI: "mul",
    Opcode.ANDI: "bitand", Opcode.ORI: "bitor", Opcode.XORI: "bitxor",
    Opcode.SHLI: "shl", Opcode.SHRI: "shr", Opcode.ASRI: "asr",
}


def transfer_instruction(state: AbstractState,
                         instr: Instruction) -> AbstractState:
    """Abstractly execute one instruction, mutating and returning
    ``state`` (callers copy at block boundaries)."""
    if state.is_bottom():
        return state
    domain = state.domain
    op = instr.opcode

    method = _ALU_REG.get(op)
    if method is not None:
        result = getattr(state.get(instr.rs1), method)(state.get(instr.rs2))
        state.set(instr.rd, result)
        return state
    method = _ALU_IMM.get(op)
    if method is not None:
        result = getattr(state.get(instr.rs1), method)(
            domain.const(instr.imm))
        state.set(instr.rd, result)
        # Difference alias: rd == rs1 +/- imm (paper Section 1's
        # "bounds for differences" refinement).
        if op is Opcode.ADDI:
            state.set_alias(instr.rd, instr.rs1, instr.imm)
        elif op is Opcode.SUBI:
            state.set_alias(instr.rd, instr.rs1, -instr.imm)
        return state

    if op is Opcode.MOV:
        state.set(instr.rd, state.get(instr.rs1))
        state.set_alias(instr.rd, instr.rs1, 0)
    elif op is Opcode.MOVI:
        state.set(instr.rd, domain.const(instr.imm))
    elif op is Opcode.MOVHI:
        low = state.get(instr.rd).bitand(domain.const(0xFFFF))
        state.set(instr.rd, low.bitor(domain.const(instr.imm << 16)))
    elif op is Opcode.CMP:
        state.flags = FlagsInfo(state.get(instr.rs1), state.get(instr.rs2),
                                instr.rs1, instr.rs2)
    elif op is Opcode.CMPI:
        state.flags = FlagsInfo(state.get(instr.rs1),
                                domain.const(instr.imm), instr.rs1, None)
    elif op is Opcode.LDR:
        address = state.get(instr.rs1).add(domain.const(instr.imm))
        state.set(instr.rd, state.memory.load(address))
    elif op is Opcode.LDRX:
        address = state.get(instr.rs1).add(state.get(instr.rs2))
        state.set(instr.rd, state.memory.load(address))
    elif op is Opcode.STR:
        address = state.get(instr.rs1).add(domain.const(instr.imm))
        state.memory.store(address, state.get(instr.rs2))
    elif op is Opcode.STRX:
        address = state.get(instr.rs1).add(state.get(instr.rs2))
        state.memory.store(address, state.get(instr.rd))
    elif op is Opcode.PUSH:
        _transfer_push(state, instr)
    elif op is Opcode.POP:
        _transfer_pop(state, instr)
    elif op in (Opcode.BL, Opcode.BLR):
        state.set(LR, domain.const(instr.address + 4))
    # B, BCC, BR, RET, NOP, HALT have no data effect.
    return state


def _transfer_push(state: AbstractState, instr: Instruction) -> None:
    """PUSH stores ascending registers at ascending addresses starting
    at the decremented stack pointer (ARM STMDB convention)."""
    domain = state.domain
    count = len(instr.reglist)
    new_sp = state.stack_pointer.sub(domain.const(4 * count))
    for slot, reg in enumerate(instr.reglist):
        address = new_sp.add(domain.const(4 * slot))
        state.memory.store(address, state.get(reg))
    state.set(SP, new_sp)


def _transfer_pop(state: AbstractState, instr: Instruction) -> None:
    """POP loads ascending registers from ascending addresses at the old
    stack pointer (ARM LDMIA convention)."""
    domain = state.domain
    old_sp = state.stack_pointer
    for slot, reg in enumerate(instr.reglist):
        address = old_sp.add(domain.const(4 * slot))
        state.set(reg, state.memory.load(address))
    count = len(instr.reglist)
    state.set(SP, old_sp.add(domain.const(4 * count)))


def transfer_block(state: AbstractState, instructions) -> AbstractState:
    """Abstractly execute a basic block on a copy of ``state``."""
    current = state.copy()
    for instr in instructions:
        current = transfer_instruction(current, instr)
        if current.is_bottom():
            break
    return current


def compile_block(instructions, domain: Type[AbstractValue]):
    """Compile a basic block into a fused transfer function.

    The returned callable has the exact semantics of
    :func:`transfer_block` but pays the per-instruction costs — opcode
    dispatch, method lookup, immediate-to-abstract-constant lifting —
    once at compile time instead of at every fixpoint iteration: each
    instruction becomes a closure over a prebound domain operation and
    preallocated abstract constants.  Opcodes with no data effect
    (branches, ``NOP``, ``HALT``) compile to nothing.

    Each closure returns True when the value it wrote is bottom, which
    reproduces ``transfer_block``'s early exit: a non-bottom entry
    state can only become bottom through the value just written.
    """
    const = domain.const
    steps = []
    for instr in instructions:
        op = instr.opcode
        method = _ALU_REG.get(op)
        if method is not None:
            fn = getattr(domain, method)

            def step(s, fn=fn, rd=instr.rd, rs1=instr.rs1, rs2=instr.rs2):
                v = fn(s.regs[rs1], s.regs[rs2])
                s.set(rd, v)
                return v.is_bottom()
        elif (method := _ALU_IMM.get(op)) is not None:
            fn = getattr(domain, method)
            imm_value = const(instr.imm)
            if op is Opcode.ADDI or op is Opcode.SUBI:
                offset = instr.imm if op is Opcode.ADDI else -instr.imm

                def step(s, fn=fn, rd=instr.rd, rs1=instr.rs1,
                         c=imm_value, off=offset):
                    v = fn(s.regs[rs1], c)
                    s.set(rd, v)
                    s.set_alias(rd, rs1, off)
                    return v.is_bottom()
            else:
                def step(s, fn=fn, rd=instr.rd, rs1=instr.rs1,
                         c=imm_value):
                    v = fn(s.regs[rs1], c)
                    s.set(rd, v)
                    return v.is_bottom()
        elif op is Opcode.MOV:
            def step(s, rd=instr.rd, rs1=instr.rs1):
                v = s.regs[rs1]
                s.set(rd, v)
                s.set_alias(rd, rs1, 0)
                return v.is_bottom()
        elif op is Opcode.MOVI:
            def step(s, rd=instr.rd, c=const(instr.imm)):
                s.set(rd, c)
                return False
        elif op is Opcode.MOVHI:
            def step(s, rd=instr.rd, mask=const(0xFFFF),
                     high=const(instr.imm << 16)):
                v = s.regs[rd].bitand(mask).bitor(high)
                s.set(rd, v)
                return v.is_bottom()
        elif op is Opcode.CMP:
            def step(s, rs1=instr.rs1, rs2=instr.rs2):
                s.flags = FlagsInfo(s.regs[rs1], s.regs[rs2], rs1, rs2)
                return False
        elif op is Opcode.CMPI:
            def step(s, rs1=instr.rs1, right=const(instr.imm)):
                s.flags = FlagsInfo(s.regs[rs1], right, rs1, None)
                return False
        elif op is Opcode.LDR:
            def step(s, rd=instr.rd, rs1=instr.rs1, c=const(instr.imm)):
                v = s.memory.load(s.regs[rs1].add(c))
                s.set(rd, v)
                return v.is_bottom()
        elif op is Opcode.LDRX:
            def step(s, rd=instr.rd, rs1=instr.rs1, rs2=instr.rs2):
                v = s.memory.load(s.regs[rs1].add(s.regs[rs2]))
                s.set(rd, v)
                return v.is_bottom()
        elif op is Opcode.STR:
            def step(s, rs1=instr.rs1, rs2=instr.rs2, c=const(instr.imm)):
                s.memory.store(s.regs[rs1].add(c), s.regs[rs2])
                return False
        elif op is Opcode.STRX:
            def step(s, rd=instr.rd, rs1=instr.rs1, rs2=instr.rs2):
                s.memory.store(s.regs[rs1].add(s.regs[rs2]), s.regs[rd])
                return False
        elif op is Opcode.PUSH:
            def step(s, instr=instr):
                _transfer_push(s, instr)
                return False
        elif op is Opcode.POP:
            def step(s, instr=instr):
                _transfer_pop(s, instr)
                return False
        elif op in (Opcode.BL, Opcode.BLR):
            def step(s, link=const(instr.address + 4)):
                s.set(LR, link)
                return False
        else:
            continue    # B, BCC, BR, RET, NOP, HALT: no data effect
        steps.append(step)

    def run(state: AbstractState) -> AbstractState:
        current = state.copy()
        if current.is_bottom():
            return current
        for step in steps:
            if step(current):
                break
        return current

    return run


def condition_operator(cond: Cond, left: AbstractValue,
                       right: AbstractValue) -> Optional[str]:
    """The signed operator asserted by ``cond``, or ``None`` when the
    unsigned/signed views may differ for these operands."""
    op = _SIGNED_OPS.get(cond)
    if op is not None:
        return op
    op = _UNSIGNED_OPS.get(cond)
    if op is not None:
        left_lo, _ = left.signed_bounds()
        right_lo, _ = right.signed_bounds()
        if left_lo >= 0 and right_lo >= 0:
            return op
    return None


def evaluate_condition(state: AbstractState,
                       cond: Cond) -> Optional[bool]:
    """Decide the branch condition from the recorded compare, if its
    truth value is the same in all concrete runs."""
    flags = state.flags
    if flags is None:
        return None
    op = condition_operator(cond, flags.left, flags.right)
    if op is None:
        return None
    return flags.left.compare_signed(op, flags.right)


def refine_by_condition(state: AbstractState,
                        cond: Cond) -> AbstractState:
    """The state restricted to executions where ``cond`` holds.

    Returns a bottom state when the condition is infeasible.
    """
    if state.is_bottom():
        return state
    flags = state.flags
    if flags is None:
        return state
    op = condition_operator(cond, flags.left, flags.right)
    if op is None:
        return state
    outcome = flags.left.compare_signed(op, flags.right)
    if outcome is False:
        return AbstractState.bottom_state(state.domain)
    refined = state.copy()
    new_left = flags.left.refine_signed(op, flags.right)
    new_right = flags.right.refine_signed(_SWAPPED[op], flags.left)
    if new_left.is_bottom() or new_right.is_bottom():
        return AbstractState.bottom_state(state.domain)
    if flags.left_reg is not None:
        refined.refine_register(flags.left_reg, new_left)
    if flags.right_reg is not None:
        refined.refine_register(flags.right_reg, new_right)
    refined.flags = FlagsInfo(new_left, new_right, flags.left_reg,
                              flags.right_reg)
    if refined.is_bottom():
        return AbstractState.bottom_state(state.domain)
    return refined
