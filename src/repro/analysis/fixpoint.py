"""Shared WTO fixpoint kernel for the whole analysis pipeline.

Both value analysis (:mod:`repro.analysis.solver`) and cache analysis
(:mod:`repro.cache.analysis`) are chaotic-iteration fixpoints over the
same expanded task graph.  This module provides the one engine both run
on:

* **Weak topological ordering** (Bourdoncle 1993): a hierarchical
  ordering of the graph whose components are the cyclic regions.  On
  reducible graphs the component heads coincide with natural-loop
  headers; irreducible graphs are handled too (any cycle entered other
  than through its head still ends up inside a component).
* **Recursive iteration strategy**: inner components are stabilised
  before the enclosing component is re-entered, and nodes inside a
  component are visited in (weak) topological order.  This eliminates
  the churn of FIFO worklists, which keep re-transferring downstream
  nodes while an upstream loop is still growing.
* **Widening only at component heads** — the minimal set of widening
  points that guarantees termination.
* **Out-state caching**: the transfer of a node is recomputed only when
  its entry state actually changed (tracked by a version counter), so
  stabilisation checks and narrowing passes cost almost no transfers.

The kernel is domain-agnostic: it talks to the abstract domain through
a small :class:`FixpointSemantics` adapter and to the graph through
callables, so it works for abstract machine states, abstract cache
states, and the toy lattices used in its unit tests alike.  All work is
instrumented through :class:`FixpointStats`, which the benchmark
harness (``benchmarks/run_perf.py``) records into
``BENCH_fixpoint.json`` as a regression guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence, Set, Tuple)

#: Safety valve on total transfer evaluations (shared with the value
#: analysis; cache fixpoints are far smaller).
MAX_TRANSFERS = 2_000_000


# -- Instrumentation -----------------------------------------------------------


@dataclass
class FixpointStats:
    """Work counters for one fixpoint run.

    ``transfers`` counts *every* transfer-function evaluation, including
    the ones spent in narrowing passes — unlike the historical FIFO
    solver's counter, which silently ignored narrowing.  This makes the
    number an honest, reproducible cost measure usable as a CI guard.
    """

    transfers: int = 0
    joins: int = 0
    widenings: int = 0
    narrowings: int = 0
    leq_calls: int = 0
    copies: int = 0
    component_iterations: int = 0
    wto_components: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "transfers": self.transfers,
            "joins": self.joins,
            "widenings": self.widenings,
            "narrowings": self.narrowings,
            "leq_calls": self.leq_calls,
            "copies": self.copies,
            "component_iterations": self.component_iterations,
            "wto_components": self.wto_components,
        }

    def __str__(self) -> str:
        return (f"{self.transfers} transfers, {self.joins} joins, "
                f"{self.widenings} widenings, {self.leq_calls} leq")


# -- Weak topological ordering -------------------------------------------------


@dataclass(frozen=True)
class WTOVertex:
    """A trivial (acyclic) element of a weak topological order."""

    node: Any


@dataclass(frozen=True)
class WTOComponent:
    """A cyclic element: head followed by the nested sub-ordering."""

    head: Any
    elements: Tuple[Any, ...]


class WeakTopologicalOrder:
    """Bourdoncle's hierarchical ordering of a directed graph.

    For every edge ``u -> v`` either ``v`` occurs after ``u`` in the
    linearisation, or ``v`` is the head of a component containing
    ``u`` — which is exactly what makes the recursive iteration
    strategy's stabilisation check (head unchanged => component stable)
    sound.
    """

    def __init__(self, elements: Sequence[Any]):
        self.elements: Tuple[Any, ...] = tuple(elements)
        self._heads: Set[Any] = set()
        self._linear: List[Any] = []
        self._component_count = 0
        self._flatten(self.elements)

    def _flatten(self, elements: Iterable[Any]) -> None:
        for element in elements:
            if isinstance(element, WTOVertex):
                self._linear.append(element.node)
            else:
                self._component_count += 1
                self._heads.add(element.head)
                self._linear.append(element.head)
                self._flatten(element.elements)

    @property
    def heads(self) -> Set[Any]:
        """Component heads — the widening points."""
        return self._heads

    def linear_order(self) -> List[Any]:
        """The total order underlying the WTO (heads precede bodies)."""
        return list(self._linear)

    @property
    def component_count(self) -> int:
        return self._component_count

    def __repr__(self) -> str:
        return (f"WeakTopologicalOrder({len(self._linear)} nodes, "
                f"{self._component_count} components)")


def weak_topological_order(entry: Any,
                           successors: Callable[[Any], Iterable[Any]],
                           sort_key: Optional[Callable[[Any], Any]] = None
                           ) -> WeakTopologicalOrder:
    """Compute Bourdoncle's WTO of the graph reachable from ``entry``.

    This is the classic algorithm built on Tarjan's SCC numbering,
    converted to an explicit stack so deep graphs cannot overflow the
    Python recursion limit.  ``sort_key`` fixes the successor visit
    order, making the resulting WTO (and therefore every counter of a
    kernel run) deterministic across runs.
    """
    succs_cache: Dict[Any, List[Any]] = {}

    def succs(v: Any) -> List[Any]:
        cached = succs_cache.get(v)
        if cached is None:
            cached = list(successors(v))
            if sort_key is not None:
                cached.sort(key=sort_key)
            succs_cache[v] = cached
        return cached

    INFINITE = float("inf")
    dfn: Dict[Any, Any] = {}
    num = 0
    vertex_stack: List[Any] = []
    top: List[Any] = []   # top-level partition, built back-to-front

    # Explicit call stack.  A frame is a mutable list:
    #   [node, succ_iterator, head, loop_flag, partition, mode, sub]
    # mode "visit" is Bourdoncle's visit(); mode "component" re-visits
    # the just-popped component members into the fresh ``sub`` list.
    VISIT, COMPONENT = 0, 1
    frames: List[list] = []

    def push_visit(v: Any, partition: List[Any]) -> None:
        nonlocal num
        num += 1
        dfn[v] = num
        vertex_stack.append(v)
        frames.append([v, iter(succs(v)), num, False, partition,
                       VISIT, None])

    push_visit(entry, top)
    returned: Optional[Any] = None
    while frames:
        frame = frames[-1]
        v, it, partition, mode = frame[0], frame[1], frame[4], frame[5]
        if mode == VISIT:
            if returned is not None:
                if returned <= frame[2]:
                    frame[2] = returned
                    frame[3] = True
                returned = None
            descended = False
            for w in it:
                d = dfn.get(w, 0)
                if d == 0:
                    push_visit(w, partition)
                    descended = True
                    break
                if d <= frame[2]:
                    frame[2] = d
                    frame[3] = True
            if descended:
                continue
            head, loop = frame[2], frame[3]
            if head == dfn[v]:
                dfn[v] = INFINITE
                element = vertex_stack.pop()
                if loop:
                    while element != v:
                        dfn[element] = 0
                        element = vertex_stack.pop()
                    frame[1] = iter(succs(v))
                    frame[5] = COMPONENT
                    frame[6] = []
                    continue
                partition.append(WTOVertex(v))
            frames.pop()
            returned = head
        else:
            returned = None   # sub-visit return values are ignored
            sub = frame[6]
            descended = False
            for w in it:
                if dfn.get(w, 0) == 0:
                    push_visit(w, sub)
                    descended = True
                    break
            if descended:
                continue
            sub.reverse()
            partition.append(WTOComponent(v, tuple(sub)))
            frames.pop()
            returned = frame[2]

    top.reverse()
    return WeakTopologicalOrder(top)


# -- Semantics adapter ---------------------------------------------------------


class FixpointSemantics:
    """What the kernel needs to know about an abstract domain.

    Subclasses override the hooks; ``transfer`` must return a *fresh*
    state (it may not mutate its input — both solvers already obey this
    because their transfer functions copy at block boundaries, which is
    O(1) under copy-on-write states).
    """

    #: Whether widening is required for termination (infinite-height
    #: domains).  Finite lattices (abstract caches) leave this False.
    widening: bool = False

    def transfer(self, node: Any, state: Any) -> Any:
        raise NotImplementedError

    def edge_state(self, edge: Any, out_state: Any) -> Optional[Any]:
        """Specialise a node's out-state for one outgoing edge (e.g.
        branch-condition refinement).  ``None`` means the edge is
        infeasible."""
        return out_state

    def join(self, old: Any, new: Any) -> Any:
        return old.join(new)

    def widen(self, old: Any, new: Any) -> Any:
        return old.widen(new)

    def narrow(self, old: Any, new: Any) -> Any:
        return old.narrow(new)

    def leq(self, a: Any, b: Any) -> bool:
        return a.leq(b)

    def is_bottom(self, state: Any) -> bool:
        return state.is_bottom()

    def copy(self, state: Any) -> Any:
        return state.copy()


# -- The kernel ----------------------------------------------------------------


class FixpointKernel:
    """WTO-driven fixpoint iteration with cached out-states.

    Parameters
    ----------
    entry:
        The unique start node; its state is supplied to :meth:`solve`.
    successor_edges / edge_target:
        Graph access.  Edges are opaque to the kernel (the semantics
        adapter interprets them in :meth:`FixpointSemantics.edge_state`).
    predecessor_edges / edge_source:
        Only required for :meth:`narrow` (descending passes).
    widen_delay:
        Joins absorbed at a component head before widening kicks in.
    sort_key:
        Node ordering for deterministic successor visits and WTO
        construction; defaults to the graph's insertion order.
    """

    def __init__(self, entry: Any,
                 successor_edges: Callable[[Any], Iterable[Any]],
                 edge_target: Callable[[Any], Any],
                 semantics: FixpointSemantics, *,
                 widen_delay: int = 0,
                 sort_key: Optional[Callable[[Any], Any]] = None,
                 max_transfers: int = MAX_TRANSFERS,
                 predecessor_edges: Optional[
                     Callable[[Any], Iterable[Any]]] = None,
                 edge_source: Optional[Callable[[Any], Any]] = None):
        self.entry = entry
        self.semantics = semantics
        self.widen_delay = widen_delay
        self.max_transfers = max_transfers
        self._edge_target = edge_target
        self._edge_source = edge_source
        self._predecessor_edges = predecessor_edges
        self._sort_key = sort_key
        if sort_key is None:
            self._succ_edges = successor_edges
        else:
            edge_key = lambda e: sort_key(edge_target(e))
            cache: Dict[Any, List[Any]] = {}

            def sorted_edges(node: Any) -> List[Any]:
                edges = cache.get(node)
                if edges is None:
                    edges = sorted(successor_edges(node), key=edge_key)
                    cache[node] = edges
                return edges
            self._succ_edges = sorted_edges
        # The WTO walks targets of the (already sorted) edge cache, so
        # successors are enumerated and ordered only once per node.
        self.wto = weak_topological_order(
            entry,
            lambda n: [edge_target(e) for e in self._succ_edges(n)])
        self.stats = FixpointStats(wto_components=self.wto.component_count)
        self._entries: Dict[Any, Any] = {}
        self._versions: Dict[Any, int] = {}
        self._out_cache: Dict[Any, Tuple[int, Any]] = {}
        self._head_visits: Dict[Any, int] = {}

    # -- State bookkeeping -------------------------------------------------

    @property
    def entry_states(self) -> Dict[Any, Any]:
        return self._entries

    def _bump(self, node: Any) -> None:
        self._versions[node] = self._versions.get(node, 0) + 1

    def out_state(self, node: Any) -> Optional[Any]:
        """The node's out-state, recomputed only when its entry state
        changed since the last transfer (the version fast path)."""
        entry = self._entries.get(node)
        if entry is None or self.semantics.is_bottom(entry):
            return None
        version = self._versions.get(node, 0)
        cached = self._out_cache.get(node)
        if cached is not None and cached[0] == version:
            return cached[1]
        out = self.semantics.transfer(node, entry)
        self.stats.transfers += 1
        if self.stats.transfers > self.max_transfers:
            raise RuntimeError("fixpoint exceeded transfer budget")
        self._out_cache[node] = (version, out)
        return out

    # -- Ascending phase ---------------------------------------------------

    def solve(self, entry_state: Any) -> Dict[Any, Any]:
        """Run the ascending iteration to a (post-)fixpoint and return
        the entry-state map."""
        self._entries[self.entry] = entry_state
        self._bump(self.entry)
        for element in self.wto.elements:
            self._run_element(element)
        return self._entries

    def _run_element(self, element: Any) -> None:
        if isinstance(element, WTOVertex):
            self._process(element.node)
        else:
            self._stabilize(element)

    def _stabilize(self, component: WTOComponent) -> None:
        """Iterate a component until its head's entry state is stable.

        Every cycle inside the component passes through its head (or
        the head of a nested component, stabilised recursively), so an
        unchanged head entry after a full sweep means the whole
        component is at a fixpoint.
        """
        head = component.head
        while True:
            before = self._versions.get(head, 0)
            self.stats.component_iterations += 1
            self._process(head)
            for element in component.elements:
                self._run_element(element)
            if self._versions.get(head, 0) == before:
                return

    def _process(self, node: Any) -> None:
        out = self.out_state(node)
        if out is None:
            return
        semantics = self.semantics
        heads = self.wto.heads
        for edge in self._succ_edges(node):
            state = semantics.edge_state(edge, out)
            if state is None or semantics.is_bottom(state):
                continue
            target = self._edge_target(edge)
            old = self._entries.get(target)
            if old is None:
                self._entries[target] = semantics.copy(state)
                self.stats.copies += 1
                self._bump(target)
                continue
            new = semantics.join(old, state)
            self.stats.joins += 1
            if semantics.widening and target in heads:
                count = self._head_visits.get(target, 0) + 1
                self._head_visits[target] = count
                if count > self.widen_delay:
                    new = semantics.widen(old, new)
                    self.stats.widenings += 1
            self.stats.leq_calls += 1
            if not semantics.leq(new, old):
                self._entries[target] = new
                self._bump(target)

    # -- Descending phase --------------------------------------------------

    def narrow(self, passes: int,
               entry_inputs: Callable[[Any], List[Any]],
               order: Optional[Sequence[Any]] = None) -> int:
        """Bounded narrowing: recompute each node's entry as the join of
        its predecessors' (cached) out-states, narrowed against the
        ascending result.  Returns the number of passes that changed
        anything.

        Because out-states are cached by entry-state version, a pass
        only pays transfers for nodes whose predecessors actually
        changed — the historical per-edge recomputation is gone.
        """
        if self._predecessor_edges is None or self._edge_source is None:
            raise ValueError("narrowing requires predecessor access")
        semantics = self.semantics
        if order is None:
            order = self.wto.linear_order()
        effective = 0
        for _ in range(passes):
            changed = False
            for node in order:
                current = self._entries.get(node)
                if current is None:
                    continue
                incoming = list(entry_inputs(node))
                for edge in self._predecessor_edges(node):
                    out = self.out_state(self._edge_source(edge))
                    if out is None:
                        continue
                    state = semantics.edge_state(edge, out)
                    if state is None or semantics.is_bottom(state):
                        continue
                    incoming.append(state)
                if not incoming:
                    continue
                joined = incoming[0]
                for other in incoming[1:]:
                    joined = semantics.join(joined, other)
                    self.stats.joins += 1
                narrowed = semantics.narrow(current, joined)
                self.stats.narrowings += 1
                self.stats.leq_calls += 2
                if not (semantics.leq(current, narrowed)
                        and semantics.leq(narrowed, current)):
                    self._entries[node] = narrowed
                    self._bump(node)
                    changed = True
            if not changed:
                break
            effective += 1
        return effective
