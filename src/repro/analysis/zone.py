"""Zone domain: difference-bound matrices over the register file.

The top tier of the paper's value-analysis hierarchy (Section 1):
"upper and lower bounds for their differences, or even more generally,
arbitrary linear constraints between values".  A zone tracks
constraints of the form ``x - y <= c`` between registers (plus a
virtual zero register, which encodes plain bounds), closed under
shortest paths (Floyd-Warshall).

The per-register analyses use the lightweight difference-alias
mechanism of :mod:`repro.analysis.state`; this module provides the full
relational domain for clients that need it (e.g. bounding a loop whose
exit test compares two moving registers), with the same soundness
test discipline as the other domains.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

INF = float("inf")

#: Index of the virtual zero variable.
ZERO = 0


class Zone:
    """A difference-bound matrix over ``n`` variables plus zero.

    ``m[i][j] = c`` encodes ``v_i - v_j <= c`` (with ``v_0 == 0``), so
    ``m[i][0]`` is an upper bound on ``v_i`` and ``m[0][i]`` a negated
    lower bound.  Matrices are kept closed; an inconsistent system is
    *bottom*.
    """

    __slots__ = ("size", "m", "_bottom")

    def __init__(self, num_variables: int,
                 matrix: Optional[List[List[float]]] = None,
                 bottom: bool = False):
        self.size = num_variables + 1
        if matrix is None:
            matrix = [[INF] * self.size for _ in range(self.size)]
            for i in range(self.size):
                matrix[i][i] = 0.0
        self.m = matrix
        self._bottom = bottom

    # -- Construction -------------------------------------------------------

    @classmethod
    def top(cls, num_variables: int) -> "Zone":
        return cls(num_variables)

    @classmethod
    def bottom(cls, num_variables: int) -> "Zone":
        return cls(num_variables, bottom=True)

    def copy(self) -> "Zone":
        return Zone(self.size - 1, [row[:] for row in self.m],
                    self._bottom)

    def is_bottom(self) -> bool:
        return self._bottom

    def is_top(self) -> bool:
        if self._bottom:
            return False
        return all(self.m[i][j] == INF
                   for i in range(self.size)
                   for j in range(self.size) if i != j)

    # -- Constraints --------------------------------------------------------------

    def _check_var(self, var: int) -> int:
        index = var + 1
        if not 1 <= index < self.size:
            raise IndexError(f"variable {var} out of range")
        return index

    def add_difference(self, x: int, y: int, c: float) -> "Zone":
        """Conjoin ``v_x - v_y <= c`` and re-close."""
        if self._bottom:
            return self
        i, j = self._check_var(x), self._check_var(y)
        return self._with_constraint(i, j, c)

    def add_upper(self, x: int, c: float) -> "Zone":
        """Conjoin ``v_x <= c``."""
        if self._bottom:
            return self
        return self._with_constraint(self._check_var(x), ZERO, c)

    def add_lower(self, x: int, c: float) -> "Zone":
        """Conjoin ``v_x >= c``."""
        if self._bottom:
            return self
        return self._with_constraint(ZERO, self._check_var(x), -c)

    def _with_constraint(self, i: int, j: int, c: float) -> "Zone":
        result = self.copy()
        if c < result.m[i][j]:
            result.m[i][j] = c
            result._close_incremental(i, j)
        if any(result.m[k][k] < 0 for k in range(result.size)):
            return Zone.bottom(self.size - 1)
        return result

    def _close_incremental(self, a: int, b: int) -> None:
        m = self.m
        for i in range(self.size):
            if m[i][a] == INF:
                continue
            for j in range(self.size):
                candidate = m[i][a] + m[a][b] + m[b][j]
                if candidate < m[i][j]:
                    m[i][j] = candidate

    def close(self) -> "Zone":
        """Full Floyd-Warshall closure (mainly for tests)."""
        if self._bottom:
            return self
        result = self.copy()
        m = result.m
        for k in range(self.size):
            for i in range(self.size):
                if m[i][k] == INF:
                    continue
                for j in range(self.size):
                    candidate = m[i][k] + m[k][j]
                    if candidate < m[i][j]:
                        m[i][j] = candidate
        if any(m[i][i] < 0 for i in range(result.size)):
            return Zone.bottom(self.size - 1)
        return result

    # -- Assignment transfer --------------------------------------------------------

    def forget(self, x: int) -> "Zone":
        """Havoc variable ``x`` (non-deterministic assignment)."""
        if self._bottom:
            return self
        i = self._check_var(x)
        result = self.copy()
        for k in range(self.size):
            if k != i:
                result.m[i][k] = INF
                result.m[k][i] = INF
        return result

    def assign_constant(self, x: int, c: float) -> "Zone":
        """``v_x := c``."""
        zone = self.forget(x)
        if zone._bottom:
            return zone
        i = zone._check_var(x)
        zone.m[i][ZERO] = c
        zone.m[ZERO][i] = -c
        return zone.close()

    def assign_sum(self, x: int, y: int, c: float) -> "Zone":
        """``v_x := v_y + c`` for distinct ``x != y``."""
        if self._bottom:
            return self
        if x == y:
            return self.shift(x, c)
        zone = self.forget(x)
        i, j = zone._check_var(x), zone._check_var(y)
        zone.m[i][j] = c
        zone.m[j][i] = -c
        return zone.close()

    def shift(self, x: int, c: float) -> "Zone":
        """``v_x := v_x + c``."""
        if self._bottom:
            return self
        i = self._check_var(x)
        result = self.copy()
        for k in range(self.size):
            if k != i:
                if result.m[i][k] != INF:
                    result.m[i][k] += c
                if result.m[k][i] != INF:
                    result.m[k][i] -= c
        return result

    # -- Queries --------------------------------------------------------------------

    def bounds(self, x: int) -> Tuple[float, float]:
        """(lower, upper) bounds of ``v_x`` (may be infinite)."""
        if self._bottom:
            raise ValueError("bounds of bottom zone")
        i = self._check_var(x)
        upper = self.m[i][ZERO]
        lower = -self.m[ZERO][i]
        return (lower if lower != -INF else -INF,
                upper if upper != INF else INF)

    def difference_bounds(self, x: int, y: int) -> Tuple[float, float]:
        """Bounds on ``v_x - v_y``."""
        if self._bottom:
            raise ValueError("bounds of bottom zone")
        i, j = self._check_var(x), self._check_var(y)
        return (-self.m[j][i] if self.m[j][i] != INF else -INF,
                self.m[i][j])

    def satisfies(self, values: Sequence[float]) -> bool:
        """Does a concrete valuation lie in the zone?"""
        if self._bottom:
            return False
        padded = [0.0] + list(values)
        for i in range(self.size):
            for j in range(self.size):
                if self.m[i][j] != INF \
                        and padded[i] - padded[j] > self.m[i][j] + 1e-9:
                    return False
        return True

    # -- Lattice ------------------------------------------------------------------------

    def join(self, other: "Zone") -> "Zone":
        if self._bottom:
            return other.copy()
        if other._bottom:
            return self.copy()
        result = Zone(self.size - 1)
        for i in range(self.size):
            for j in range(self.size):
                result.m[i][j] = max(self.m[i][j], other.m[i][j])
        return result

    def meet(self, other: "Zone") -> "Zone":
        if self._bottom or other._bottom:
            return Zone.bottom(self.size - 1)
        result = Zone(self.size - 1)
        for i in range(self.size):
            for j in range(self.size):
                result.m[i][j] = min(self.m[i][j], other.m[i][j])
        return result.close()

    def widen(self, other: "Zone") -> "Zone":
        """Standard DBM widening: drop constraints the new state does
        not satisfy at least as tightly."""
        if self._bottom:
            return other.copy()
        if other._bottom:
            return self.copy()
        result = Zone(self.size - 1)
        for i in range(self.size):
            for j in range(self.size):
                result.m[i][j] = self.m[i][j] \
                    if other.m[i][j] <= self.m[i][j] else INF
        return result

    def leq(self, other: "Zone") -> bool:
        if self._bottom:
            return True
        if other._bottom:
            return False
        closed = self.close()
        if closed._bottom:
            return True
        return all(closed.m[i][j] <= other.m[i][j]
                   for i in range(self.size)
                   for j in range(self.size))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Zone):
            return NotImplemented
        if self._bottom or other._bottom:
            return self._bottom == other._bottom
        return self.close().m == other.close().m

    def __repr__(self) -> str:
        if self._bottom:
            return "Zone(⊥)"
        parts = []
        for i in range(1, self.size):
            lower, upper = self.bounds(i - 1)
            if lower != -INF or upper != INF:
                parts.append(f"v{i - 1}∈[{lower}, {upper}]")
        return f"Zone({', '.join(parts) or '⊤'})"
