"""The interval domain: "abstract values are intervals that are
guaranteed to contain the exact values" (paper, Section 1).

Intervals are over the signed 32-bit view of a word.  Any operation
whose exact result range would leave the signed 32-bit range wraps on
the hardware, so the transfer function conservatively returns ``top``
in that case — sound and, for embedded control code that does not rely
on deliberate overflow, precise enough (measured in experiment E2).

Widening supports *threshold sets*: the fixpoint engine seeds them with
the comparison constants found in the program, so a loop counter widens
to its tested limit instead of jumping to the type bounds.  This is the
D1 ablation of DESIGN.md.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from .domain import AbstractValue, INT_MAX, INT_MIN, to_signed


class Interval(AbstractValue):
    """A signed interval [lo, hi]; empty (lo > hi) means bottom."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int):
        if lo > hi:
            lo, hi = 1, 0  # canonical bottom
        self.lo = lo
        self.hi = hi

    # -- Constructors --------------------------------------------------------

    @classmethod
    def top(cls) -> "Interval":
        return _TOP

    @classmethod
    def bottom(cls) -> "Interval":
        return _BOTTOM

    @classmethod
    def const(cls, value: int) -> "Interval":
        value = to_signed(value)
        return cls(value, value)

    @classmethod
    def range(cls, low: int, high: int) -> "Interval":
        return cls(max(low, INT_MIN), min(high, INT_MAX))

    @classmethod
    def from_bounds(cls, lo, hi) -> "Interval":
        """Interval from packed (possibly numpy-integer) bounds.

        Converts to Python ints at the boundary so downstream
        arithmetic stays arbitrary-precision instead of silently
        wrapping in fixed-width numpy scalars.
        """
        return cls(int(lo), int(hi))

    # -- Lattice --------------------------------------------------------------

    def is_top(self) -> bool:
        return self.lo == INT_MIN and self.hi == INT_MAX

    def is_bottom(self) -> bool:
        return self.lo > self.hi

    def join(self, other: "Interval") -> "Interval":
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def widen(self, other: "Interval",
              thresholds: Sequence[int] = ()) -> "Interval":
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        lo, hi = self.lo, self.hi
        if other.lo < lo:
            lo = max((t for t in thresholds if t <= other.lo),
                     default=INT_MIN)
        if other.hi > hi:
            hi = min((t for t in thresholds if t >= other.hi),
                     default=INT_MAX)
        return Interval(lo, hi)

    def narrow(self, other: "Interval") -> "Interval":
        """Replace infinite bounds by the refined ones (standard interval
        narrowing)."""
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        lo = other.lo if self.lo == INT_MIN else self.lo
        hi = other.hi if self.hi == INT_MAX else self.hi
        return Interval(lo, hi)

    def leq(self, other: "Interval") -> bool:
        if self.is_bottom():
            return True
        if other.is_bottom():
            return False
        return other.lo <= self.lo and self.hi <= other.hi

    # -- Concretisation --------------------------------------------------------

    def contains(self, value: int) -> bool:
        return self.lo <= to_signed(value) <= self.hi

    def as_constant(self) -> Optional[int]:
        return self.lo if self.lo == self.hi else None

    def signed_bounds(self) -> Tuple[int, int]:
        return (self.lo, self.hi)

    def width(self) -> int:
        """Number of values described (0 for bottom)."""
        return 0 if self.is_bottom() else self.hi - self.lo + 1

    # -- Arithmetic -------------------------------------------------------------

    def _lift(self, other: "Interval", lo: int, hi: int) -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        if lo < INT_MIN or hi > INT_MAX:
            return _TOP  # may wrap on the machine
        return Interval(lo, hi)

    def add(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        return self._lift(other, self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        return self._lift(other, self.lo - other.hi, self.hi - other.lo)

    def mul(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        products = (self.lo * other.lo, self.lo * other.hi,
                    self.hi * other.lo, self.hi * other.hi)
        return self._lift(other, min(products), max(products))

    def bitand(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        a, b = self.as_constant(), other.as_constant()
        if a is not None and b is not None:
            return Interval.const(a & b)
        if self.lo >= 0 and other.lo >= 0:
            return Interval(0, min(self.hi, other.hi))
        if other.lo >= 0:
            return Interval(0, other.hi)
        if self.lo >= 0:
            return Interval(0, self.hi)
        return _TOP

    def bitor(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        a, b = self.as_constant(), other.as_constant()
        if a is not None and b is not None:
            return Interval.const(to_signed(a | b))
        if self.lo >= 0 and other.lo >= 0:
            bound = _next_power_of_two_mask(max(self.hi, other.hi))
            return Interval(0, min(bound, INT_MAX))
        return _TOP

    def bitxor(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        a, b = self.as_constant(), other.as_constant()
        if a is not None and b is not None:
            return Interval.const(to_signed(a ^ b))
        if self.lo >= 0 and other.lo >= 0:
            bound = _next_power_of_two_mask(max(self.hi, other.hi))
            return Interval(0, min(bound, INT_MAX))
        return _TOP

    def shl(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        shifts = _shift_range(other)
        if shifts is None:
            return _TOP
        lo_s, hi_s = shifts
        candidates = [self.lo << lo_s, self.lo << hi_s,
                      self.hi << lo_s, self.hi << hi_s]
        return self._lift(other, min(candidates), max(candidates))

    def shr(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        shifts = _shift_range(other)
        if shifts is None or self.lo < 0:
            # Logical shift of a possibly-negative word reinterprets the
            # sign bit; only constant operands stay precise.
            a, b = self.as_constant(), other.as_constant()
            if a is not None and b is not None:
                return Interval.const(to_signed((a & 0xFFFFFFFF) >> (b & 31)))
            return _TOP
        lo_s, hi_s = shifts
        return Interval(self.lo >> hi_s, self.hi >> lo_s)

    def asr(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        shifts = _shift_range(other)
        if shifts is None:
            return _TOP
        lo_s, hi_s = shifts
        candidates = [self.lo >> lo_s, self.lo >> hi_s,
                      self.hi >> lo_s, self.hi >> hi_s]
        return Interval(min(candidates), max(candidates))

    # -- Comparisons -------------------------------------------------------------

    def refine_signed(self, op: str, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        if op == "<":
            return self.meet(Interval(INT_MIN, other.hi - 1))
        if op == "<=":
            return self.meet(Interval(INT_MIN, other.hi))
        if op == ">":
            return self.meet(Interval(other.lo + 1, INT_MAX))
        if op == ">=":
            return self.meet(Interval(other.lo, INT_MAX))
        if op == "==":
            return self.meet(other)
        if op == "!=":
            constant = other.as_constant()
            if constant is not None:
                if self.lo == constant:
                    return Interval(self.lo + 1, self.hi)
                if self.hi == constant:
                    return Interval(self.lo, self.hi - 1)
            return self
        raise ValueError(f"unknown comparison {op!r}")

    def compare_signed(self, op: str, other: "Interval") -> Optional[bool]:
        if self.is_bottom() or other.is_bottom():
            return None
        if op == "<":
            if self.hi < other.lo:
                return True
            if self.lo >= other.hi:
                return False
            return None
        if op == "<=":
            if self.hi <= other.lo:
                return True
            if self.lo > other.hi:
                return False
            return None
        if op == ">":
            return other.compare_signed("<", self)
        if op == ">=":
            return other.compare_signed("<=", self)
        if op == "==":
            if self.as_constant() is not None \
                    and self.as_constant() == other.as_constant():
                return True
            if self.meet(other).is_bottom():
                return False
            return None
        if op == "!=":
            equal = self.compare_signed("==", other)
            return None if equal is None else not equal
        raise ValueError(f"unknown comparison {op!r}")

    # -- Dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Interval) and self.lo == other.lo
                and self.hi == other.hi)

    def __hash__(self) -> int:
        return hash((Interval, self.lo, self.hi))

    def __repr__(self) -> str:
        if self.is_bottom():
            return "⊥"
        if self.is_top():
            return "⊤"
        if self.lo == self.hi:
            return f"[{self.lo}]"
        lo = "-∞" if self.lo == INT_MIN else str(self.lo)
        hi = "+∞" if self.hi == INT_MAX else str(self.hi)
        return f"[{lo}, {hi}]"


def _shift_range(amount: Interval) -> Optional[Tuple[int, int]]:
    """Usable [lo, hi] shift amounts, or None if out of the 0..31 range
    (hardware masks the amount, which reorders bounds unpredictably)."""
    if amount.lo < 0 or amount.hi > 31:
        constant = amount.as_constant()
        if constant is not None:
            masked = constant & 31
            return (masked, masked)
        return None
    return (amount.lo, amount.hi)


def _next_power_of_two_mask(value: int) -> int:
    """Smallest ``2**k - 1`` covering ``value``."""
    mask = 1
    while mask < value + 1:
        mask <<= 1
    return mask - 1


_TOP = Interval(INT_MIN, INT_MAX)
_BOTTOM = Interval(1, 0)
