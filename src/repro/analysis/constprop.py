"""Constant propagation: the simplest value-analysis variant named in
the paper — "an abstract value is either a single concrete value or the
statement that no information about the value is known" (Section 1).

It exists both as a baseline for the precision ablation (D2) and as a
cheap analysis for quick queries.  All arithmetic follows the concrete
wrapping semantics exactly, since operands are known precisely or not
at all.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .domain import AbstractValue, INT_MAX, INT_MIN, to_signed

_TOP = object()
_BOTTOM = object()


class Const(AbstractValue):
    """Flat lattice: bottom < {every constant} < top."""

    __slots__ = ("_value",)

    def __init__(self, value):
        self._value = value

    @classmethod
    def top(cls) -> "Const":
        return _TOP_VALUE

    @classmethod
    def bottom(cls) -> "Const":
        return _BOTTOM_VALUE

    @classmethod
    def const(cls, value: int) -> "Const":
        return cls(to_signed(value))

    def is_top(self) -> bool:
        return self._value is _TOP

    def is_bottom(self) -> bool:
        return self._value is _BOTTOM

    def join(self, other: "Const") -> "Const":
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        if not self.is_top() and not other.is_top() \
                and self._value == other._value:
            return self
        return _TOP_VALUE

    def meet(self, other: "Const") -> "Const":
        if self.is_top():
            return other
        if other.is_top():
            return self
        if not self.is_bottom() and not other.is_bottom() \
                and self._value == other._value:
            return self
        return _BOTTOM_VALUE

    def widen(self, other: "Const",
              thresholds: Sequence[int] = ()) -> "Const":
        # The flat lattice has finite height; join is a valid widening.
        return self.join(other)

    def leq(self, other: "Const") -> bool:
        if self.is_bottom() or other.is_top():
            return True
        if other.is_bottom() or self.is_top():
            return False
        return self._value == other._value

    def contains(self, value: int) -> bool:
        if self.is_top():
            return True
        if self.is_bottom():
            return False
        return self._value == to_signed(value)

    def as_constant(self) -> Optional[int]:
        if self.is_top() or self.is_bottom():
            return None
        return self._value

    def signed_bounds(self) -> Tuple[int, int]:
        constant = self.as_constant()
        if constant is not None:
            return (constant, constant)
        return (INT_MIN, INT_MAX)

    # -- Arithmetic ----------------------------------------------------------

    def _binop(self, other: "Const", op) -> "Const":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM_VALUE
        if self.is_top() or other.is_top():
            return _TOP_VALUE
        return Const(to_signed(op(self._value, other._value)))

    def add(self, other: "Const") -> "Const":
        return self._binop(other, lambda a, b: a + b)

    def sub(self, other: "Const") -> "Const":
        return self._binop(other, lambda a, b: a - b)

    def mul(self, other: "Const") -> "Const":
        return self._binop(other, lambda a, b: a * b)

    def bitand(self, other: "Const") -> "Const":
        return self._binop(other, lambda a, b: a & b)

    def bitor(self, other: "Const") -> "Const":
        return self._binop(other, lambda a, b: a | b)

    def bitxor(self, other: "Const") -> "Const":
        return self._binop(other, lambda a, b: a ^ b)

    def shl(self, other: "Const") -> "Const":
        return self._binop(other, lambda a, b: a << (b & 31))

    def shr(self, other: "Const") -> "Const":
        return self._binop(
            other, lambda a, b: (a & 0xFFFFFFFF) >> (b & 31))

    def asr(self, other: "Const") -> "Const":
        return self._binop(other, lambda a, b: a >> (b & 31))

    # -- Comparisons -----------------------------------------------------------

    def refine_signed(self, op: str, other: "Const") -> "Const":
        if op == "==" and not self.is_bottom():
            return self.meet(other)
        if op == "!=" and self.as_constant() is not None \
                and self.as_constant() == other.as_constant():
            return _BOTTOM_VALUE
        return self

    def compare_signed(self, op: str, other: "Const") -> Optional[bool]:
        a, b = self.as_constant(), other.as_constant()
        if a is None or b is None:
            return None
        return {"<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b,
                "==": a == b, "!=": a != b}[op]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self._value == other._value \
            if not (self.is_top() or self.is_bottom()) \
            else (isinstance(other, Const) and self._value is other._value)

    def __hash__(self) -> int:
        if self.is_top():
            return hash((Const, "top"))
        if self.is_bottom():
            return hash((Const, "bottom"))
        return hash((Const, self._value))

    def __repr__(self) -> str:
        if self.is_top():
            return "⊤"
        if self.is_bottom():
            return "⊥"
        return f"{{{self._value}}}"


_TOP_VALUE = Const(_TOP)
_BOTTOM_VALUE = Const(_BOTTOM)
