"""Strided intervals: the interval domain refined with a congruence.

The paper's domain hierarchy (Section 1) extends plain intervals with
relational and congruence information.  A strided interval

    {lo + k * stride | k >= 0} ∩ [lo, hi]

captures exactly the value sets produced by scaled array indexing
(``i << 2``, ``i * 8``): a stride-16 access sequence touches only every
fourth word, so the data-cache analysis sees far fewer candidate lines
per access and classifies more of them (ablation A7).

``stride == 0`` means a constant; ``stride == 1`` degenerates to the
plain interval.  All operations are sound over-approximations of the
concrete wrapping semantics (property-tested against random values).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .domain import AbstractValue, INT_MAX, INT_MIN, to_signed


class StridedInterval(AbstractValue):
    """A congruence-refined interval ``lo, lo+s, ..., hi``."""

    __slots__ = ("lo", "hi", "stride")

    def __init__(self, lo: int, hi: int, stride: int = 1):
        if lo > hi:
            self.lo, self.hi, self.stride = 1, 0, 0   # canonical bottom
            return
        stride = abs(stride)
        if stride:
            hi = lo + ((hi - lo) // stride) * stride
        if lo == hi:
            stride = 0
        self.lo = lo
        self.hi = hi
        self.stride = stride

    # -- Constructors ---------------------------------------------------------

    @classmethod
    def top(cls) -> "StridedInterval":
        return _TOP

    @classmethod
    def bottom(cls) -> "StridedInterval":
        return _BOTTOM

    @classmethod
    def const(cls, value: int) -> "StridedInterval":
        value = to_signed(value)
        return cls(value, value, 0)

    @classmethod
    def range(cls, low: int, high: int) -> "StridedInterval":
        return cls(max(low, INT_MIN), min(high, INT_MAX), 1)

    # -- Lattice -----------------------------------------------------------------

    def is_top(self) -> bool:
        return self.lo == INT_MIN and self.hi == INT_MAX \
            and self.stride == 1

    def is_bottom(self) -> bool:
        return self.lo > self.hi

    def _phase_compatible(self, value: int) -> bool:
        if self.stride == 0:
            return value == self.lo
        return (value - self.lo) % self.stride == 0

    def contains(self, value: int) -> bool:
        value = to_signed(value)
        return self.lo <= value <= self.hi \
            and self._phase_compatible(value)

    def as_constant(self) -> Optional[int]:
        return self.lo if self.lo == self.hi and not self.is_bottom() \
            else None

    def signed_bounds(self) -> Tuple[int, int]:
        return (self.lo, self.hi)

    def possible_values(self, limit: int = 64) -> Optional[List[int]]:
        """Explicit enumeration when at most ``limit`` values remain."""
        if self.is_bottom():
            return []
        step = self.stride or 1
        count = (self.hi - self.lo) // step + 1
        if count > limit:
            return None
        return list(range(self.lo, self.hi + 1, step))

    def join(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        stride = math.gcd(math.gcd(self.stride, other.stride),
                          abs(self.lo - other.lo))
        return StridedInterval(min(self.lo, other.lo),
                               max(self.hi, other.hi), stride)

    def meet(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return _BOTTOM
        # Keep the phase of the stricter progression (a sound superset
        # of the true intersection of the two progressions).
        phase_holder = self if self.stride >= other.stride else other
        stride = phase_holder.stride
        if stride:
            offset = (lo - phase_holder.lo) % stride
            if offset:
                lo += stride - offset
            if lo > hi:
                return _BOTTOM
        return StridedInterval(lo, hi, stride)

    def widen(self, other: "StridedInterval",
              thresholds: Sequence[int] = ()) -> "StridedInterval":
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        joined = self.join(other)
        lo, hi = self.lo, self.hi
        if other.lo < lo:
            lo = max((t for t in thresholds if t <= other.lo),
                     default=INT_MIN)
        if other.hi > hi:
            hi = min((t for t in thresholds if t >= other.hi),
                     default=INT_MAX)
        lo = min(lo, joined.lo)
        hi = max(hi, joined.hi)
        # Containment of the join requires the stride to divide the
        # phase shift introduced by the new lower bound.  Strides only
        # shrink (gcd chain) and bounds only jump to thresholds or the
        # type bounds, so widening terminates.
        stride = math.gcd(joined.stride, joined.lo - lo)
        return StridedInterval(lo, hi, stride)

    def narrow(self, other: "StridedInterval") -> "StridedInterval":
        # At narrowing time both operands over-approximate the concrete
        # fixpoint, so their meet does too (passes are bounded).
        return self.meet(other)

    def leq(self, other: "StridedInterval") -> bool:
        if self.is_bottom():
            return True
        if other.is_bottom():
            return False
        if not (other.lo <= self.lo and self.hi <= other.hi):
            return False
        if other.stride == 0:
            return self.lo == other.lo and self.hi == other.hi
        if (self.lo - other.lo) % other.stride:
            return False
        return self.stride % other.stride == 0

    # -- Arithmetic ------------------------------------------------------------------

    def _lift(self, lo: int, hi: int, stride: int) -> "StridedInterval":
        if lo < INT_MIN or hi > INT_MAX:
            return _TOP   # may wrap on the machine
        return StridedInterval(lo, hi, stride)

    def add(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        return self._lift(self.lo + other.lo, self.hi + other.hi,
                          math.gcd(self.stride, other.stride))

    def sub(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        return self._lift(self.lo - other.hi, self.hi - other.lo,
                          math.gcd(self.stride, other.stride))

    def mul(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        products = (self.lo * other.lo, self.lo * other.hi,
                    self.hi * other.lo, self.hi * other.hi)
        lo, hi = min(products), max(products)
        constant = other.as_constant()
        if constant is not None:
            stride = abs(constant) * self.stride
        else:
            constant = self.as_constant()
            if constant is not None:
                stride = abs(constant) * other.stride
            else:
                # x*y = lo1*lo2 + a*s1*lo2 + b*s2*lo1 + ab*s1*s2
                stride = math.gcd(math.gcd(self.stride * other.lo,
                                           other.stride * self.lo),
                                  self.stride * other.stride)
        return self._lift(lo, hi, abs(stride))

    def bitand(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        a, b = self.as_constant(), other.as_constant()
        if a is not None and b is not None:
            return StridedInterval.const(a & b)
        if self.lo >= 0 and other.lo >= 0:
            return StridedInterval(0, min(self.hi, other.hi), 1)
        if other.lo >= 0:
            return StridedInterval(0, other.hi, 1)
        if self.lo >= 0:
            return StridedInterval(0, self.hi, 1)
        return _TOP

    def bitor(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        a, b = self.as_constant(), other.as_constant()
        if a is not None and b is not None:
            return StridedInterval.const(to_signed(a | b))
        if self.lo >= 0 and other.lo >= 0:
            bound = _mask_cover(max(self.hi, other.hi))
            return StridedInterval(0, min(bound, INT_MAX), 1)
        return _TOP

    def bitxor(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        a, b = self.as_constant(), other.as_constant()
        if a is not None and b is not None:
            return StridedInterval.const(to_signed(a ^ b))
        if self.lo >= 0 and other.lo >= 0:
            bound = _mask_cover(max(self.hi, other.hi))
            return StridedInterval(0, min(bound, INT_MAX), 1)
        return _TOP

    def shl(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        shift = other.as_constant()
        if shift is not None:
            shift &= 31
            return self._lift(self.lo << shift, self.hi << shift,
                              self.stride << shift)
        if other.lo < 0 or other.hi > 31:
            return _TOP
        candidates = [self.lo << other.lo, self.lo << other.hi,
                      self.hi << other.lo, self.hi << other.hi]
        return self._lift(min(candidates), max(candidates), 1)

    def shr(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        shift = other.as_constant()
        a = self.as_constant()
        if shift is not None and a is not None:
            return StridedInterval.const(
                to_signed((a & 0xFFFFFFFF) >> (shift & 31)))
        if self.lo < 0 or other.lo < 0 or other.hi > 31:
            return _TOP
        return StridedInterval(self.lo >> other.hi, self.hi >> other.lo,
                               1)

    def asr(self, other: "StridedInterval") -> "StridedInterval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        if other.lo < 0 or other.hi > 31:
            shift = other.as_constant()
            if shift is None:
                return _TOP
            shift &= 31
            return StridedInterval(self.lo >> shift, self.hi >> shift, 1)
        candidates = [self.lo >> other.lo, self.lo >> other.hi,
                      self.hi >> other.lo, self.hi >> other.hi]
        return StridedInterval(min(candidates), max(candidates), 1)

    # -- Comparisons --------------------------------------------------------------------

    def refine_signed(self, op: str,
                      other: "StridedInterval") -> "StridedInterval":
        if self.is_bottom() or other.is_bottom():
            return _BOTTOM
        if op == "<":
            return self.meet(StridedInterval(INT_MIN, other.hi - 1, 1))
        if op == "<=":
            return self.meet(StridedInterval(INT_MIN, other.hi, 1))
        if op == ">":
            return self.meet(StridedInterval(other.lo + 1, INT_MAX, 1))
        if op == ">=":
            return self.meet(StridedInterval(other.lo, INT_MAX, 1))
        if op == "==":
            return self.meet(other)
        if op == "!=":
            constant = other.as_constant()
            if constant is not None:
                if self.lo == constant:
                    step = self.stride or 1
                    return StridedInterval(self.lo + step, self.hi,
                                           self.stride)
                if self.hi == constant:
                    step = self.stride or 1
                    return StridedInterval(self.lo, self.hi - step,
                                           self.stride)
            return self
        raise ValueError(f"unknown comparison {op!r}")

    def compare_signed(self, op: str,
                       other: "StridedInterval") -> Optional[bool]:
        if self.is_bottom() or other.is_bottom():
            return None
        if op == "<":
            if self.hi < other.lo:
                return True
            if self.lo >= other.hi:
                return False
            return None
        if op == "<=":
            if self.hi <= other.lo:
                return True
            if self.lo > other.hi:
                return False
            return None
        if op == ">":
            return other.compare_signed("<", self)
        if op == ">=":
            return other.compare_signed("<=", self)
        if op == "==":
            if self.as_constant() is not None \
                    and self.as_constant() == other.as_constant():
                return True
            if self.meet(other).is_bottom():
                return False
            return None
        if op == "!=":
            equal = self.compare_signed("==", other)
            return None if equal is None else not equal
        raise ValueError(f"unknown comparison {op!r}")

    # -- Dunder -------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, StridedInterval)
                and (self.lo, self.hi, self.stride)
                == (other.lo, other.hi, other.stride))

    def __hash__(self) -> int:
        return hash((StridedInterval, self.lo, self.hi, self.stride))

    def __repr__(self) -> str:
        if self.is_bottom():
            return "⊥"
        if self.is_top():
            return "⊤"
        if self.stride == 0:
            return f"[{self.lo}]"
        lo = "-∞" if self.lo == INT_MIN else str(self.lo)
        hi = "+∞" if self.hi == INT_MAX else str(self.hi)
        suffix = f" s{self.stride}" if self.stride != 1 else ""
        return f"[{lo}, {hi}{suffix}]"


def _mask_cover(value: int) -> int:
    mask = 1
    while mask < value + 1:
        mask <<= 1
    return mask - 1


_TOP = StridedInterval(INT_MIN, INT_MAX, 1)
_BOTTOM = StridedInterval(1, 0)
