"""Value analysis by abstract interpretation (phases 2-3 of aiT).

Domains: constant propagation (:class:`Const`), intervals
(:class:`Interval`), and a relational zone domain
(:mod:`repro.analysis.zone`, optional).  The fixpoint engine, abstract
transfer functions, whole-task value analysis, and loop-bound analysis
live here.
"""

from .constprop import Const
from .domain import AbstractValue, INT_MAX, INT_MIN, to_signed, to_unsigned
from .interval import Interval
from .strided import StridedInterval
from .zone import Zone
from .loopbounds import (LoopBound, LoopBoundAnalysis, analyze_loop_bounds)
from .fixpoint import (FixpointKernel, FixpointSemantics, FixpointStats,
                       WeakTopologicalOrder, WTOComponent, WTOVertex,
                       weak_topological_order)
from .solver import FixpointResult, FixpointSolver, collect_thresholds
from .state import AbstractMemory, AbstractState, FlagsInfo
from .transfer import (compile_block, evaluate_condition,
                       refine_by_condition, transfer_block,
                       transfer_instruction)
from .valueanalysis import (MemoryAccess, PrecisionStats,
                            ValueAnalysisResult, analyze_values)
from .vectorized import AddressSpace, VectorMemory

__all__ = [
    "Const", "AbstractValue", "INT_MAX", "INT_MIN", "to_signed",
    "to_unsigned", "Interval", "StridedInterval", "Zone",
    "LoopBound", "LoopBoundAnalysis", "analyze_loop_bounds",
    "FixpointKernel", "FixpointSemantics", "FixpointStats",
    "WeakTopologicalOrder", "WTOComponent", "WTOVertex",
    "weak_topological_order",
    "FixpointResult", "FixpointSolver", "collect_thresholds",
    "AbstractMemory", "AbstractState", "FlagsInfo",
    "compile_block", "evaluate_condition", "refine_by_condition",
    "transfer_block", "transfer_instruction",
    "MemoryAccess", "PrecisionStats", "ValueAnalysisResult",
    "analyze_values",
    "AddressSpace", "VectorMemory",
]
