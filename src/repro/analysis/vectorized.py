"""Packed-array abstract memory for the interval domain.

:class:`~repro.analysis.state.AbstractMemory` is a dict of per-word
:class:`~repro.analysis.interval.Interval` objects; on realistic tasks
the value fixpoint spends most of its time joining/comparing those
dicts entry by entry.  :class:`VectorMemory` stores the same partial
map as two dense ``int64`` arrays of lower/upper bounds indexed by a
shared :class:`AddressSpace` (word address → slot), with *absent means
top* encoded literally as ``[INT_MIN, INT_MAX]`` — so ``join`` is an
elementwise min/max, ``leq`` one vectorized comparison, and threshold
widening two ``np.searchsorted`` calls.

The equivalence argument, pinned by the lockstep suite in
``tests/test_vectorized_domains.py``:

* absent-as-top is already how the dict implementation *reads* its map
  (``load`` of an untracked word is top, ``leq`` treats absence as top
  on both sides, ``join``/``widen`` drop one-sided words — i.e. join
  them with top), so materialising the top explicitly changes no
  observable result;
* all elementwise kernels special-case empty (bottom) intervals with
  masks, exactly mirroring ``Interval.join``/``widen``/``narrow``/
  ``leq``'s bottom branches;
* bounds are converted back to Python ints at the Interval boundary
  (:meth:`Interval.from_bounds`), so no fixed-width numpy scalar ever
  leaks into the arbitrary-precision transfer arithmetic.

Copy-on-write mirrors ``AbstractMemory``: ``copy`` shares the bound
arrays in O(1), the first mutation materialises private copies, and
``same_entries`` uses array identity as the structural fingerprint.

The packing is interval-specific (two bounds per word), which is why
:func:`~repro.analysis.valueanalysis.analyze_values` only selects this
memory for the :class:`Interval` domain and falls back to the dict
implementation for strided-interval/const/zone domains.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from .domain import INT_MAX, INT_MIN
from .interval import Interval
from .state import WEAK_UPDATE_LIMIT, _align

#: Cached numpy threshold arrays, keyed by the (hashable) threshold
#: tuple the solver passes to every widening call.
_THRESH_CACHE: Dict[Tuple[int, ...], np.ndarray] = {}


def _threshold_array(thresholds: Sequence[int]) -> np.ndarray:
    key = tuple(thresholds)
    cached = _THRESH_CACHE.get(key)
    if cached is None:
        cached = np.array(sorted(key), dtype=np.int64)
        _THRESH_CACHE[key] = cached
    return cached


class AddressSpace:
    """Shared word-address → slot mapping for one analysis run.

    Every :class:`VectorMemory` of the run indexes its bound arrays
    through the same space, so slots line up across states and binary
    operations are pure array ops.  The space only grows (stores to
    previously unseen constant addresses append slots); memories
    created before a growth simply treat the missing tail as top.
    """

    __slots__ = ("slot_of", "addrs", "_addr_cache")

    def __init__(self):
        self.slot_of: Dict[int, int] = {}
        self.addrs: List[int] = []
        self._addr_cache: Optional[np.ndarray] = None

    def slot(self, word: int) -> int:
        """Slot for ``word``, appending a new one if untracked."""
        index = self.slot_of.get(word)
        if index is None:
            index = len(self.addrs)
            self.slot_of[word] = index
            self.addrs.append(word)
            self._addr_cache = None
        return index

    def get(self, word: int) -> Optional[int]:
        return self.slot_of.get(word)

    def addr_array(self) -> np.ndarray:
        if self._addr_cache is None or \
                len(self._addr_cache) != len(self.addrs):
            self._addr_cache = np.array(self.addrs, dtype=np.int64)
        return self._addr_cache

    def __len__(self) -> int:
        return len(self.addrs)


def _padded(arr: np.ndarray, n: int, fill: int) -> np.ndarray:
    """``arr`` extended to ``n`` slots with ``fill`` (top bounds)."""
    if len(arr) == n:
        return arr
    out = np.empty(n, dtype=np.int64)
    out[:len(arr)] = arr
    out[len(arr):] = fill
    return out


class VectorMemory:
    """Drop-in :class:`AbstractMemory` replacement over bound arrays."""

    __slots__ = ("domain", "space", "_lo", "_hi", "_shared")

    #: Class-wide instrumentation, mirroring ``AbstractMemory``.
    copies = 0
    materializations = 0

    def __init__(self, domain: Type[Interval], space: AddressSpace,
                 lo: Optional[np.ndarray] = None,
                 hi: Optional[np.ndarray] = None):
        self.domain = domain
        self.space = space
        if lo is None:
            lo = np.full(len(space), INT_MIN, dtype=np.int64)
            hi = np.full(len(space), INT_MAX, dtype=np.int64)
        self._lo = lo
        self._hi = hi
        self._shared = False

    def copy(self) -> "VectorMemory":
        VectorMemory.copies += 1
        self._shared = True
        clone = VectorMemory(self.domain, self.space, self._lo, self._hi)
        clone._shared = True
        return clone

    def _materialize(self) -> None:
        if self._shared:
            self._lo = self._lo.copy()
            self._hi = self._hi.copy()
            self._shared = False
            VectorMemory.materializations += 1

    def _grow_to(self, n: int) -> None:
        """Ensure at least ``n`` writable slots (geometric growth, so
        seeding thousands of image words stays linear)."""
        cur = len(self._lo)
        if n <= cur:
            self._materialize()
            return
        new_n = max(n, 2 * cur, 16)
        lo = np.full(new_n, INT_MIN, dtype=np.int64)
        hi = np.full(new_n, INT_MAX, dtype=np.int64)
        lo[:cur] = self._lo
        hi[:cur] = self._hi
        if self._shared:
            self._shared = False
            VectorMemory.materializations += 1
        self._lo = lo
        self._hi = hi

    # -- Accesses -------------------------------------------------------------

    def load(self, address: Interval) -> Interval:
        if address.is_bottom():
            return self.domain.bottom()
        constant = address.as_constant()
        if constant is not None:
            slot = self.space.get(_align(constant))
            if slot is None or slot >= len(self._lo):
                return self.domain.top()
            return self.domain.from_bounds(self._lo[slot], self._hi[slot])
        lo, hi = address.signed_bounds()
        if hi - lo > WEAK_UPDATE_LIMIT:
            return self.domain.top()
        get, limit = self.space.get, len(self._lo)
        slots = []
        for word in range(_align(lo), hi + 1, 4):
            slot = get(word)
            if slot is None or slot >= limit:
                return self.domain.top()    # an untracked word is top
            slots.append(slot)
        if not slots:
            return self.domain.bottom()
        idx = np.array(slots, dtype=np.intp)
        los, his = self._lo[idx], self._hi[idx]
        present = los <= his    # bottom entries contribute nothing
        if not present.any():
            return self.domain.bottom()
        return self.domain.from_bounds(los[present].min(),
                                       his[present].max())

    def store(self, address: Interval, value: Interval) -> None:
        if address.is_bottom():
            return
        constant = address.as_constant()
        if constant is not None:
            slot = self.space.slot(_align(constant))
            self._grow_to(slot + 1)
            self._lo[slot] = value.lo
            self._hi[slot] = value.hi
            return
        lo, hi = address.signed_bounds()
        if hi - lo > WEAK_UPDATE_LIMIT:
            self._havoc(lo, hi)
            return
        if value.is_bottom():
            return      # join with bottom leaves every entry unchanged
        get, limit = self.space.get, len(self._lo)
        slots = [slot for word in range(_align(lo), hi + 1, 4)
                 if (slot := get(word)) is not None and slot < limit]
        if not slots:
            return      # nothing tracked in range: keep sharing
        self._materialize()
        idx = np.array(slots, dtype=np.intp)
        los, his = self._lo[idx], self._hi[idx]
        empty = los > his   # join(bottom, v) = v
        self._lo[idx] = np.where(empty, value.lo,
                                 np.minimum(los, value.lo))
        self._hi[idx] = np.where(empty, value.hi,
                                 np.maximum(his, value.hi))

    def seed(self, address: int, value: Interval) -> None:
        """Strong update at a concrete address (entry-state seeding)."""
        slot = self.space.slot(_align(address))
        self._grow_to(slot + 1)
        self._lo[slot] = value.lo
        self._hi[slot] = value.hi

    def _havoc(self, lo: int, hi: int) -> None:
        # The space and the bound arrays grow independently (arrays
        # geometrically, with slack): only the overlap holds entries.
        n = min(len(self._lo), len(self.space))
        addrs = self.space.addr_array()[:n]
        doomed = (addrs >= lo - 3) & (addrs <= hi)
        doomed &= (self._lo[:n] != INT_MIN) | (self._hi[:n] != INT_MAX)
        if not doomed.any():
            return
        self._materialize()
        self._lo[:n][doomed] = INT_MIN
        self._hi[:n][doomed] = INT_MAX

    # -- Lattice ----------------------------------------------------------------

    def same_entries(self, other) -> bool:
        """Structural fingerprint: COW copies share the bound arrays
        until one side mutates, so array identity proves equality."""
        return isinstance(other, VectorMemory) and self._lo is other._lo

    def _aligned(self, other: "VectorMemory"):
        n = max(len(self._lo), len(other._lo))
        return (_padded(self._lo, n, INT_MIN), _padded(self._hi, n, INT_MAX),
                _padded(other._lo, n, INT_MIN), _padded(other._hi, n, INT_MAX))

    def join(self, other: "VectorMemory") -> "VectorMemory":
        if self.same_entries(other):
            return self.copy()
        alo, ahi, blo, bhi = self._aligned(other)
        lo = np.minimum(alo, blo)
        hi = np.maximum(ahi, bhi)
        abot, bbot = alo > ahi, blo > bhi
        if abot.any():
            lo[abot], hi[abot] = blo[abot], bhi[abot]
        if bbot.any():
            lo[bbot], hi[bbot] = alo[bbot], ahi[bbot]
        return VectorMemory(self.domain, self.space, lo, hi)

    def widen(self, other: "VectorMemory",
              thresholds: Sequence[int] = ()) -> "VectorMemory":
        if self.same_entries(other):
            return self.copy()
        alo, ahi, blo, bhi = self._aligned(other)
        ts = _threshold_array(thresholds)
        if len(ts):
            # Largest threshold <= other's bound (else INT_MIN) ...
            idx = np.searchsorted(ts, blo, side="right") - 1
            lo_cand = np.where(idx >= 0, ts[np.maximum(idx, 0)], INT_MIN)
            # ... smallest threshold >= other's bound (else INT_MAX).
            idx = np.searchsorted(ts, bhi, side="left")
            hi_cand = np.where(idx < len(ts),
                               ts[np.minimum(idx, len(ts) - 1)], INT_MAX)
        else:
            lo_cand = np.full_like(alo, INT_MIN)
            hi_cand = np.full_like(ahi, INT_MAX)
        lo = np.where(blo < alo, lo_cand, alo)
        hi = np.where(bhi > ahi, hi_cand, ahi)
        abot, bbot = alo > ahi, blo > bhi
        if abot.any():
            lo[abot], hi[abot] = blo[abot], bhi[abot]
        if bbot.any():
            lo[bbot], hi[bbot] = alo[bbot], ahi[bbot]
        return VectorMemory(self.domain, self.space, lo, hi)

    def narrow(self, other: "VectorMemory") -> "VectorMemory":
        if self.same_entries(other):
            return self.copy()
        alo, ahi, blo, bhi = self._aligned(other)
        lo = np.where(alo == INT_MIN, blo, alo)
        hi = np.where(ahi == INT_MAX, bhi, ahi)
        bot = (alo > ahi) | (blo > bhi) | (lo > hi)
        if bot.any():
            lo[bot], hi[bot] = 1, 0     # canonical bottom
        return VectorMemory(self.domain, self.space, lo, hi)

    def leq(self, other: "VectorMemory") -> bool:
        if self.same_entries(other):
            return True
        alo, ahi, blo, bhi = self._aligned(other)
        ok = (alo > ahi) | ((blo <= bhi) & (blo <= alo) & (ahi <= bhi))
        return bool(ok.all())

    def __len__(self) -> int:
        return int(((self._lo != INT_MIN) | (self._hi != INT_MAX)).sum())

    @property
    def entries(self) -> Dict[int, Interval]:
        """Read-only dict view of the tracked (non-top) words, for
        consumers of the ``AbstractMemory.entries`` API.  Top words are
        omitted — exactly the absent-means-top convention."""
        result: Dict[int, Interval] = {}
        lo, hi = self._lo, self._hi
        tracked = np.nonzero((lo != INT_MIN) | (hi != INT_MAX))[0]
        addrs = self.space.addrs
        for slot in tracked:
            result[addrs[slot]] = self.domain.from_bounds(lo[slot],
                                                          hi[slot])
        return result

    def __repr__(self) -> str:
        return f"VectorMemory({len(self)} tracked words)"
