"""Abstract-domain interface for value analysis.

Value analysis "determines abstract values ... that stand for sets of
concrete values" (paper, Section 1).  The paper names a hierarchy of
domains — constant propagation, intervals, and relational refinements —
all of which implement this interface and plug into the same fixpoint
engine (:mod:`repro.analysis.solver`).

A domain models the *signed 32-bit* view of a KRISC register or memory
word.  All transfer functions must over-approximate the concrete wrapping
semantics defined in :mod:`repro.sim.cpu`; the property-based tests in
``tests/test_domain_soundness.py`` check this against random concrete
values.
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional, Tuple

INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1
WORD_MASK = 0xFFFFFFFF


def to_signed(word: int) -> int:
    """Signed 32-bit view of an unsigned word."""
    word &= WORD_MASK
    return word - (1 << 32) if word & (1 << 31) else word


def to_unsigned(value: int) -> int:
    """Unsigned 32-bit view of a signed value."""
    return value & WORD_MASK


class AbstractValue(abc.ABC):
    """One abstract value: a description of a set of 32-bit words.

    Instances are immutable.  ``bottom`` denotes the empty set (dead
    code); ``top`` denotes all words.
    """

    # -- Lattice -----------------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def top(cls) -> "AbstractValue": ...

    @classmethod
    @abc.abstractmethod
    def bottom(cls) -> "AbstractValue": ...

    @classmethod
    @abc.abstractmethod
    def const(cls, value: int) -> "AbstractValue":
        """The abstraction of the single signed value ``value``."""

    @classmethod
    def range(cls, low: int, high: int) -> "AbstractValue":
        """Abstraction of the signed range [low, high].  Domains that
        cannot express ranges return ``top``."""
        if low == high:
            return cls.const(low)
        return cls.top()

    @abc.abstractmethod
    def is_top(self) -> bool: ...

    @abc.abstractmethod
    def is_bottom(self) -> bool: ...

    @abc.abstractmethod
    def join(self, other: "AbstractValue") -> "AbstractValue": ...

    @abc.abstractmethod
    def meet(self, other: "AbstractValue") -> "AbstractValue": ...

    @abc.abstractmethod
    def widen(self, other: "AbstractValue") -> "AbstractValue":
        """Widening: an upper bound of ``self`` and ``other`` chosen so
        that repeated widening stabilises in finitely many steps."""

    def narrow(self, other: "AbstractValue") -> "AbstractValue":
        """Narrowing: refine a post-widening value.  Default: keep the
        more precise of the two when comparable."""
        return other if other.leq(self) else self

    @abc.abstractmethod
    def leq(self, other: "AbstractValue") -> bool:
        """Partial order: does ``self`` describe a subset of ``other``?"""

    # -- Concretisation ----------------------------------------------------

    @abc.abstractmethod
    def contains(self, value: int) -> bool:
        """Does the concretisation include the signed value ``value``?"""

    def as_constant(self) -> Optional[int]:
        """The single signed value described, if exactly one."""
        return None

    def signed_bounds(self) -> Tuple[int, int]:
        """Sound signed bounds [lo, hi] on the concretisation.

        ``bottom`` has no bounds; callers must check ``is_bottom`` first.
        """
        return (INT_MIN, INT_MAX)

    def possible_values(self, limit: int = 64):
        """Explicit list of all concretisations when at most ``limit``
        remain, else ``None``.  Domains with congruence information
        override this to expose sparse value sets (used by the data
        cache analysis to trim candidate lines)."""
        constant = self.as_constant()
        if constant is not None:
            return [constant]
        return None

    # -- Transfer functions -------------------------------------------------

    @abc.abstractmethod
    def add(self, other: "AbstractValue") -> "AbstractValue": ...

    @abc.abstractmethod
    def sub(self, other: "AbstractValue") -> "AbstractValue": ...

    @abc.abstractmethod
    def mul(self, other: "AbstractValue") -> "AbstractValue": ...

    @abc.abstractmethod
    def bitand(self, other: "AbstractValue") -> "AbstractValue": ...

    @abc.abstractmethod
    def bitor(self, other: "AbstractValue") -> "AbstractValue": ...

    @abc.abstractmethod
    def bitxor(self, other: "AbstractValue") -> "AbstractValue": ...

    @abc.abstractmethod
    def shl(self, other: "AbstractValue") -> "AbstractValue": ...

    @abc.abstractmethod
    def shr(self, other: "AbstractValue") -> "AbstractValue":
        """Logical (unsigned) right shift."""

    @abc.abstractmethod
    def asr(self, other: "AbstractValue") -> "AbstractValue":
        """Arithmetic (sign-preserving) right shift."""

    # -- Comparison refinement ----------------------------------------------

    def refine_signed(self, op: str, other: "AbstractValue"
                      ) -> "AbstractValue":
        """Refine ``self`` under the assumption ``self <op> other``
        (signed), where ``op`` is one of ``< <= > >= == !=``.

        The default implementation returns ``self`` (no refinement),
        which is always sound.
        """
        return self

    def compare_signed(self, op: str, other: "AbstractValue"
                       ) -> Optional[bool]:
        """Decide ``self <op> other`` if it has the same truth value for
        all concretisations; ``None`` if undecided.  Used to detect
        conditions that "always evaluate to true or always evaluate to
        false" (paper, Section 3)."""
        return None


class DomainError(ValueError):
    """An abstract operation was applied to incompatible values."""
