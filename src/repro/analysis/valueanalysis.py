"""Whole-task value analysis (phase 2 of the aiT pipeline).

Runs the fixpoint engine over the expanded task graph and derives the
artifacts the later phases need:

* per-point abstract states (registers and memory),
* **address ranges of every memory access** — "possible addresses of
  indirect memory accesses — important for cache analysis" (Section 3),
* **infeasible edges** from conditions that always evaluate the same
  way — such paths "need not be determined in the first place",
* stack-pointer bounds for StackAnalyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from ..cfg.expand import NodeId, TaskEdge, TaskGraph
from ..domainimpl import resolve_domain_impl
from ..isa.instructions import Instruction, Opcode
from ..isa.registers import SP
from .domain import AbstractValue
from .interval import Interval
from .solver import (DEFAULT_NARROWING_PASSES, DEFAULT_WIDEN_DELAY,
                     FixpointResult, FixpointSolver)
from .state import AbstractState
from .transfer import (evaluate_condition, refine_by_condition,
                       transfer_instruction)
from .vectorized import AddressSpace, VectorMemory


@dataclass(frozen=True)
class MemoryAccess:
    """One dynamic memory reference site with its abstract address."""

    node: NodeId
    index: int                 # instruction index within the block
    instruction: Instruction
    address: AbstractValue
    is_load: bool

    @property
    def is_exact(self) -> bool:
        """Is the address determined exactly (a single word)?"""
        return self.address.as_constant() is not None

    @property
    def byte_range(self) -> Tuple[int, int]:
        """Sound [lo, hi] byte-address bounds of the access."""
        return self.address.signed_bounds()

    @property
    def span(self) -> int:
        """Width of the address uncertainty in bytes (0 when exact)."""
        lo, hi = self.byte_range
        return hi - lo


@dataclass
class PrecisionStats:
    """Experiment E2's measurement: how well are addresses determined?"""

    exact: int = 0      # single concrete address
    bounded: int = 0    # non-trivial range
    unknown: int = 0    # top

    @property
    def total(self) -> int:
        return self.exact + self.bounded + self.unknown

    @property
    def exact_ratio(self) -> float:
        return self.exact / self.total if self.total else 1.0


class ValueAnalysisResult:
    """Value analysis output consumed by the cache, path, and stack
    analyses."""

    def __init__(self, graph: TaskGraph, fixpoint: FixpointResult,
                 domain: Type[AbstractValue]):
        self.graph = graph
        self.fixpoint = fixpoint
        self.domain = domain
        self.accesses: List[MemoryAccess] = []
        self.infeasible_edges: List[TaskEdge] = []
        self.condition_outcomes: Dict[NodeId, Optional[bool]] = {}
        self._derive()

    # -- Derivation -------------------------------------------------------------

    def _derive(self) -> None:
        graph = self.graph
        for node in graph.nodes():
            state = self.fixpoint.state_at(node)
            if state is None or state.is_bottom():
                continue
            out_state = self._walk_block(node, state)
            self._classify_edges(node, out_state)

    def _walk_block(self, node: NodeId,
                    entry: AbstractState) -> AbstractState:
        state = entry.copy()
        for index, instr in enumerate(self.graph.blocks[node]):
            self._record_accesses(node, index, instr, state)
            state = transfer_instruction(state, instr)
            if state.is_bottom():
                break
        return state

    def _record_accesses(self, node: NodeId, index: int,
                         instr: Instruction, state: AbstractState) -> None:
        domain = state.domain
        op = instr.opcode
        if op in (Opcode.LDR, Opcode.STR):
            address = state.get(instr.rs1).add(domain.const(instr.imm))
            self.accesses.append(MemoryAccess(
                node, index, instr, address, op is Opcode.LDR))
        elif op in (Opcode.LDRX, Opcode.STRX):
            address = state.get(instr.rs1).add(state.get(instr.rs2))
            self.accesses.append(MemoryAccess(
                node, index, instr, address, op is Opcode.LDRX))
        elif op is Opcode.PUSH:
            count = len(instr.reglist)
            base = state.stack_pointer.sub(domain.const(4 * count))
            for slot in range(count):
                self.accesses.append(MemoryAccess(
                    node, index, instr,
                    base.add(domain.const(4 * slot)), False))
        elif op is Opcode.POP:
            base = state.stack_pointer
            for slot in range(len(instr.reglist)):
                self.accesses.append(MemoryAccess(
                    node, index, instr,
                    base.add(domain.const(4 * slot)), True))

    def _classify_edges(self, node: NodeId,
                        out_state: AbstractState) -> None:
        cond_edges = [e for e in self.graph.successors(node)
                      if e.cond is not None]
        if not cond_edges:
            return
        block = self.graph.blocks[node]
        branch_cond = block.last.cond
        outcome = evaluate_condition(out_state, branch_cond) \
            if branch_cond is not None else None
        self.condition_outcomes[node] = outcome
        for edge in cond_edges:
            refined = refine_by_condition(out_state, edge.cond)
            if refined.is_bottom():
                self.infeasible_edges.append(edge)

    # -- Queries ---------------------------------------------------------------------

    def state_before(self, node: NodeId,
                     index: int) -> Optional[AbstractState]:
        """Abstract state immediately before instruction ``index`` of
        ``node`` (recomputed on demand from the block entry state)."""
        entry = self.fixpoint.state_at(node)
        if entry is None:
            return None
        state = entry.copy()
        for i, instr in enumerate(self.graph.blocks[node]):
            if i == index:
                return state
            state = transfer_instruction(state, instr)
        raise IndexError(f"block {node!r} has no instruction {index}")

    def state_after_block(self, node: NodeId) -> Optional[AbstractState]:
        entry = self.fixpoint.state_at(node)
        if entry is None:
            return None
        return self._walk_block(node, entry)

    def sp_bounds(self, node: NodeId) -> Optional[Tuple[int, int]]:
        """Stack-pointer bounds at block entry."""
        state = self.fixpoint.state_at(node)
        if state is None or state.is_bottom():
            return None
        return state.get(SP).signed_bounds()

    def precision(self) -> PrecisionStats:
        """Address-determination statistics over all accesses (E2)."""
        stats = PrecisionStats()
        for access in self.accesses:
            if access.is_exact:
                stats.exact += 1
            elif access.address.is_top():
                stats.unknown += 1
            else:
                stats.bounded += 1
        return stats

    def is_edge_feasible(self, edge: TaskEdge) -> bool:
        if not self.fixpoint.reachable(edge.source):
            return False
        return edge not in self.infeasible_edges

    def reachable_nodes(self) -> List[NodeId]:
        return [node for node in self.graph.nodes()
                if self.fixpoint.reachable(node)]


def analyze_values(graph: TaskGraph,
                   domain: Type[AbstractValue] = Interval,
                   register_ranges: Optional[
                       Dict[int, Tuple[int, int]]] = None,
                   widen_delay: int = DEFAULT_WIDEN_DELAY,
                   narrowing_passes: int = DEFAULT_NARROWING_PASSES,
                   use_widening_thresholds: bool = True,
                   strategy: str = "wto",
                   memory_ranges: Optional[
                       Dict[int, Tuple[int, int]]] = None,
                   domain_impl: Optional[str] = None,
                   program=None
                   ) -> ValueAnalysisResult:
    """Run value analysis on a task (phase 2 of the aiT pipeline).

    ``register_ranges`` corresponds to aiT's annotations constraining
    input registers at task entry; ``memory_ranges`` constrains memory
    words the environment writes before the task runs (input buffers),
    overriding the values the binary image happens to contain.
    ``strategy`` selects the fixpoint engine: the shared WTO kernel
    (default) or the legacy FIFO worklist (kept for differential
    testing and benchmarking).  ``domain_impl`` selects the domain
    implementation (:mod:`repro.domainimpl`); the packed-array memory
    and compiled block transfers are interval-specific, so other
    domains always run the pure-Python reference implementation.
    ``program`` supplies the binary whose image seeds the entry state;
    it defaults to the graph's own program but MUST be passed when the
    graph may come from a cache keyed on a code slice
    (:meth:`repro.isa.program.Program.reachable_slice`) — the cached
    graph then embeds a predecessor binary whose data sections may be
    stale.
    """
    impl = resolve_domain_impl(domain_impl)
    if domain is not Interval:
        impl = "python"     # VectorMemory packs exactly two bounds/word
    if program is None:
        program = graph.binary.program
    memory = VectorMemory(domain, AddressSpace()) \
        if impl == "numpy" else None
    entry_state = AbstractState.entry_state(
        domain, program.memory_map.stack_base, program.initial_memory(),
        register_ranges, memory_ranges, memory=memory)
    solver = FixpointSolver(graph, widen_delay, narrowing_passes,
                            use_widening_thresholds, strategy=strategy,
                            compiled_transfer=(impl == "numpy"
                                               and strategy == "wto"))
    fixpoint = solver.solve(entry_state)
    return ValueAnalysisResult(graph, fixpoint, domain)
