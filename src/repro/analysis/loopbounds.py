"""Loop bound analysis (phase 3 of the aiT pipeline).

"Loop bound analysis determines upper bounds for the number of
iterations of simple loops" (Section 3).  Two methods are combined:

* **Affine pattern analysis** — the classic "simple loop" case: a
  counter register updated by a constant step exactly once per
  iteration and compared against a loop-invariant limit.  The bound
  follows in closed form from the value analysis intervals of the
  initial value and the limit.  Triangular loops fall out naturally:
  the inner limit is an interval covering the outer counter.
* **Abstract unrolling** — fallback for innermost loops that do not
  match the pattern: iterate the loop body abstractly without joining
  until the back edge becomes infeasible (or a budget is exhausted).

Loops neither method can bound are reported unbounded; the WCET driver
then requires a user annotation (as aiT does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..cfg.expand import NodeId, TaskEdge, TaskGraph
from ..cfg.loops import Loop
from ..isa.instructions import Instruction, Opcode
from .state import AbstractState
from .transfer import (condition_operator, refine_by_condition,
                       transfer_block)
from .valueanalysis import ValueAnalysisResult

#: Iteration budget for the abstract-unrolling fallback.
DEFAULT_UNROLL_LIMIT = 1024


@dataclass(frozen=True)
class LoopBound:
    """Maximum executions of the loop header per entry into the loop."""

    header: NodeId
    max_iterations: Optional[int]   # None = could not be bounded
    method: str                     # "affine" | "unroll" | "annotation" | "none"

    @property
    def is_bounded(self) -> bool:
        return self.max_iterations is not None


class LoopBoundAnalysis:
    """Derives per-loop iteration bounds from value-analysis results."""

    def __init__(self, values: ValueAnalysisResult,
                 manual_bounds: Optional[Dict[int, int]] = None,
                 unroll_limit: int = DEFAULT_UNROLL_LIMIT):
        self.values = values
        self.graph = values.graph
        self.manual_bounds = dict(manual_bounds or {})
        self.unroll_limit = unroll_limit

    def analyze(self) -> Dict[NodeId, LoopBound]:
        bounds: Dict[NodeId, LoopBound] = {}
        for loop in self.values.fixpoint.loop_forest:
            bounds[loop.header] = self._bound_loop(loop)
        return bounds

    # -- Per-loop -----------------------------------------------------------

    def _bound_loop(self, loop: Loop) -> LoopBound:
        manual = self.manual_bounds.get(loop.header.block)
        if manual is not None:
            # Annotations state the full iteration count of the source
            # loop.  Under a peeling policy this loop object is the
            # steady-state copy, whose peeled first iterations execute
            # outside it — the bound here covers only the remainder.
            peeled = loop.header.context.peel_of(loop.header.block)
            return LoopBound(loop.header, max(manual - peeled, 0),
                             "annotation")
        header_state = self.values.fixpoint.state_at(loop.header)
        if header_state is None or header_state.is_bottom():
            # Value analysis proved the loop unreachable: it runs zero
            # iterations in every execution.
            return LoopBound(loop.header, 0, "infeasible")
        affine = self._affine_bound(loop)
        if affine is not None:
            return LoopBound(loop.header, affine, "affine")
        if not loop.children:
            unrolled = self._unroll_bound(loop)
            if unrolled is not None:
                return LoopBound(loop.header, unrolled, "unroll")
        return LoopBound(loop.header, None, "none")

    # -- Affine pattern -------------------------------------------------------

    def _affine_bound(self, loop: Loop) -> Optional[int]:
        if len(loop.back_edges) != 1:
            return None
        latch, header = loop.back_edges[0]
        back_edge = self._edge_between(latch, header)
        if back_edge is None or back_edge.cond is None:
            return None

        latch_block = self.graph.blocks[latch]
        latch_entry = self.values.fixpoint.state_at(latch)
        if latch_entry is None or latch_entry.is_bottom():
            return None
        latch_out = transfer_block(latch_entry, latch_block)
        flags = latch_out.flags
        if flags is None:
            return None
        op = condition_operator(back_edge.cond, flags.left, flags.right)
        if op is None:
            return None

        counter, limit_value, op = self._orient(flags, op)
        if counter is None:
            return None
        step, def_site = self._find_step(loop, counter)
        if step is None:
            return None
        if not self._limit_invariant(loop, flags, counter):
            return None

        init = self._initial_interval(loop, counter)
        if init is None:
            return None
        init_lo, init_hi = init
        limit_lo, limit_hi = limit_value.signed_bounds()
        delta = step if self._def_precedes_compare(
            loop, latch, def_site, counter) else 0
        return _affine_trip_count(op, step, delta, init_lo, init_hi,
                                  limit_lo, limit_hi)

    def _edge_between(self, source: NodeId,
                      target: NodeId) -> Optional[TaskEdge]:
        for edge in self.graph.successors(source):
            if edge.target == target:
                return edge
        return None

    def _orient(self, flags, op: str):
        """Return (counter_reg, limit_abstract_value, oriented_op) so the
        condition reads ``counter <op> limit``."""
        if flags.left_reg is not None and flags.right_reg is None:
            return flags.left_reg, flags.right, op
        if flags.right_reg is not None and flags.left_reg is None:
            swapped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                       "==": "==", "!=": "!="}[op]
            return flags.right_reg, flags.left, swapped
        if flags.left_reg is not None and flags.right_reg is not None:
            # Register-register compare: the counter is whichever side is
            # updated inside the loop; decided by the caller via
            # _find_step on the left first, then the right.
            return flags.left_reg, flags.right, op
        return None, None, op

    def _register_defs(self, loop: Loop, reg: int
                       ) -> List[Tuple[NodeId, int, Instruction]]:
        """Definitions of ``reg`` along the loop, for the counter check.

        Writes inside *called functions* are ignored for callee-saved
        registers: like aiT, the analysis assumes the calling
        convention, under which a callee restores R4-R11 before
        returning (the simulator's shadow-stack check guards the
        analogous LR assumption).
        """
        from ..isa.registers import is_callee_saved

        header_function = self.graph.function_of[loop.header]
        defs = []
        for node in loop.body:
            if is_callee_saved(reg) \
                    and self.graph.function_of[node] != header_function:
                continue
            for index, instr in enumerate(self.graph.blocks[node]):
                if reg in instr.written_registers():
                    defs.append((node, index, instr))
        return defs

    def _find_step(self, loop: Loop,
                   counter: int) -> Tuple[Optional[int],
                                          Optional[Tuple[NodeId, int]]]:
        """The constant per-iteration step of ``counter``, if the loop
        updates it by exactly one ``ADDI/SUBI counter, counter, #c``."""
        defs = self._register_defs(loop, counter)
        if len(defs) != 1:
            return None, None
        node, index, instr = defs[0]
        if instr.opcode is Opcode.ADDI and instr.rd == instr.rs1 == counter:
            step = instr.imm
        elif instr.opcode is Opcode.SUBI \
                and instr.rd == instr.rs1 == counter:
            step = -instr.imm
        else:
            return None, None
        if step == 0:
            return None, None
        # The update must happen on every path around the loop.
        if not self._on_every_iteration(loop, node):
            return None, None
        return step, (node, index)

    def _on_every_iteration(self, loop: Loop, node: NodeId) -> bool:
        """Does every header-to-back-edge path pass through ``node``?

        Checked by searching for a path from header to any latch that
        avoids ``node`` inside the loop body.
        """
        if node == loop.header:
            return True
        latches = {latch for latch, _ in loop.back_edges}
        stack = [loop.header]
        seen = {loop.header, node}
        while stack:
            current = stack.pop()
            if current in latches and current != node:
                return False
            for edge in self.graph.successors(current):
                target = edge.target
                if target in loop.body and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return True

    def _limit_invariant(self, loop: Loop, flags, counter: int) -> bool:
        other = flags.right_reg if flags.left_reg == counter \
            else flags.left_reg
        if other is None:
            return True  # constant limit
        return not self._register_defs(loop, other)

    def _initial_interval(self, loop: Loop,
                          counter: int) -> Optional[Tuple[int, int]]:
        """Interval of the counter on entry to the loop (outside edges)."""
        lo = hi = None
        if loop.header == self.graph.entry:
            entry_state = self.values.fixpoint.task_entry_state
            if entry_state is not None and not entry_state.is_bottom():
                lo, hi = entry_state.get(counter).signed_bounds()
        for edge in self.graph.predecessors(loop.header):
            if edge.source in loop.body:
                continue
            source_state = self.values.fixpoint.state_at(edge.source)
            if source_state is None or source_state.is_bottom():
                continue
            out = transfer_block(source_state,
                                 self.graph.blocks[edge.source])
            if edge.cond is not None:
                out = refine_by_condition(out, edge.cond)
            if out.is_bottom():
                continue
            value_lo, value_hi = out.get(counter).signed_bounds()
            lo = value_lo if lo is None else min(lo, value_lo)
            hi = value_hi if hi is None else max(hi, value_hi)
        if lo is None:
            return None
        return lo, hi

    def _def_precedes_compare(self, loop: Loop, latch: NodeId,
                              def_site: Tuple[NodeId, int],
                              counter: int) -> bool:
        """True if the counter update executes before the latch compare
        within one iteration (affects the first tested value)."""
        def_node, def_index = def_site
        if def_node != latch:
            # Update in an earlier block: on every path it precedes the
            # latch's compare.
            return True
        compare_index = self._last_compare_index(latch)
        return def_index < compare_index

    def _last_compare_index(self, node: NodeId) -> int:
        block = self.graph.blocks[node]
        last = 0
        for index, instr in enumerate(block):
            if instr.opcode in (Opcode.CMP, Opcode.CMPI):
                last = index
        return last

    # -- Abstract unrolling -----------------------------------------------------

    def _unroll_bound(self, loop: Loop) -> Optional[int]:
        """Iterate the loop abstractly, without joining across
        iterations, until the back edges die; exact for loops whose exit
        depends deterministically on analysable state."""
        header_state = self._entry_state(loop)
        if header_state is None:
            return None
        body_order = [node for node in self.graph.topological_order()
                      if node in loop.body]
        latches = {latch for latch, _ in loop.back_edges}

        iterations = 0
        while header_state is not None:
            iterations += 1
            if iterations > self.unroll_limit:
                return None
            header_state = self._iterate_once(
                loop, header_state, body_order, latches)
        return iterations

    def _entry_state(self, loop: Loop) -> Optional[AbstractState]:
        joined: Optional[AbstractState] = None
        if loop.header == self.graph.entry:
            entry_state = self.values.fixpoint.task_entry_state
            if entry_state is not None and not entry_state.is_bottom():
                joined = entry_state
        for edge in self.graph.predecessors(loop.header):
            if edge.source in loop.body:
                continue
            source_state = self.values.fixpoint.state_at(edge.source)
            if source_state is None or source_state.is_bottom():
                continue
            out = transfer_block(source_state,
                                 self.graph.blocks[edge.source])
            if edge.cond is not None:
                out = refine_by_condition(out, edge.cond)
            if out.is_bottom():
                continue
            joined = out if joined is None else joined.join(out)
        return joined

    def _iterate_once(self, loop: Loop, header_state: AbstractState,
                      body_order: List[NodeId],
                      latches: Set[NodeId]) -> Optional[AbstractState]:
        """Propagate one iteration through the (acyclic) body; return the
        next header state via back edges, or None if the loop must exit."""
        states: Dict[NodeId, AbstractState] = {loop.header: header_state}
        next_header: Optional[AbstractState] = None
        for node in body_order:
            state = states.get(node)
            if state is None or state.is_bottom():
                continue
            out = transfer_block(state, self.graph.blocks[node])
            if out.is_bottom():
                continue
            for edge in self.graph.successors(node):
                if edge.target == loop.header and node in latches:
                    refined = out if edge.cond is None else \
                        refine_by_condition(out, edge.cond)
                    if not refined.is_bottom():
                        next_header = refined if next_header is None \
                            else next_header.join(refined)
                    continue
                if edge.target not in loop.body:
                    continue
                refined = out if edge.cond is None else \
                    refine_by_condition(out, edge.cond)
                if refined.is_bottom():
                    continue
                existing = states.get(edge.target)
                states[edge.target] = refined if existing is None \
                    else existing.join(refined)
        return next_header


def _affine_trip_count(op: str, step: int, delta: int, init_lo: int,
                       init_hi: int, limit_lo: int,
                       limit_hi: int) -> Optional[int]:
    """Closed-form maximum header executions for an affine loop.

    The back edge is taken at the k-th test iff
    ``first_tested + (k-1)*step <op> limit`` can hold, where
    ``first_tested = init + delta``.  Header executions = takes + 1.

    Endpoints at the type bounds mean "unknown", not a usable bound:
    a counter starting anywhere would formally terminate within 2**32
    steps, but reporting that would be useless — aiT reports such loops
    as unbounded and asks for an annotation instead.
    """
    from .domain import INT_MAX, INT_MIN

    if op in ("<", "<="):
        if step <= 0:
            return None
        if init_lo == INT_MIN or limit_hi == INT_MAX:
            return None
        threshold = limit_hi - (1 if op == "<" else 0)
        first = init_lo + delta
        if first > threshold:
            return 1
        takes = (threshold - first) // step + 1
        return takes + 1
    if op in (">", ">="):
        if step >= 0:
            return None
        if init_hi == INT_MAX or limit_lo == INT_MIN:
            return None
        threshold = limit_lo + (1 if op == ">" else 0)
        first = init_hi + delta
        if first < threshold:
            return 1
        takes = (first - threshold) // (-step) + 1
        return takes + 1
    if op == "!=":
        if init_lo != init_hi or limit_lo != limit_hi:
            return None
        distance = limit_lo - (init_lo + delta)
        if step != 0 and distance % step == 0 and distance // step >= 0:
            return distance // step + 1
        return None
    return None


def analyze_loop_bounds(values: ValueAnalysisResult,
                        manual_bounds: Optional[Dict[int, int]] = None,
                        unroll_limit: int = DEFAULT_UNROLL_LIMIT
                        ) -> Dict[NodeId, LoopBound]:
    """Bound every loop of the task (phase 3 of the aiT pipeline)."""
    return LoopBoundAnalysis(values, manual_bounds, unroll_limit).analyze()
