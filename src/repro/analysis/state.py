"""Abstract machine states: registers, compare flags, and memory.

A state maps every processor resource to an abstract value from a
chosen domain — "value analysis ... tries to determine the values
stored in the processor's memory for every program point" (paper,
Section 1).

Memory is a partial map from concrete word addresses to abstract
values; an absent address means *top* (any word).  Initial contents are
seeded from the program image, stores with exactly-known addresses are
strong updates, small address ranges are weak updates, and anything
larger havocs the affected range — each case sound with respect to the
concrete semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from ..isa.registers import NUM_REGISTERS, SP
from .domain import AbstractValue

#: Address ranges wider than this many bytes are not enumerated for
#: weak updates; the whole overlapped range is havocked instead.
WEAK_UPDATE_LIMIT = 4096


@dataclass(frozen=True)
class FlagsInfo:
    """Provenance of the current condition flags: the last compare.

    ``left_reg``/``right_reg`` name the registers that were compared (if
    still valid — a register write invalidates the link), and ``left``/
    ``right`` are the abstract operand values at compare time.
    """

    left: AbstractValue
    right: AbstractValue
    left_reg: Optional[int] = None
    right_reg: Optional[int] = None

    def invalidate_register(self, reg: int) -> "FlagsInfo":
        """Drop register links after ``reg`` is overwritten."""
        if reg not in (self.left_reg, self.right_reg):
            return self
        return FlagsInfo(
            self.left, self.right,
            None if self.left_reg == reg else self.left_reg,
            None if self.right_reg == reg else self.right_reg)


class AbstractMemory:
    """Partial map from word addresses to abstract values (absent=top).

    Copies are copy-on-write: :meth:`copy` shares the entry dict with
    the original in O(1) and the first mutating operation on either
    side materialises a private dict.  ``entries`` may therefore be
    *read* freely but must never be mutated from outside this class.
    """

    __slots__ = ("domain", "entries", "_shared")

    #: Class-wide instrumentation: COW copies handed out and the number
    #: that actually had to materialise a private dict.  Recorded by
    #: ``benchmarks/run_perf.py`` alongside the state-level counters.
    copies = 0
    materializations = 0

    def __init__(self, domain: Type[AbstractValue],
                 entries: Optional[Dict[int, AbstractValue]] = None):
        self.domain = domain
        self.entries = entries if entries is not None else {}
        self._shared = False

    def copy(self) -> "AbstractMemory":
        AbstractMemory.copies += 1
        self._shared = True
        clone = AbstractMemory(self.domain, self.entries)
        clone._shared = True
        return clone

    def _materialize(self) -> None:
        """Give this memory a private entry dict before mutating."""
        if self._shared:
            self.entries = dict(self.entries)
            self._shared = False
            AbstractMemory.materializations += 1

    # -- Accesses -------------------------------------------------------------

    def load(self, address: AbstractValue) -> AbstractValue:
        """Abstract value read through an abstract address."""
        if address.is_bottom():
            return self.domain.bottom()
        constant = address.as_constant()
        if constant is not None:
            return self.entries.get(_align(constant), self.domain.top())
        lo, hi = address.signed_bounds()
        if hi - lo > WEAK_UPDATE_LIMIT:
            return self.domain.top()
        result = self.domain.bottom()
        for word in range(_align(lo), hi + 1, 4):
            value = self.entries.get(word)
            if value is None:
                return self.domain.top()
            result = result.join(value)
        return result

    def store(self, address: AbstractValue, value: AbstractValue) -> None:
        """Abstract store; strong update only for exact addresses."""
        if address.is_bottom():
            return
        constant = address.as_constant()
        if constant is not None:
            self._materialize()
            self.entries[_align(constant)] = value
            return
        lo, hi = address.signed_bounds()
        if hi - lo > WEAK_UPDATE_LIMIT:
            self._havoc(lo, hi)
            return
        words = [word for word in range(_align(lo), hi + 1, 4)
                 if word in self.entries]
        if not words:
            return      # nothing tracked in range: keep sharing
        self._materialize()
        for word in words:
            self.entries[word] = self.entries[word].join(value)

    def seed(self, address: int, value: AbstractValue) -> None:
        """Strong update at a concrete address (entry-state seeding)."""
        self._materialize()
        self.entries[_align(address)] = value

    def _havoc(self, lo: int, hi: int) -> None:
        doomed = [w for w in self.entries if lo - 3 <= w <= hi]
        if not doomed:
            return
        self._materialize()
        for word in doomed:
            del self.entries[word]

    # -- Lattice ----------------------------------------------------------------

    def same_entries(self, other: "AbstractMemory") -> bool:
        """Structural fingerprint: sharing the entry dict (as COW copies
        do until one side mutates) proves the memories are equal."""
        return self.entries is other.entries

    def join(self, other: "AbstractMemory") -> "AbstractMemory":
        if self.same_entries(other):
            return self.copy()
        merged = {}
        get = other.entries.get
        for word, value in self.entries.items():
            other_value = get(word)
            if other_value is not None:
                # Identity fast path: abstract values are immutable and
                # COW propagation shares them, so `x is y` proves x == y.
                merged[word] = value if value is other_value \
                    else value.join(other_value)
        return AbstractMemory(self.domain, merged)

    def widen(self, other: "AbstractMemory",
              thresholds: Sequence[int] = ()) -> "AbstractMemory":
        if self.same_entries(other):
            return self.copy()
        merged = {}
        get = other.entries.get
        for word, value in self.entries.items():
            other_value = get(word)
            if other_value is not None:
                merged[word] = value if value is other_value \
                    else value.widen(other_value, thresholds)
        return AbstractMemory(self.domain, merged)

    def narrow(self, other: "AbstractMemory") -> "AbstractMemory":
        if self.same_entries(other):
            return self.copy()
        merged = dict(other.entries)
        get = other.entries.get
        for word, value in self.entries.items():
            other_value = get(word)
            if other_value is None or value is other_value:
                merged[word] = value
            else:
                merged[word] = value.narrow(other_value)
        return AbstractMemory(self.domain, merged)

    def leq(self, other: "AbstractMemory") -> bool:
        """Partial order with absent-means-top on *both* sides: entries
        of ``self`` that ``other`` does not track are below other's
        implicit top and never fail the comparison; entries of ``other``
        that ``self`` does not track require other's value to be top.
        (Pinned by a regression test — the COW fast path below depends
        on this order being reflexive.)"""
        if self.same_entries(other):
            return True
        get = self.entries.get
        for word, other_value in other.entries.items():
            value = get(word)
            if value is None:
                if not other_value.is_top():
                    return False
            elif value is not other_value and not value.leq(other_value):
                return False
        return True

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"AbstractMemory({len(self.entries)} tracked words)"


def _align(address: int) -> int:
    return address & ~3


class AbstractState:
    """Register file + flags + memory under one abstract domain.

    Besides per-register values, the state tracks *difference aliases*
    ``rd = base + offset`` established by ``MOV``/``ADDI``/``SUBI`` —
    the paper's "upper and lower bounds for their differences"
    refinement (Section 1).  When a branch refines an aliased register,
    the refinement propagates to its base and dependents, which is what
    keeps loop counters bounded when the compiled exit test compares a
    derived temporary (e.g. ``i + 3 < n``).
    """

    __slots__ = ("domain", "regs", "flags", "memory", "aliases",
                 "_bottom", "_shared")

    #: Class-wide instrumentation: state copies handed out (all O(1)
    #: under COW) and the number that had to materialise registers.
    copies = 0
    materializations = 0

    def __init__(self, domain: Type[AbstractValue],
                 regs: Optional[List[AbstractValue]] = None,
                 flags: Optional[FlagsInfo] = None,
                 memory: Optional[AbstractMemory] = None,
                 aliases: Optional[Dict[int, Tuple[int, int]]] = None,
                 bottom: bool = False):
        self.domain = domain
        self.regs = regs if regs is not None else \
            [domain.top() for _ in range(NUM_REGISTERS)]
        self.flags = flags
        self.memory = memory if memory is not None else \
            AbstractMemory(domain)
        #: reg -> (base_reg, offset): reg == base_reg + offset holds.
        self.aliases = aliases if aliases is not None else {}
        self._bottom = bottom
        self._shared = False

    # -- Construction ------------------------------------------------------------

    @classmethod
    def entry_state(cls, domain: Type[AbstractValue], stack_pointer: int,
                    initial_memory: Optional[Dict[int, int]] = None,
                    register_ranges: Optional[
                        Dict[int, Tuple[int, int]]] = None,
                    memory_ranges: Optional[
                        Dict[int, Tuple[int, int]]] = None,
                    memory: Optional[AbstractMemory] = None
                    ) -> "AbstractState":
        """The abstract state at task entry.

        ``register_ranges`` plays the role of aiT's user annotations on
        input registers (e.g. "R0 is in [0, 100]").  ``memory_ranges``
        is the memory-side counterpart: per word address, the value
        range the environment may have placed there before the task
        runs (input buffers) — overriding the binary's initial image,
        so the analysis never treats externally-written data as the
        constants the image happens to contain.  ``memory`` overrides
        the backing abstract memory (e.g. a vectorized one).
        """
        state = cls(domain, memory=memory)
        state.regs[SP] = domain.const(stack_pointer)
        if initial_memory:
            for address, word in initial_memory.items():
                state.memory.seed(address, domain.const(word))
        if memory_ranges:
            for address, (low, high) in memory_ranges.items():
                state.memory.seed(address, domain.range(low, high))
        if register_ranges:
            for reg, (low, high) in register_ranges.items():
                state.regs[reg] = domain.range(low, high)
        return state

    @classmethod
    def bottom_state(cls, domain: Type[AbstractValue]) -> "AbstractState":
        return cls(domain, bottom=True)

    def copy(self) -> "AbstractState":
        """O(1) copy-on-write copy: registers, aliases, and memory are
        shared with the original until either side mutates."""
        AbstractState.copies += 1
        self._shared = True
        clone = AbstractState(self.domain, self.regs, self.flags,
                              self.memory.copy(), self.aliases,
                              self._bottom)
        clone._shared = True
        return clone

    def _materialize(self) -> None:
        """Privatise the register file and alias map before mutating."""
        if self._shared:
            self.regs = list(self.regs)
            self.aliases = dict(self.aliases)
            self._shared = False
            AbstractState.materializations += 1

    # -- Registers ------------------------------------------------------------------

    def get(self, reg: int) -> AbstractValue:
        return self.regs[reg]

    def set(self, reg: int, value: AbstractValue) -> None:
        """Write a register, invalidating flag and alias links to it."""
        self._materialize()
        self.regs[reg] = value
        if self.flags is not None:
            self.flags = self.flags.invalidate_register(reg)
        self.aliases.pop(reg, None)
        for dependent in [d for d, (base, _off) in self.aliases.items()
                          if base == reg]:
            del self.aliases[dependent]

    def set_alias(self, reg: int, base: int, offset: int) -> None:
        """Record ``reg == base + offset`` (call after :meth:`set`)."""
        if reg != base:
            self._materialize()
            self.aliases[reg] = (base, offset)

    def refine_register(self, reg: int, value: AbstractValue) -> None:
        """Meet a register with a refined value, propagating through
        difference aliases one hop in each direction."""
        self._materialize()
        refined = self.regs[reg].meet(value)
        self.regs[reg] = refined
        alias = self.aliases.get(reg)
        if alias is not None:
            base, offset = alias
            base_value = refined.sub(self.domain.const(offset))
            self.regs[base] = self.regs[base].meet(base_value)
        for dependent, (base, offset) in self.aliases.items():
            if base == reg and dependent != reg:
                dep_value = refined.add(self.domain.const(offset))
                self.regs[dependent] = \
                    self.regs[dependent].meet(dep_value)

    @property
    def stack_pointer(self) -> AbstractValue:
        return self.regs[SP]

    # -- Lattice -----------------------------------------------------------------------

    def is_bottom(self) -> bool:
        return self._bottom or any(r.is_bottom() for r in self.regs)

    def same_structure(self, other: "AbstractState") -> bool:
        """Structural fingerprint: two states sharing all underlying
        containers (as COW copies do until mutated) are equal, so
        ``join``/``widen``/``narrow``/``leq`` can short-circuit."""
        if self is other:
            return True
        return (self._bottom == other._bottom
                and self.regs is other.regs
                and self.flags is other.flags
                and self.aliases is other.aliases
                and self.memory.same_entries(other.memory))

    def join(self, other: "AbstractState") -> "AbstractState":
        if self.same_structure(other):
            return self.copy()
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        regs = [a if a is b else a.join(b)
                for a, b in zip(self.regs, other.regs)]
        flags = self.flags if self._flags_compatible(other) else None
        if flags is not None and other.flags is not None:
            flags = FlagsInfo(self.flags.left.join(other.flags.left),
                              self.flags.right.join(other.flags.right),
                              self.flags.left_reg, self.flags.right_reg)
        aliases = {reg: link for reg, link in self.aliases.items()
                   if other.aliases.get(reg) == link}
        return AbstractState(self.domain, regs, flags,
                             self.memory.join(other.memory), aliases)

    def widen(self, other: "AbstractState",
              thresholds: Sequence[int] = ()) -> "AbstractState":
        if self.same_structure(other):
            result = self.copy()
            result.flags = None     # widening always drops flags
            return result
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        regs = [a if a is b else a.widen(b, thresholds)
                for a, b in zip(self.regs, other.regs)]
        # Flags are block-local derived information; dropping them at
        # widening points is sound and guarantees termination.  Aliases
        # shrink monotonically under intersection, so keeping the
        # common ones preserves termination.
        aliases = {reg: link for reg, link in self.aliases.items()
                   if other.aliases.get(reg) == link}
        return AbstractState(self.domain, regs, None,
                             self.memory.widen(other.memory, thresholds),
                             aliases)

    def narrow(self, other: "AbstractState") -> "AbstractState":
        if self.same_structure(other):
            return self.copy()
        if self.is_bottom() or other.is_bottom():
            return other
        regs = [a if a is b else a.narrow(b)
                for a, b in zip(self.regs, other.regs)]
        aliases = {reg: link for reg, link in self.aliases.items()
                   if other.aliases.get(reg) == link}
        return AbstractState(self.domain, regs, other.flags,
                             self.memory.narrow(other.memory), aliases)

    def leq(self, other: "AbstractState") -> bool:
        if self.same_structure(other):
            return True
        if self.is_bottom():
            return True
        if other.is_bottom():
            return False
        if not all(a is b or a.leq(b)
                   for a, b in zip(self.regs, other.regs)):
            return False
        if other.flags is not None and self.flags is None:
            return False
        if other.flags is not None:
            if (self.flags.left_reg, self.flags.right_reg) != \
                    (other.flags.left_reg, other.flags.right_reg):
                return False
            if not (self.flags.left.leq(other.flags.left)
                    and self.flags.right.leq(other.flags.right)):
                return False
        for reg, link in other.aliases.items():
            if self.aliases.get(reg) != link:
                return False
        return self.memory.leq(other.memory)

    def _flags_compatible(self, other: "AbstractState") -> bool:
        if self.flags is None or other.flags is None:
            return False
        return (self.flags.left_reg == other.flags.left_reg
                and self.flags.right_reg == other.flags.right_reg)

    def __repr__(self) -> str:
        if self.is_bottom():
            return "AbstractState(⊥)"
        interesting = {i: r for i, r in enumerate(self.regs)
                       if not r.is_top()}
        regs = ", ".join(f"R{i}={v!r}" for i, v in interesting.items())
        return f"AbstractState({regs}, mem={len(self.memory)})"
