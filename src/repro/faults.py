"""Deterministic fault injection for chaos testing.

The paper's tool chain targets safety-critical validation flows, where
the analysis *infrastructure* has to degrade gracefully — a dead
worker, a truncated cache object, or a full disk must cost redundant
work, never a wrong bound or a hung sweep.  This module is the switch
that lets tests (and the CI chaos-smoke job) prove it: set

    REPRO_FAULTS=worker_kill:0.2,corrupt_artifact:0.1,slow_task:0.05

and the named faults fire probabilistically at their injection sites:

``worker_kill``
    a pool worker ``os._exit``\\ s at task start (the parent process is
    never killed, so degraded in-process execution always terminates),
``corrupt_artifact``
    :class:`~repro.batch.cachestore.ArtifactCache` truncates the
    pickled payload it writes to disk (the in-memory copy stays good,
    so corruption surfaces on *cold* lookups — exactly the cross-worker
    and cross-restart reads quarantining exists for),
``slow_task``
    a worker task sleeps ``REPRO_FAULTS_SLOW_SECONDS`` (default 50 ms)
    before running, widening scheduling races,
``disk_full``
    the cache's disk write raises ``OSError(ENOSPC)``, exercising the
    degrade-to-uncached path.

Rolls come from one :class:`random.Random` seeded by
``REPRO_FAULTS_SEED`` (default 0) per *process*: a forked pool worker
re-seeds on first use (the inherited parent state is discarded when the
pid changes), so every worker replays the same deterministic roll
sequence for a given seed — rates are reproducible, not flaky.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from typing import Dict, Optional

#: Fault kinds understood by :func:`parse_faults`, with their sites.
FAULT_KINDS = ("worker_kill", "corrupt_artifact", "slow_task",
               "disk_full")

ENV_FAULTS = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULTS_SEED"
ENV_SLOW_SECONDS = "REPRO_FAULTS_SLOW_SECONDS"

#: Exit code of an injected worker kill (recognisable in waitpid logs).
KILL_EXIT_CODE = 43

#: The pid that imported this module — in a fork-based worker pool that
#: is the *parent*, so a worker (different pid, inherited module state)
#: is killable while the orchestrating process never is.  A spawn-based
#: worker imports the module fresh and records its own pid, making
#: ``worker_kill`` a no-op there; the chaos tests require fork anyway.
_IMPORT_PID = os.getpid()


class FaultPlan:
    """Parsed fault rates plus the per-process roll state."""

    def __init__(self, rates: Dict[str, float], seed: int = 0):
        unknown = sorted(set(rates) - set(FAULT_KINDS))
        if unknown:
            raise ValueError(
                f"unknown fault kind(s): {', '.join(unknown)}; "
                f"expected one of {', '.join(FAULT_KINDS)}")
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"fault rate for {kind} must be in [0, 1], "
                    f"got {rate!r}")
        self.rates = dict(rates)
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: kind -> number of times the fault actually fired (this
        #: process only).
        self.injected: Dict[str, int] = {kind: 0 for kind in rates}

    def should(self, kind: str) -> bool:
        """Roll for one fault; ``True`` means inject it now."""
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        with self._lock:
            fire = self._rng.random() < rate
            if fire:
                self.injected[kind] += 1
        return fire

    def __repr__(self):
        spec = ",".join(f"{kind}:{rate}"
                        for kind, rate in sorted(self.rates.items()))
        return f"<FaultPlan {spec or 'empty'} seed={self.seed}>"


def parse_faults(spec: str, seed: int = 0) -> FaultPlan:
    """Parse a ``kind:rate,kind:rate`` spec into a :class:`FaultPlan`.

    Raises :class:`ValueError` on unknown kinds, bad rates, or
    malformed tokens — a typo'd chaos run must fail loudly, not run
    fault-free and "pass".
    """
    rates: Dict[str, float] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        kind, sep, raw = token.partition(":")
        if not sep:
            raise ValueError(
                f"bad fault token {token!r}: expected KIND:RATE")
        try:
            rate = float(raw)
        except ValueError:
            raise ValueError(
                f"bad fault rate in {token!r}: {raw!r} is not a "
                f"number") from None
        rates[kind.strip()] = rate
    return FaultPlan(rates, seed=seed)


# -- The process-wide active plan -------------------------------------------------

#: (pid, plan) so a forked worker re-derives its own plan (and fresh
#: RNG) instead of continuing the parent's inherited roll state.
_ACTIVE: Optional[tuple] = None
_ACTIVE_LOCK = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The plan configured by ``$REPRO_FAULTS``, or ``None``.

    Re-parsed lazily per process (pid change invalidates the memo), so
    fork-pool workers each start a deterministic roll sequence from
    ``$REPRO_FAULTS_SEED``.
    """
    global _ACTIVE
    pid = os.getpid()
    with _ACTIVE_LOCK:
        if _ACTIVE is not None and _ACTIVE[0] == pid:
            return _ACTIVE[1]
        spec = os.environ.get(ENV_FAULTS)
        plan = None
        if spec:
            seed = int(os.environ.get(ENV_SEED, "0"), 0)
            plan = parse_faults(spec, seed=seed)
        _ACTIVE = (pid, plan)
        return plan


def reset() -> None:
    """Forget the memoised plan (tests flip ``$REPRO_FAULTS``)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = None


# -- Injection sites --------------------------------------------------------------


def worker_task_started() -> None:
    """Site hook at the top of every pool-worker task: may kill this
    worker (``worker_kill``) or stall it (``slow_task``).

    Killing is suppressed in the process that imported this module —
    the sweep orchestrator / serve daemon / degraded in-process
    executor — so chaos runs always terminate.
    """
    plan = active_plan()
    if plan is None:
        return
    if os.getpid() != _IMPORT_PID and plan.should("worker_kill"):
        os._exit(KILL_EXIT_CODE)
    if plan.should("slow_task"):
        time.sleep(float(os.environ.get(ENV_SLOW_SECONDS, "0.05")))


def corrupt_payload(payload: bytes) -> bytes:
    """Site hook on the cache's disk write: maybe truncate the pickled
    payload (the classic partial-write corruption)."""
    plan = active_plan()
    if plan is not None and plan.should("corrupt_artifact"):
        return payload[:max(1, len(payload) // 2)]
    return payload


def check_disk_full() -> None:
    """Site hook before the cache's disk write: maybe raise ENOSPC."""
    plan = active_plan()
    if plan is not None and plan.should("disk_full"):
        raise OSError(errno.ENOSPC,
                      "No space left on device [injected fault]")
