"""Register file definition for the KRISC target.

KRISC is the simplified 32-bit embedded RISC target used throughout this
reproduction (see DESIGN.md, "Substrate substitutions").  It has sixteen
general-purpose registers with an ARM-like calling convention:

* ``R0``--``R3``   argument / scratch registers, ``R0`` holds return values
* ``R4``--``R11``  callee-saved registers
* ``R12``          intra-call scratch register
* ``R13`` (``SP``) stack pointer (full-descending stack)
* ``R14`` (``LR``) link register

The program counter is not a general-purpose register; branches are the
only way to modify it.  A four-bit condition flag register (N, Z, C, V) is
written by compare instructions and read by conditional branches.
"""

from __future__ import annotations

NUM_REGISTERS = 16

SP = 13
LR = 14

#: Registers a called function must preserve.
CALLEE_SAVED = tuple(range(4, 12))

#: Registers a caller must assume are clobbered by a call.
CALLER_SAVED = (0, 1, 2, 3, 12, 14)

#: Registers used to pass the first four arguments.
ARGUMENT_REGISTERS = (0, 1, 2, 3)

#: Register holding a function's return value.
RETURN_REGISTER = 0

_SPECIAL_NAMES = {SP: "SP", LR: "LR"}
_NAME_TO_INDEX = {"SP": SP, "LR": LR}
_NAME_TO_INDEX.update({f"R{i}": i for i in range(NUM_REGISTERS)})


def register_name(index: int) -> str:
    """Return the canonical assembly name of register ``index``."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {index}")
    return _SPECIAL_NAMES.get(index, f"R{index}")


def parse_register(name: str) -> int:
    """Parse a register name (``R0``..``R15``, ``SP``, ``LR``) to its index."""
    index = _NAME_TO_INDEX.get(name.upper())
    if index is None:
        raise ValueError(f"unknown register name: {name!r}")
    return index


def is_callee_saved(index: int) -> bool:
    """True if ``index`` must be preserved across calls."""
    return index in CALLEE_SAVED
