"""KRISC: the simplified 32-bit embedded RISC target of this reproduction.

Provides the instruction set, binary encoding, a two-pass assembler, a
disassembler, and the :class:`Program` image consumed by every analysis.
"""

from .assembler import Assembler, AssemblyError, assemble
from .disassembler import disassemble
from .encoding import (DecodingError, EncodingError, INSTRUCTION_SIZE,
                       decode, decode_from_bytes, encode, encode_to_bytes)
from .instructions import (Cond, Format, Instruction, Opcode,
                           format_instruction)
from .program import (DATA_BASE, MemoryMap, Program, Section, STACK_BASE,
                      STACK_LIMIT, TEXT_BASE)
from .registers import (ARGUMENT_REGISTERS, CALLEE_SAVED, CALLER_SAVED, LR,
                        NUM_REGISTERS, RETURN_REGISTER, SP, parse_register,
                        register_name)

__all__ = [
    "Assembler", "AssemblyError", "assemble", "disassemble",
    "DecodingError", "EncodingError", "INSTRUCTION_SIZE", "decode",
    "decode_from_bytes", "encode", "encode_to_bytes",
    "Cond", "Format", "Instruction", "Opcode", "format_instruction",
    "DATA_BASE", "MemoryMap", "Program", "Section", "STACK_BASE",
    "STACK_LIMIT", "TEXT_BASE",
    "ARGUMENT_REGISTERS", "CALLEE_SAVED", "CALLER_SAVED", "LR",
    "NUM_REGISTERS", "RETURN_REGISTER", "SP", "parse_register",
    "register_name",
]
