"""Two-pass assembler for KRISC.

The assembler exists so the test suite, the workload corpus, and the
mini-C compiler can all produce *real binaries* — the analyses never see
assembly text, only the encoded bytes, exactly as aiT only sees the
executable.

Syntax
------

* one statement per line; comments start with ``;`` or ``//``
* labels: ``name:`` (may share a line with an instruction)
* registers: ``R0``..``R15``, ``SP``, ``LR``
* immediates: ``#10``, ``#-3``, ``#0x1F``
* memory operands: ``[Rb, #off]``, ``[Rb, Rx]``, ``[Rb]``
* register lists: ``{R4, R6-R8, LR}``
* conditional branches: ``BEQ BNE BLT BGE BGT BLE BLO BHS BHI BLS label``
* directives: ``.text``, ``.data``, ``.global name``, ``.word v, ...``,
  ``.space n``, ``.align n``, ``.equ name, value``
* pseudo-instructions:
  ``LDA rd, symbol``  — load a symbol's address (expands to MOVI+MOVHI);
  ``LDI rd, #imm32``  — load an arbitrary 32-bit constant.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .encoding import INSTRUCTION_SIZE, encode_to_bytes
from .instructions import Cond, Format, Instruction, OPCODE_FORMATS, Opcode
from .program import DATA_BASE, MemoryMap, Program, Section, TEXT_BASE
from .registers import parse_register


class AssemblyError(ValueError):
    """A syntax or semantic error in assembly source."""

    def __init__(self, message: str, line: Optional[int] = None):
        location = f"line {line}: " if line is not None else ""
        super().__init__(f"{location}{message}")
        self.line = line


_COND_BRANCHES = {f"B{cond.name}": cond for cond in Cond}

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_NAME_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


def _parse_int(text: str, line: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError(f"invalid integer {text!r}", line) from None


@dataclass
class _Statement:
    """One instruction or data directive, pending symbol resolution."""

    line: int
    address: int = 0
    # Instruction statements:
    mnemonic: Optional[str] = None
    operands: List[str] = field(default_factory=list)
    # Data statements:
    directive: Optional[str] = None
    args: List[str] = field(default_factory=list)
    size: int = 0


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, memory_map: Optional[MemoryMap] = None):
        self.memory_map = memory_map or MemoryMap()

    def assemble(self, source: str) -> Program:
        text_stmts, data_stmts, symbols, equates, globals_ = (
            self._pass_one(source))
        symbols = dict(symbols)
        symbols.update(equates)
        text_bytes = self._emit_text(text_stmts, symbols)
        data_bytes = self._emit_data(data_stmts, symbols)
        sections = [Section(".text", self.memory_map.text_base,
                            bytes(text_bytes))]
        if data_bytes:
            sections.append(Section(".data", self.memory_map.data_base,
                                    bytes(data_bytes)))
        entry = symbols.get("main", symbols.get("_start",
                                                self.memory_map.text_base))
        return Program(sections, symbols, entry, self.memory_map)

    # -- Pass 1: layout ----------------------------------------------------

    def _pass_one(self, source: str):
        in_text = True
        text_addr = self.memory_map.text_base
        data_addr = self.memory_map.data_base
        text_stmts: List[_Statement] = []
        data_stmts: List[_Statement] = []
        symbols: Dict[str, int] = {}
        equates: Dict[str, int] = {}
        globals_: List[str] = []

        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw).strip()
            while line:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                name = match.group(1)
                if name in symbols or name in equates:
                    raise AssemblyError(f"duplicate label {name!r}", lineno)
                symbols[name] = text_addr if in_text else data_addr
                line = line[match.end():].strip()
            if not line:
                continue

            if line.startswith("."):
                parts = line.split(None, 1)
                directive = parts[0].lower()
                rest = parts[1] if len(parts) > 1 else ""
                if directive == ".text":
                    in_text = True
                elif directive == ".data":
                    in_text = False
                elif directive == ".global":
                    globals_.append(rest.strip())
                elif directive == ".equ":
                    args = [a.strip() for a in rest.split(",")]
                    if len(args) != 2 or not _NAME_RE.match(args[0]):
                        raise AssemblyError(".equ expects name, value",
                                            lineno)
                    equates[args[0]] = _parse_int(args[1], lineno)
                elif directive in (".word", ".space", ".align"):
                    stmt = _Statement(line=lineno, directive=directive,
                                      args=[a.strip() for a in
                                            rest.split(",") if a.strip()])
                    if in_text:
                        raise AssemblyError(
                            f"{directive} not allowed in .text", lineno)
                    stmt.address = data_addr
                    stmt.size = self._data_size(stmt, data_addr, lineno)
                    data_addr += stmt.size
                    data_stmts.append(stmt)
                    # .align may move labels defined on the same line: the
                    # label was recorded before alignment, so re-point it.
                    if directive == ".align":
                        for name, value in symbols.items():
                            if value == stmt.address:
                                symbols[name] = data_addr
                else:
                    raise AssemblyError(f"unknown directive {directive}",
                                        lineno)
                continue

            mnemonic, operands = _split_instruction(line, lineno)
            stmt = _Statement(line=lineno, mnemonic=mnemonic,
                              operands=operands)
            if not in_text:
                raise AssemblyError("instruction outside .text", lineno)
            stmt.address = text_addr
            stmt.size = self._instruction_size(stmt)
            text_addr += stmt.size
            text_stmts.append(stmt)

        return text_stmts, data_stmts, symbols, equates, globals_

    def _instruction_size(self, stmt: _Statement) -> int:
        mnemonic = stmt.mnemonic
        if mnemonic == "LDA":
            return 2 * INSTRUCTION_SIZE
        if mnemonic == "LDI":
            if len(stmt.operands) == 2 and stmt.operands[1].startswith("#"):
                try:
                    value = int(stmt.operands[1][1:], 0)
                except ValueError:
                    value = 1 << 20
                if -(1 << 15) <= value < (1 << 15):
                    return INSTRUCTION_SIZE
            return 2 * INSTRUCTION_SIZE
        return INSTRUCTION_SIZE

    def _data_size(self, stmt: _Statement, address: int, lineno: int) -> int:
        if stmt.directive == ".word":
            if not stmt.args:
                raise AssemblyError(".word needs at least one value", lineno)
            return 4 * len(stmt.args)
        if stmt.directive == ".space":
            if len(stmt.args) != 1:
                raise AssemblyError(".space expects a size", lineno)
            size = _parse_int(stmt.args[0], lineno)
            if size < 0:
                raise AssemblyError(".space size must be non-negative",
                                    lineno)
            return size
        if stmt.directive == ".align":
            if len(stmt.args) != 1:
                raise AssemblyError(".align expects an alignment", lineno)
            alignment = _parse_int(stmt.args[0], lineno)
            if alignment <= 0 or alignment & (alignment - 1):
                raise AssemblyError("alignment must be a power of two",
                                    lineno)
            return (-address) % alignment
        raise AssemblyError(f"unknown directive {stmt.directive}", lineno)

    # -- Pass 2: emission ---------------------------------------------------

    def _emit_text(self, stmts: List[_Statement],
                   symbols: Dict[str, int]) -> bytearray:
        output = bytearray()
        for stmt in stmts:
            for instr in self._build_instructions(stmt, symbols):
                output += encode_to_bytes(instr)
        return output

    def _emit_data(self, stmts: List[_Statement],
                   symbols: Dict[str, int]) -> bytearray:
        output = bytearray()
        base = self.memory_map.data_base
        for stmt in stmts:
            assert stmt.address == base + len(output), "layout mismatch"
            if stmt.directive == ".word":
                for arg in stmt.args:
                    value = self._value_or_symbol(arg, symbols, stmt.line)
                    output += (value & 0xFFFFFFFF).to_bytes(4, "little")
            elif stmt.directive in (".space", ".align"):
                output += bytes(stmt.size)
        return output

    def _value_or_symbol(self, text: str, symbols: Dict[str, int],
                         line: int) -> int:
        if _NAME_RE.match(text) and not re.match(r"^-?\d|^0[xX]", text):
            if text not in symbols:
                raise AssemblyError(f"undefined symbol {text!r}", line)
            return symbols[text]
        return _parse_int(text, line)

    def _build_instructions(self, stmt: _Statement,
                            symbols: Dict[str, int]) -> List[Instruction]:
        mnemonic = stmt.mnemonic
        line = stmt.line
        ops = stmt.operands
        address = stmt.address

        if mnemonic == "LDA":
            if len(ops) != 2:
                raise AssemblyError("LDA expects rd, symbol", line)
            rd = _reg(ops[0], line)
            value = self._value_or_symbol(ops[1], symbols, line)
            # Pass 1 reserved two slots (the symbol value was unknown
            # then), so always emit the full MOVI+MOVHI pair.
            return _load_constant(rd, value, address, force_pair=True)
        if mnemonic == "LDI":
            if len(ops) != 2 or not ops[1].startswith("#"):
                raise AssemblyError("LDI expects rd, #imm", line)
            rd = _reg(ops[0], line)
            value = _parse_int(ops[1][1:], line)
            instrs = _load_constant(rd, value, address)
            if stmt.size == INSTRUCTION_SIZE:
                if len(instrs) != 1:
                    raise AssemblyError(
                        f"LDI immediate {value} changed size between passes",
                        line)
            return instrs

        if mnemonic in _COND_BRANCHES:
            cond = _COND_BRANCHES[mnemonic]
            target = self._branch_target(ops, symbols, stmt, 1)
            return [Instruction(Opcode.BCC, cond=cond, imm=target,
                                address=address)]

        try:
            opcode = Opcode[mnemonic]
        except KeyError:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}",
                                line) from None
        fmt = OPCODE_FORMATS[opcode]

        if fmt is Format.ALU_RRR:
            _expect(ops, 3, mnemonic, line)
            return [Instruction(opcode, rd=_reg(ops[0], line),
                                rs1=_reg(ops[1], line),
                                rs2=_reg(ops[2], line), address=address)]
        if fmt is Format.ALU_RRI:
            _expect(ops, 3, mnemonic, line)
            return [Instruction(opcode, rd=_reg(ops[0], line),
                                rs1=_reg(ops[1], line),
                                imm=_imm(ops[2], line), address=address)]
        if fmt is Format.MOV_RR:
            _expect(ops, 2, mnemonic, line)
            return [Instruction(opcode, rd=_reg(ops[0], line),
                                rs1=_reg(ops[1], line), address=address)]
        if fmt is Format.MOV_RI:
            _expect(ops, 2, mnemonic, line)
            return [Instruction(opcode, rd=_reg(ops[0], line),
                                imm=_imm(ops[1], line), address=address)]
        if fmt is Format.CMP_RR:
            _expect(ops, 2, mnemonic, line)
            return [Instruction(opcode, rs1=_reg(ops[0], line),
                                rs2=_reg(ops[1], line), address=address)]
        if fmt is Format.CMP_RI:
            _expect(ops, 2, mnemonic, line)
            return [Instruction(opcode, rs1=_reg(ops[0], line),
                                imm=_imm(ops[1], line), address=address)]
        if fmt in (Format.MEM, Format.MEM_X):
            return [self._build_memory(opcode, ops, stmt)]
        if fmt is Format.BRANCH:
            target = self._branch_target(ops, symbols, stmt, 0)
            return [Instruction(opcode, imm=target, address=address)]
        if fmt is Format.IBRANCH:
            _expect(ops, 1, mnemonic, line)
            return [Instruction(opcode, rs1=_reg(ops[0], line),
                                address=address)]
        if fmt is Format.REGLIST:
            _expect(ops, 1, mnemonic, line)
            regs = _parse_reglist(ops[0], line)
            return [Instruction(opcode, reglist=regs, address=address)]
        if fmt is Format.NONE:
            _expect(ops, 0, mnemonic, line)
            return [Instruction(opcode, address=address)]
        raise AssemblyError(f"unhandled format for {mnemonic}",
                            line)  # pragma: no cover

    def _build_memory(self, opcode: Opcode, ops: List[str],
                      stmt: _Statement) -> Instruction:
        line = stmt.line
        if len(ops) != 2 or not ops[1].startswith("["):
            raise AssemblyError(
                f"{opcode.name} expects reg, [base, offset]", line)
        data_reg = _reg(ops[0], line)
        inner = ops[1].strip()
        if not inner.endswith("]"):
            raise AssemblyError("unterminated memory operand", line)
        parts = [p.strip() for p in inner[1:-1].split(",")]
        base = _reg(parts[0], line)
        indexed = len(parts) == 2 and not parts[1].startswith("#")
        if indexed:
            index = _reg(parts[1], line)
            opcode = Opcode.LDRX if opcode in (Opcode.LDR, Opcode.LDRX) \
                else Opcode.STRX
            if opcode is Opcode.LDRX:
                return Instruction(opcode, rd=data_reg, rs1=base, rs2=index,
                                   address=stmt.address)
            return Instruction(opcode, rd=data_reg, rs1=base, rs2=index,
                               address=stmt.address)
        offset = 0
        if len(parts) == 2:
            if not parts[1].startswith("#"):
                raise AssemblyError("offset must be #imm or register", line)
            offset = _parse_int(parts[1][1:], line)
        elif len(parts) > 2:
            raise AssemblyError("too many memory operand components", line)
        opcode = Opcode.LDR if opcode in (Opcode.LDR, Opcode.LDRX) \
            else Opcode.STR
        if opcode is Opcode.LDR:
            return Instruction(opcode, rd=data_reg, rs1=base, imm=offset,
                               address=stmt.address)
        return Instruction(opcode, rs2=data_reg, rs1=base, imm=offset,
                           address=stmt.address)

    def _branch_target(self, ops: List[str], symbols: Dict[str, int],
                       stmt: _Statement, extra: int) -> int:
        if len(ops) != 1:
            raise AssemblyError("branch expects one target", stmt.line)
        target = self._value_or_symbol(ops[0], symbols, stmt.line)
        delta = target - (stmt.address + 4)
        if delta % 4:
            raise AssemblyError(
                f"branch target 0x{target:x} not word-aligned", stmt.line)
        return delta // 4


def _load_constant(rd: int, value: int, address: int,
                   force_pair: bool = False) -> List[Instruction]:
    """MOVI(+MOVHI) sequence materialising an arbitrary 32-bit constant."""
    value &= 0xFFFFFFFF
    low = value & 0xFFFF
    high = (value >> 16) & 0xFFFF
    signed_low = low - 0x10000 if low & 0x8000 else low
    movi = Instruction(Opcode.MOVI, rd=rd, imm=signed_low, address=address)
    # MOVI sign-extends; if the sign-extension already yields the right
    # upper half, a single instruction suffices (MOVHI is still correct
    # and is emitted when the caller pre-reserved two slots).
    extended_high = 0xFFFF if low & 0x8000 else 0x0000
    if high == extended_high and not force_pair:
        return [movi]
    movhi = Instruction(Opcode.MOVHI, rd=rd, imm=high, address=address + 4)
    return [movi, movhi]


def _strip_comment(line: str) -> str:
    for marker in (";", "//"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line


def _split_instruction(line: str, lineno: int) -> Tuple[str, List[str]]:
    parts = line.split(None, 1)
    mnemonic = parts[0].upper()
    if len(parts) == 1:
        return mnemonic, []
    rest = parts[1].strip()
    operands: List[str] = []
    depth = 0
    current = []
    for char in rest:
        if char in "[{":
            depth += 1
        elif char in "]}":
            depth -= 1
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if current:
        operands.append("".join(current).strip())
    if depth != 0:
        raise AssemblyError("unbalanced brackets", lineno)
    return mnemonic, [op for op in operands if op]


def _expect(ops: List[str], count: int, mnemonic: str, line: int) -> None:
    if len(ops) != count:
        raise AssemblyError(
            f"{mnemonic} expects {count} operand(s), got {len(ops)}", line)


def _reg(text: str, line: int) -> int:
    try:
        return parse_register(text.strip())
    except ValueError as exc:
        raise AssemblyError(str(exc), line) from None


def _imm(text: str, line: int) -> int:
    text = text.strip()
    if not text.startswith("#"):
        raise AssemblyError(f"expected immediate, got {text!r}", line)
    return _parse_int(text[1:], line)


def _parse_reglist(text: str, line: int) -> Tuple[int, ...]:
    text = text.strip()
    if not (text.startswith("{") and text.endswith("}")):
        raise AssemblyError("register list must be {{...}}", line)
    registers: List[int] = []
    for item in text[1:-1].split(","):
        item = item.strip()
        if not item:
            continue
        if "-" in item:
            first, last = (part.strip() for part in item.split("-", 1))
            start, end = _reg(first, line), _reg(last, line)
            if start > end:
                raise AssemblyError(f"bad register range {item!r}", line)
            registers.extend(range(start, end + 1))
        else:
            registers.append(_reg(item, line))
    if not registers:
        raise AssemblyError("empty register list", line)
    return tuple(sorted(set(registers)))


def assemble(source: str, memory_map: Optional[MemoryMap] = None) -> Program:
    """Assemble KRISC source text into a :class:`Program`."""
    return Assembler(memory_map).assemble(source)
