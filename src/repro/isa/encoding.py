"""Binary encoding and decoding of KRISC instructions.

Every instruction occupies one 32-bit little-endian word.  The top six
bits hold the opcode; the remaining 26 bits are interpreted according to
the opcode's :class:`~repro.isa.instructions.Format`:

=============  =====================================================
``ALU_RRR``    ``rd`` [25:22]  ``rs1`` [21:18]  ``rs2`` [17:14]
``ALU_RRI``    ``rd`` [25:22]  ``rs1`` [21:18]  ``imm16`` [15:0]
``MOV_RR``     ``rd`` [25:22]  ``rs1`` [21:18]
``MOV_RI``     ``rd`` [25:22]  ``imm16`` [15:0]
``CMP_RR``     ``rs1`` [25:22] ``rs2`` [21:18]
``CMP_RI``     ``rs1`` [25:22] ``imm16`` [15:0]
``MEM``        reg [25:22]     ``rs1`` [21:18]  ``imm16`` [15:0]
``MEM_X``      reg [25:22]     ``rs1`` [21:18]  ``rs2`` [17:14]
``BRANCH``     ``imm26`` [25:0]   (signed word offset from PC+4)
``CBRANCH``    ``cond`` [25:22]   ``imm22`` [21:0] (signed word offset)
``IBRANCH``    ``rs1`` [25:22]
``REGLIST``    ``mask16`` [15:0]
=============  =====================================================

Immediates are two's-complement.  Branch offsets are in units of
instruction words relative to the *following* instruction, matching the
semantics of :meth:`Instruction.branch_target`.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from .instructions import Cond, Format, Instruction, OPCODE_FORMATS, Opcode

INSTRUCTION_SIZE = 4

_WORD = struct.Struct("<I")

_VALID_OPCODES = {int(op) for op in Opcode}


class EncodingError(ValueError):
    """An instruction cannot be encoded (e.g. immediate out of range)."""


class DecodingError(ValueError):
    """A word does not decode to a valid KRISC instruction."""

    def __init__(self, message: str, address: Optional[int] = None):
        super().__init__(message)
        self.address = address


def _signed_fits(value: int, bits: int) -> bool:
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


def _to_twos(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def _from_twos(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def _check_reg(value: Optional[int], what: str) -> int:
    if value is None or not 0 <= value < 16:
        raise EncodingError(f"invalid {what} register: {value}")
    return value


def _encode_imm(value: Optional[int], bits: int, unsigned: bool = False) -> int:
    if value is None:
        raise EncodingError("missing immediate")
    if unsigned:
        if not 0 <= value < (1 << bits):
            raise EncodingError(
                f"immediate {value} does not fit in unsigned {bits} bits")
        return value
    if not _signed_fits(value, bits):
        raise EncodingError(
            f"immediate {value} does not fit in signed {bits} bits")
    return _to_twos(value, bits)


def encode(instr: Instruction) -> int:
    """Encode ``instr`` into a 32-bit word."""
    op = instr.opcode
    word = int(op) << 26
    fmt = instr.format

    if fmt is Format.ALU_RRR:
        word |= _check_reg(instr.rd, "destination") << 22
        word |= _check_reg(instr.rs1, "source 1") << 18
        word |= _check_reg(instr.rs2, "source 2") << 14
    elif fmt is Format.ALU_RRI:
        word |= _check_reg(instr.rd, "destination") << 22
        word |= _check_reg(instr.rs1, "source 1") << 18
        word |= _encode_imm(instr.imm, 16)
    elif fmt is Format.MOV_RR:
        word |= _check_reg(instr.rd, "destination") << 22
        word |= _check_reg(instr.rs1, "source") << 18
    elif fmt is Format.MOV_RI:
        word |= _check_reg(instr.rd, "destination") << 22
        word |= _encode_imm(instr.imm, 16, unsigned=op is Opcode.MOVHI)
    elif fmt is Format.CMP_RR:
        word |= _check_reg(instr.rs1, "source 1") << 22
        word |= _check_reg(instr.rs2, "source 2") << 18
    elif fmt is Format.CMP_RI:
        word |= _check_reg(instr.rs1, "source 1") << 22
        word |= _encode_imm(instr.imm, 16)
    elif fmt is Format.MEM:
        reg = instr.rd if op is Opcode.LDR else instr.rs2
        word |= _check_reg(reg, "data") << 22
        word |= _check_reg(instr.rs1, "base") << 18
        word |= _encode_imm(instr.imm, 16)
    elif fmt is Format.MEM_X:
        word |= _check_reg(instr.rd, "data") << 22
        word |= _check_reg(instr.rs1, "base") << 18
        word |= _check_reg(instr.rs2, "index") << 14
    elif fmt is Format.BRANCH:
        word |= _encode_imm(instr.imm, 26)
    elif fmt is Format.CBRANCH:
        if instr.cond is None:
            raise EncodingError("conditional branch without condition")
        word |= int(instr.cond) << 22
        word |= _encode_imm(instr.imm, 22)
    elif fmt is Format.IBRANCH:
        word |= _check_reg(instr.rs1, "target") << 22
    elif fmt is Format.REGLIST:
        mask = 0
        for reg in instr.reglist:
            _check_reg(reg, "list")
            mask |= 1 << reg
        if mask == 0:
            raise EncodingError(f"{op.name} with empty register list")
        word |= mask
    elif fmt is Format.NONE:
        pass
    else:  # pragma: no cover - formats are exhaustive
        raise EncodingError(f"unhandled format {fmt}")
    return word


def decode(word: int, address: Optional[int] = None) -> Instruction:
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`DecodingError` for invalid opcodes or operand fields,
    which CFG reconstruction treats as "not code".
    """
    opnum = (word >> 26) & 0x3F
    if opnum not in _VALID_OPCODES:
        raise DecodingError(f"invalid opcode 0x{opnum:02x}", address)
    op = Opcode(opnum)
    fmt = OPCODE_FORMATS[op]

    f_rd = (word >> 22) & 0xF
    f_rs1 = (word >> 18) & 0xF
    f_rs2 = (word >> 14) & 0xF
    f_imm16 = word & 0xFFFF

    if fmt is Format.ALU_RRR:
        return Instruction(op, rd=f_rd, rs1=f_rs1, rs2=f_rs2,
                           address=address)
    if fmt is Format.ALU_RRI:
        return Instruction(op, rd=f_rd, rs1=f_rs1,
                           imm=_from_twos(f_imm16, 16), address=address)
    if fmt is Format.MOV_RR:
        return Instruction(op, rd=f_rd, rs1=f_rs1, address=address)
    if fmt is Format.MOV_RI:
        imm = f_imm16 if op is Opcode.MOVHI else _from_twos(f_imm16, 16)
        return Instruction(op, rd=f_rd, imm=imm, address=address)
    if fmt is Format.CMP_RR:
        return Instruction(op, rs1=f_rd, rs2=f_rs1, address=address)
    if fmt is Format.CMP_RI:
        return Instruction(op, rs1=f_rd, imm=_from_twos(f_imm16, 16),
                           address=address)
    if fmt is Format.MEM:
        imm = _from_twos(f_imm16, 16)
        if op is Opcode.LDR:
            return Instruction(op, rd=f_rd, rs1=f_rs1, imm=imm,
                               address=address)
        return Instruction(op, rs2=f_rd, rs1=f_rs1, imm=imm,
                           address=address)
    if fmt is Format.MEM_X:
        return Instruction(op, rd=f_rd, rs1=f_rs1, rs2=f_rs2,
                           address=address)
    if fmt is Format.BRANCH:
        return Instruction(op, imm=_from_twos(word & 0x3FFFFFF, 26),
                           address=address)
    if fmt is Format.CBRANCH:
        condnum = (word >> 22) & 0xF
        try:
            cond = Cond(condnum)
        except ValueError:
            raise DecodingError(
                f"invalid condition code 0x{condnum:x}", address) from None
        return Instruction(op, cond=cond,
                           imm=_from_twos(word & 0x3FFFFF, 22),
                           address=address)
    if fmt is Format.IBRANCH:
        return Instruction(op, rs1=f_rd, address=address)
    if fmt is Format.REGLIST:
        mask = f_imm16
        if mask == 0:
            raise DecodingError(f"{op.name} with empty register list",
                                address)
        regs = tuple(i for i in range(16) if mask & (1 << i))
        return Instruction(op, reglist=regs, address=address)
    return Instruction(op, address=address)


def encode_to_bytes(instr: Instruction) -> bytes:
    """Encode ``instr`` to four little-endian bytes."""
    return _WORD.pack(encode(instr))


def decode_from_bytes(data: bytes, address: Optional[int] = None
                      ) -> Instruction:
    """Decode four little-endian bytes starting at ``data[0]``."""
    if len(data) < INSTRUCTION_SIZE:
        raise DecodingError("truncated instruction", address)
    (word,) = _WORD.unpack_from(data)
    return decode(word, address)


def iter_decode(data: bytes, base_address: int = 0
                ) -> Iterator[Instruction]:
    """Decode a contiguous code region, yielding one instruction per word."""
    for offset in range(0, len(data) - len(data) % 4, INSTRUCTION_SIZE):
        (word,) = _WORD.unpack_from(data, offset)
        yield decode(word, base_address + offset)
