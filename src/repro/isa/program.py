"""Program images: the "binary" that all analyses start from.

A :class:`Program` is the KRISC equivalent of the executables aiT
analyzes: raw section bytes at fixed load addresses plus a symbol table.
CFG reconstruction (:mod:`repro.cfg`) and the concrete simulator
(:mod:`repro.sim`) both consume this object, so the analyses and the
ground-truth execution are guaranteed to see the same bytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .encoding import INSTRUCTION_SIZE, DecodingError, decode_from_bytes
from .instructions import Instruction, Opcode

#: Default load address of the code section.
TEXT_BASE = 0x1000
#: Default load address of initialised data.
DATA_BASE = 0x8000
#: Default initial stack pointer (full-descending stack).
STACK_BASE = 0x20000
#: Default lowest address the stack may grow down to.
STACK_LIMIT = 0x18000

#: Bytes of slack added around every statically-referenced data object
#: when computing a function's data slice (:meth:`Program.reachable_slice`).
#: Must cover the value analysis's weak-read window
#: (``repro.analysis.state.WEAK_UPDATE_LIMIT``): an imprecisely-addressed
#: load may join words up to that many bytes away from the literal base
#: it was derived from, so neighbouring objects inside the window are
#: part of the slice too.
SLICE_DATA_PADDING = 4096


@dataclass(frozen=True)
class Section:
    """A contiguous region of the program image."""

    name: str
    base: int
    data: bytes

    @property
    def end(self) -> int:
        """One past the last byte of the section."""
        return self.base + len(self.data)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


@dataclass(frozen=True)
class FunctionSlice:
    """One function's entry in the per-function digest vector.

    The ``.text`` section is carved at function-symbol boundaries
    (non-local symbols, i.e. names not starting with ``"."``); each
    carved region digests independently, so an edit to one function's
    bytes leaves the digests of every function laid out *before* it —
    and of every function it does not shift — untouched.

    ``code_digest`` is ``sha256`` over, in order: the function's name,
    its start address, every symbol inside ``[start, end)`` as
    ``name@offset`` pairs (sorted), and the raw instruction bytes.
    Addresses are part of the digest deliberately: cached analysis
    artifacts embed absolute addresses, so two functions may only share
    a digest when their bytes *and* placement coincide.

    ``data_refs`` are the start addresses of the symbol-delimited data
    objects the function references through address literals
    (``MOVI``/``MOVHI`` pairs, tracked through ``MOV``/``ADDI``/
    ``SUBI`` copies), padded by :data:`SLICE_DATA_PADDING`;
    ``callees`` are code addresses the function transfers control to
    (calls, out-of-region branches) or takes as literals; the
    reachability walk (:meth:`Program.reachable_slice`) resolves each
    to its containing function.  ``indirect_sites`` lists
    ``BR``/``BLR`` instruction addresses whose targets must come from
    user annotations; ``conservative`` marks a scan that could not
    account for every reference (undecodable word, untracked
    ``MOVHI``), which forces whole-image keying.
    """

    name: str
    start: int
    end: int
    code_digest: str
    data_refs: Tuple[int, ...]
    callees: Tuple[int, ...]
    indirect_sites: Tuple[int, ...]
    conservative: bool


@dataclass(frozen=True)
class DataObject:
    """A symbol-delimited region of a non-text section."""

    name: str
    start: int
    end: int
    digest: str


@dataclass(frozen=True)
class ProgramSlice:
    """Digest pair of the call-graph-reachable part of a program.

    ``code`` digests the reachable functions (placement + bytes +
    symbols) together with the entry point and memory map; ``data``
    digests the data objects those functions reference.  Two programs
    with equal slice digests are indistinguishable to every analysis
    phase run from the same entry, which is what lets the artifact
    cache (:mod:`repro.batch`) key phases on the slice instead of the
    whole image: editing a function outside the slice, or data no
    reachable function references, leaves every phase key stable.

    ``conservative`` is True when the scan fell back to whole-image
    digests (the slice is then exactly as strong as
    :meth:`Program.content_digest`, never weaker).
    """

    code: str
    data: str
    functions: Tuple[str, ...]
    conservative: bool


@dataclass
class MemoryMap:
    """Address-space layout of a program."""

    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    stack_base: int = STACK_BASE
    stack_limit: int = STACK_LIMIT

    def stack_capacity(self) -> int:
        """Bytes of stack memory available before overflow."""
        return self.stack_base - self.stack_limit


class Program:
    """A linked KRISC binary: sections, symbols, and an entry point."""

    def __init__(self, sections: List[Section], symbols: Dict[str, int],
                 entry: int, memory_map: Optional[MemoryMap] = None):
        self.sections = list(sections)
        self.symbols = dict(symbols)
        self.entry = entry
        self.memory_map = memory_map or MemoryMap()
        self._by_name = {section.name: section for section in self.sections}
        self._content_digest: Optional[str] = None
        self._function_slices: Optional[Tuple[FunctionSlice, ...]] = None
        self._data_objects: Optional[Tuple[DataObject, ...]] = None
        self._slice_memo: Dict[Tuple, ProgramSlice] = {}

    def content_digest(self) -> str:
        """Stable hex digest of the whole binary image — sections,
        symbol table, entry point, and memory map.  Two programs with
        equal digests are indistinguishable to every analysis, which is
        what makes the digest usable as the program component of
        content-addressed artifact-cache keys (:mod:`repro.batch`)."""
        if self._content_digest is None:
            digest = hashlib.sha256()
            # Variable-length fields are length-prefixed so the hash
            # input stream parses unambiguously.
            for section in self.sections:
                name = section.name.encode()
                digest.update(len(name).to_bytes(8, "little"))
                digest.update(name)
                digest.update(section.base.to_bytes(8, "little"))
                digest.update(len(section.data).to_bytes(8, "little"))
                digest.update(section.data)
            for symbol, address in sorted(self.symbols.items()):
                name = symbol.encode()
                digest.update(len(name).to_bytes(8, "little"))
                digest.update(name)
                digest.update(address.to_bytes(8, "little", signed=True))
            layout = self.memory_map
            digest.update(
                f"entry={self.entry};text={layout.text_base};"
                f"data={layout.data_base};stack={layout.stack_base};"
                f"limit={layout.stack_limit}".encode())
            self._content_digest = digest.hexdigest()
        return self._content_digest

    # -- Section access -------------------------------------------------

    @property
    def text(self) -> Section:
        """The executable code section."""
        return self._by_name[".text"]

    def section(self, name: str) -> Section:
        return self._by_name[name]

    def has_section(self, name: str) -> bool:
        return name in self._by_name

    def section_at(self, address: int) -> Optional[Section]:
        """The section containing ``address``, if any."""
        for section in self.sections:
            if section.contains(address):
                return section
        return None

    def is_code_address(self, address: int) -> bool:
        """True if ``address`` is a word-aligned address inside ``.text``."""
        text = self.text
        return text.contains(address) and (address - text.base) % 4 == 0

    # -- Symbols ---------------------------------------------------------

    def symbol_address(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"no such symbol: {name!r}") from None

    def symbol_at(self, address: int) -> Optional[str]:
        """A symbol whose value is exactly ``address``, if one exists."""
        for name, value in self.symbols.items():
            if value == address:
                return name
        return None

    def function_symbols(self) -> Dict[str, int]:
        """Symbols that point into the code section."""
        text = self.text
        return {name: addr for name, addr in self.symbols.items()
                if text.contains(addr)}

    # -- Instruction access ----------------------------------------------

    def instruction_at(self, address: int) -> Instruction:
        """Decode the instruction stored at ``address``."""
        text = self.text
        if not self.is_code_address(address):
            raise ValueError(f"0x{address:x} is not a code address")
        offset = address - text.base
        return decode_from_bytes(text.data[offset:offset + INSTRUCTION_SIZE],
                                 address)

    def iter_instructions(self) -> Iterator[Instruction]:
        """Decode the whole code section in address order."""
        text = self.text
        for offset in range(0, len(text.data), INSTRUCTION_SIZE):
            yield decode_from_bytes(
                text.data[offset:offset + INSTRUCTION_SIZE],
                text.base + offset)

    # -- Initial memory ---------------------------------------------------

    def initial_memory(self) -> Dict[int, int]:
        """Word-addressed initial memory contents (little-endian words)."""
        memory: Dict[int, int] = {}
        for section in self.sections:
            data = section.data
            for offset in range(0, len(data) - len(data) % 4, 4):
                word = int.from_bytes(data[offset:offset + 4], "little")
                memory[section.base + offset] = word
        return memory

    # -- Per-function digest vector ---------------------------------------

    def function_slices(self) -> Tuple[FunctionSlice, ...]:
        """Carve ``.text`` into per-function slices, in address order.

        Carve points are the addresses of non-local symbols (names not
        starting with ``"."``) inside ``.text``, plus the entry point
        and the section base; each slice covers ``[start, next start)``.
        The result is memoised — :class:`Program` is immutable once
        built.
        """
        if self._function_slices is None:
            text = self.text
            starts: Set[int] = {text.base}
            if text.contains(self.entry):
                starts.add(self.entry)
            for name, addr in self.symbols.items():
                if not name.startswith(".") and text.contains(addr):
                    starts.add(addr)
            ordered = sorted(starts)
            bounds = ordered[1:] + [text.end]
            slices = []
            for start, end in zip(ordered, bounds):
                if start >= end:
                    continue
                slices.append(_scan_function(self, start, end))
            self._function_slices = tuple(slices)
        return self._function_slices

    def data_objects(self) -> Tuple[DataObject, ...]:
        """Carve every non-text section at symbol boundaries.

        Each object digests as ``sha256(name | start | raw bytes)``;
        bytes before the first symbol of a section form an anonymous
        object named ``<section>+0x<offset>``.
        """
        if self._data_objects is None:
            objects: List[DataObject] = []
            for section in self.sections:
                if section.name == ".text" or not section.data:
                    continue
                starts = {section.base}
                starts.update(
                    addr for addr in self.symbols.values()
                    if section.contains(addr))
                ordered = sorted(starts)
                bounds = ordered[1:] + [section.end]
                for start, end in zip(ordered, bounds):
                    if start >= end:
                        continue
                    name = self._symbol_naming(start)
                    if name is None:
                        name = f"{section.name}+0x{start - section.base:x}"
                    raw = section.data[start - section.base:
                                       end - section.base]
                    digest = hashlib.sha256()
                    digest.update(f"data|{name}|{start:#x}|".encode())
                    digest.update(raw)
                    objects.append(DataObject(
                        name=name, start=start, end=end,
                        digest=digest.hexdigest()))
            self._data_objects = tuple(sorted(objects,
                                              key=lambda o: o.start))
        return self._data_objects

    def _symbol_naming(self, address: int) -> Optional[str]:
        """First non-local symbol placed exactly at ``address``."""
        names = sorted(name for name, value in self.symbols.items()
                       if value == address and not name.startswith("."))
        return names[0] if names else None

    def _function_containing(self, address: int) -> Optional[FunctionSlice]:
        for fn in self.function_slices():
            if fn.start <= address < fn.end:
                return fn
        return None

    def reachable_slice(self, entry: Optional[int] = None,
                        indirect_targets: Optional[Dict[int, Sequence[int]]]
                        = None) -> ProgramSlice:
        """Digest the part of the program reachable from ``entry``.

        Walks the static call graph over :meth:`function_slices`
        starting at the function containing ``entry`` (default: the
        program entry point).  ``BR``/``BLR`` sites are resolved
        through ``indirect_targets`` (instruction address → possible
        target addresses, the same annotation mapping the CFG builder
        consumes); an unannotated site, an undecodable region, or any
        other scan imprecision degrades the whole slice to
        *conservative*: both digests then derive from
        :meth:`content_digest`, so a conservative slice is never weaker
        a cache key than the monolithic one it replaces.

        The code digest covers the entry point, the memory map, and
        every reachable function's ``(start, code_digest)`` pair; the
        data digest covers every data object referenced by a reachable
        function, widened by :data:`SLICE_DATA_PADDING` bytes to
        include neighbours a weak (imprecisely-addressed) read could
        touch.
        """
        if entry is None:
            entry = self.entry
        memo_key = (entry, _indirect_key(indirect_targets))
        cached = self._slice_memo.get(memo_key)
        if cached is not None:
            return cached

        resolved = {site: tuple(targets)
                    for site, targets in (indirect_targets or {}).items()}
        root = self._function_containing(entry)
        conservative = root is None
        reached: Dict[int, FunctionSlice] = {}
        if root is not None:
            worklist = [root.start]
            while worklist:
                address = worklist.pop()
                fn = self._function_containing(address)
                if fn is None:
                    conservative = True
                    break
                if fn.start in reached:
                    continue
                reached[fn.start] = fn
                if fn.conservative:
                    conservative = True
                    break
                unresolved = [site for site in fn.indirect_sites
                              if not resolved.get(site)]
                if unresolved:
                    conservative = True
                    break
                worklist.extend(fn.callees)
                for site in fn.indirect_sites:
                    worklist.extend(resolved[site])

        if conservative:
            base = self.content_digest()
            result = ProgramSlice(
                code=_hexdigest(f"slice-conservative-code|{base}"
                                f"|entry={entry:#x}"),
                data=_hexdigest(f"slice-conservative-data|{base}"),
                functions=tuple(sorted(fn.name for fn in reached.values())),
                conservative=True)
        else:
            layout = self.memory_map
            code = hashlib.sha256()
            code.update(
                f"slice-code|entry={entry:#x};text={layout.text_base};"
                f"data={layout.data_base};stack={layout.stack_base};"
                f"limit={layout.stack_limit}".encode())
            functions = sorted(reached.values(), key=lambda f: f.start)
            for fn in functions:
                code.update(f"|{fn.start:#x}:{fn.code_digest}".encode())
            referenced: Set[int] = set()
            for fn in functions:
                referenced.update(fn.data_refs)
            objects = [obj for obj in self.data_objects()
                       if obj.start in referenced]
            data = hashlib.sha256()
            data.update(b"slice-data")
            for obj in objects:
                data.update(f"|{obj.name}@{obj.start:#x}:"
                            f"{obj.digest}".encode())
            result = ProgramSlice(
                code=code.hexdigest(), data=data.hexdigest(),
                functions=tuple(fn.name for fn in functions),
                conservative=False)
        self._slice_memo[memo_key] = result
        return result

    def __repr__(self) -> str:
        names = ", ".join(
            f"{s.name}@0x{s.base:x}+{len(s.data)}" for s in self.sections)
        return f"Program(entry=0x{self.entry:x}, sections=[{names}])"


#: Register-to-register/immediate ops through which the reference scan
#: tracks address literals (see :func:`_scan_function`).
_TRACKED_COPY_OPS = frozenset({Opcode.MOV, Opcode.ADDI, Opcode.SUBI})


def _hexdigest(material: str) -> str:
    return hashlib.sha256(material.encode()).hexdigest()


def _indirect_key(mapping: Optional[Dict[int, Sequence[int]]]) -> Tuple:
    if not mapping:
        return ()
    return tuple(sorted(
        (int(site), tuple(sorted(int(t) for t in targets)))
        for site, targets in mapping.items()))


def _scan_function(program: Program, start: int, end: int) -> FunctionSlice:
    """Digest one carved text region and collect its outward references.

    The scan is a single linear pass that abstractly tracks registers
    holding *statically known* values: ``MOVI`` seeds a value, ``MOVHI``
    patches its high half, and ``MOV``/``ADDI``/``SUBI`` propagate it;
    any other write clobbers the tracking.  Every known value produced
    is classified once the pass ends: values landing in a data section
    become data-object references (padded by
    :data:`SLICE_DATA_PADDING`), values landing in ``.text`` become
    callees (address-taken functions).  Direct branch/call targets
    outside ``[start, end)`` are callees too; ``BR``/``BLR`` addresses
    are recorded for annotation-based resolution.  ``conservative`` is
    set when the scan cannot account for a reference: an undecodable
    word, a ``MOVHI`` patching an untracked register, or a branch
    leaving ``.text``.
    """
    text = program.text
    raw = text.data[start - text.base:end - text.base]
    name = program._symbol_naming(start)
    if name is None:
        name = f".text+0x{start - text.base:x}"

    digest = hashlib.sha256()
    digest.update(f"fn|{name}|{start:#x}".encode())
    for sym, value in sorted(program.symbols.items()):
        if start <= value < end:
            digest.update(f"|{sym}@{value - start}".encode())
    digest.update(b"|")
    digest.update(raw)

    known: Dict[int, int] = {}
    literals: Set[int] = set()
    callees: Set[int] = set()
    indirect: Set[int] = set()
    conservative = False

    def record(register: int, value: int) -> None:
        value &= 0xFFFFFFFF
        known[register] = value
        literals.add(value)

    for offset in range(0, len(raw), INSTRUCTION_SIZE):
        address = start + offset
        try:
            instr = decode_from_bytes(
                raw[offset:offset + INSTRUCTION_SIZE], address)
        except DecodingError:
            conservative = True
            break
        op = instr.opcode
        if op is Opcode.MOVI:
            record(instr.rd, instr.imm)
        elif op is Opcode.MOVHI:
            if instr.rd in known:
                record(instr.rd, (known[instr.rd] & 0xFFFF)
                       | ((instr.imm & 0xFFFF) << 16))
            else:
                # The high half of an unknown value: the final address
                # cannot be reconstructed, so the reference escapes.
                conservative = True
                known.pop(instr.rd, None)
        elif op in _TRACKED_COPY_OPS:
            source = known.get(instr.rs1)
            if source is None:
                known.pop(instr.rd, None)
            elif op is Opcode.MOV:
                known[instr.rd] = source
            elif op is Opcode.ADDI:
                record(instr.rd, source + instr.imm)
            else:
                record(instr.rd, source - instr.imm)
        elif op in (Opcode.B, Opcode.BCC, Opcode.BL):
            target = instr.branch_target()
            if target is not None and not (start <= target < end):
                if text.contains(target):
                    callees.add(target)
                else:
                    conservative = True
        elif op in (Opcode.BR, Opcode.BLR):
            indirect.add(address)
            for reg in instr.written_registers():
                known.pop(reg, None)
        else:
            for reg in instr.written_registers():
                known.pop(reg, None)

    data_refs: Set[int] = set()
    for value in literals:
        section = program.section_at(value)
        if section is None:
            continue
        if section.name == ".text":
            # Address-taken code (e.g. a function pointer built with
            # LDA): treat the target as a callee; the reachability walk
            # resolves it to its containing function.
            callees.add(value)
            continue
        window_lo = value - SLICE_DATA_PADDING
        window_hi = value + SLICE_DATA_PADDING
        for obj in program.data_objects():
            if obj.start <= window_hi and obj.end > window_lo:
                data_refs.add(obj.start)

    return FunctionSlice(
        name=name, start=start, end=end, code_digest=digest.hexdigest(),
        data_refs=tuple(sorted(data_refs)),
        callees=tuple(sorted(callees)),
        indirect_sites=tuple(sorted(indirect)),
        conservative=conservative)


def word_range(start: int, end: int) -> Iterator[int]:
    """Word-aligned addresses in ``[start, end)``."""
    aligned = start - start % 4
    return iter(range(aligned, end, 4))
