"""Program images: the "binary" that all analyses start from.

A :class:`Program` is the KRISC equivalent of the executables aiT
analyzes: raw section bytes at fixed load addresses plus a symbol table.
CFG reconstruction (:mod:`repro.cfg`) and the concrete simulator
(:mod:`repro.sim`) both consume this object, so the analyses and the
ground-truth execution are guaranteed to see the same bytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .encoding import INSTRUCTION_SIZE, decode_from_bytes
from .instructions import Instruction

#: Default load address of the code section.
TEXT_BASE = 0x1000
#: Default load address of initialised data.
DATA_BASE = 0x8000
#: Default initial stack pointer (full-descending stack).
STACK_BASE = 0x20000
#: Default lowest address the stack may grow down to.
STACK_LIMIT = 0x18000


@dataclass(frozen=True)
class Section:
    """A contiguous region of the program image."""

    name: str
    base: int
    data: bytes

    @property
    def end(self) -> int:
        """One past the last byte of the section."""
        return self.base + len(self.data)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


@dataclass
class MemoryMap:
    """Address-space layout of a program."""

    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    stack_base: int = STACK_BASE
    stack_limit: int = STACK_LIMIT

    def stack_capacity(self) -> int:
        """Bytes of stack memory available before overflow."""
        return self.stack_base - self.stack_limit


class Program:
    """A linked KRISC binary: sections, symbols, and an entry point."""

    def __init__(self, sections: List[Section], symbols: Dict[str, int],
                 entry: int, memory_map: Optional[MemoryMap] = None):
        self.sections = list(sections)
        self.symbols = dict(symbols)
        self.entry = entry
        self.memory_map = memory_map or MemoryMap()
        self._by_name = {section.name: section for section in self.sections}
        self._content_digest: Optional[str] = None

    def content_digest(self) -> str:
        """Stable hex digest of the whole binary image — sections,
        symbol table, entry point, and memory map.  Two programs with
        equal digests are indistinguishable to every analysis, which is
        what makes the digest usable as the program component of
        content-addressed artifact-cache keys (:mod:`repro.batch`)."""
        if self._content_digest is None:
            digest = hashlib.sha256()
            # Variable-length fields are length-prefixed so the hash
            # input stream parses unambiguously.
            for section in self.sections:
                name = section.name.encode()
                digest.update(len(name).to_bytes(8, "little"))
                digest.update(name)
                digest.update(section.base.to_bytes(8, "little"))
                digest.update(len(section.data).to_bytes(8, "little"))
                digest.update(section.data)
            for symbol, address in sorted(self.symbols.items()):
                name = symbol.encode()
                digest.update(len(name).to_bytes(8, "little"))
                digest.update(name)
                digest.update(address.to_bytes(8, "little", signed=True))
            layout = self.memory_map
            digest.update(
                f"entry={self.entry};text={layout.text_base};"
                f"data={layout.data_base};stack={layout.stack_base};"
                f"limit={layout.stack_limit}".encode())
            self._content_digest = digest.hexdigest()
        return self._content_digest

    # -- Section access -------------------------------------------------

    @property
    def text(self) -> Section:
        """The executable code section."""
        return self._by_name[".text"]

    def section(self, name: str) -> Section:
        return self._by_name[name]

    def has_section(self, name: str) -> bool:
        return name in self._by_name

    def section_at(self, address: int) -> Optional[Section]:
        """The section containing ``address``, if any."""
        for section in self.sections:
            if section.contains(address):
                return section
        return None

    def is_code_address(self, address: int) -> bool:
        """True if ``address`` is a word-aligned address inside ``.text``."""
        text = self.text
        return text.contains(address) and (address - text.base) % 4 == 0

    # -- Symbols ---------------------------------------------------------

    def symbol_address(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"no such symbol: {name!r}") from None

    def symbol_at(self, address: int) -> Optional[str]:
        """A symbol whose value is exactly ``address``, if one exists."""
        for name, value in self.symbols.items():
            if value == address:
                return name
        return None

    def function_symbols(self) -> Dict[str, int]:
        """Symbols that point into the code section."""
        text = self.text
        return {name: addr for name, addr in self.symbols.items()
                if text.contains(addr)}

    # -- Instruction access ----------------------------------------------

    def instruction_at(self, address: int) -> Instruction:
        """Decode the instruction stored at ``address``."""
        text = self.text
        if not self.is_code_address(address):
            raise ValueError(f"0x{address:x} is not a code address")
        offset = address - text.base
        return decode_from_bytes(text.data[offset:offset + INSTRUCTION_SIZE],
                                 address)

    def iter_instructions(self) -> Iterator[Instruction]:
        """Decode the whole code section in address order."""
        text = self.text
        for offset in range(0, len(text.data), INSTRUCTION_SIZE):
            yield decode_from_bytes(
                text.data[offset:offset + INSTRUCTION_SIZE],
                text.base + offset)

    # -- Initial memory ---------------------------------------------------

    def initial_memory(self) -> Dict[int, int]:
        """Word-addressed initial memory contents (little-endian words)."""
        memory: Dict[int, int] = {}
        for section in self.sections:
            data = section.data
            for offset in range(0, len(data) - len(data) % 4, 4):
                word = int.from_bytes(data[offset:offset + 4], "little")
                memory[section.base + offset] = word
        return memory

    def __repr__(self) -> str:
        names = ", ".join(
            f"{s.name}@0x{s.base:x}+{len(s.data)}" for s in self.sections)
        return f"Program(entry=0x{self.entry:x}, sections=[{names}])"


def word_range(start: int, end: int) -> Iterator[int]:
    """Word-aligned addresses in ``[start, end)``."""
    aligned = start - start % 4
    return iter(range(aligned, end, 4))
