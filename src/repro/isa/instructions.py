"""Instruction set definition for the KRISC target.

Every KRISC instruction is 32 bits wide.  Decoded instructions are
represented uniformly by :class:`Instruction`, whose populated fields
depend on the opcode's :class:`Format`.  This mirrors how binary-level
analyzers such as aiT work: the decoder recovers a semantic instruction
object from raw bytes, and all later phases (CFG reconstruction, value
analysis, cache/pipeline analysis, simulation) interpret that object.

Instruction classes
-------------------

===========  ==================================================
ALU (reg)    ``ADD SUB MUL AND OR XOR SHL SHR ASR``
ALU (imm)    ``ADDI SUBI MULI ANDI ORI XORI SHLI SHRI ASRI``
Moves        ``MOV MOVI MOVHI``
Compare      ``CMP CMPI`` (set N/Z/C/V flags)
Memory       ``LDR STR`` (base + signed offset),
             ``LDRX STRX`` (base + index register)
Control      ``B`` (unconditional), ``BCC`` (conditional),
             ``BL`` (call), ``BR`` (indirect jump),
             ``BLR`` (indirect call), ``RET``
Stack        ``PUSH POP`` (register-mask block transfer)
Misc         ``NOP HALT``
===========  ==================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .registers import register_name


class Format(enum.Enum):
    """Operand layout of an opcode."""

    ALU_RRR = "rrr"      # rd, rs1, rs2
    ALU_RRI = "rri"      # rd, rs1, imm16
    MOV_RR = "mov_rr"    # rd, rs1
    MOV_RI = "mov_ri"    # rd, imm16
    CMP_RR = "cmp_rr"    # rs1, rs2
    CMP_RI = "cmp_ri"    # rs1, imm16
    MEM = "mem"          # rd/rs2, [rs1, imm16]
    MEM_X = "mem_x"      # rd/rs2, [rs1, rs2x]
    BRANCH = "branch"    # imm24 word offset
    CBRANCH = "cbranch"  # cond, imm20 word offset
    IBRANCH = "ibranch"  # rs1
    REGLIST = "reglist"  # 16-bit register mask
    NONE = "none"


class Opcode(enum.IntEnum):
    """Numeric opcodes (the top 6 bits of every encoded instruction)."""

    # ALU register-register
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    AND = 0x04
    OR = 0x05
    XOR = 0x06
    SHL = 0x07
    SHR = 0x08
    ASR = 0x09
    # ALU register-immediate
    ADDI = 0x11
    SUBI = 0x12
    MULI = 0x13
    ANDI = 0x14
    ORI = 0x15
    XORI = 0x16
    SHLI = 0x17
    SHRI = 0x18
    ASRI = 0x19
    # Moves
    MOV = 0x20
    MOVI = 0x21
    MOVHI = 0x22
    # Compares
    CMP = 0x24
    CMPI = 0x25
    # Memory
    LDR = 0x28
    STR = 0x29
    LDRX = 0x2A
    STRX = 0x2B
    # Control flow
    B = 0x30
    BCC = 0x31
    BL = 0x32
    BR = 0x33
    BLR = 0x34
    RET = 0x35
    # Stack block transfer
    PUSH = 0x38
    POP = 0x39
    # Misc
    NOP = 0x00
    HALT = 0x3F


class Cond(enum.IntEnum):
    """Condition codes for ``BCC`` (ARM-style flag predicates)."""

    EQ = 0x0   # Z
    NE = 0x1   # !Z
    LT = 0x2   # N != V          (signed <)
    GE = 0x3   # N == V          (signed >=)
    GT = 0x4   # !Z and N == V   (signed >)
    LE = 0x5   # Z or N != V     (signed <=)
    LO = 0x6   # !C              (unsigned <)
    HS = 0x7   # C               (unsigned >=)
    HI = 0x8   # C and !Z        (unsigned >)
    LS = 0x9   # !C or Z         (unsigned <=)

    def negated(self) -> "Cond":
        """The condition that holds exactly when this one does not."""
        return _NEGATIONS[self]


_NEGATIONS = {
    Cond.EQ: Cond.NE, Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE, Cond.GE: Cond.LT,
    Cond.GT: Cond.LE, Cond.LE: Cond.GT,
    Cond.LO: Cond.HS, Cond.HS: Cond.LO,
    Cond.HI: Cond.LS, Cond.LS: Cond.HI,
}


OPCODE_FORMATS = {
    Opcode.ADD: Format.ALU_RRR, Opcode.SUB: Format.ALU_RRR,
    Opcode.MUL: Format.ALU_RRR, Opcode.AND: Format.ALU_RRR,
    Opcode.OR: Format.ALU_RRR, Opcode.XOR: Format.ALU_RRR,
    Opcode.SHL: Format.ALU_RRR, Opcode.SHR: Format.ALU_RRR,
    Opcode.ASR: Format.ALU_RRR,
    Opcode.ADDI: Format.ALU_RRI, Opcode.SUBI: Format.ALU_RRI,
    Opcode.MULI: Format.ALU_RRI, Opcode.ANDI: Format.ALU_RRI,
    Opcode.ORI: Format.ALU_RRI, Opcode.XORI: Format.ALU_RRI,
    Opcode.SHLI: Format.ALU_RRI, Opcode.SHRI: Format.ALU_RRI,
    Opcode.ASRI: Format.ALU_RRI,
    Opcode.MOV: Format.MOV_RR, Opcode.MOVI: Format.MOV_RI,
    Opcode.MOVHI: Format.MOV_RI,
    Opcode.CMP: Format.CMP_RR, Opcode.CMPI: Format.CMP_RI,
    Opcode.LDR: Format.MEM, Opcode.STR: Format.MEM,
    Opcode.LDRX: Format.MEM_X, Opcode.STRX: Format.MEM_X,
    Opcode.B: Format.BRANCH, Opcode.BL: Format.BRANCH,
    Opcode.BCC: Format.CBRANCH,
    Opcode.BR: Format.IBRANCH, Opcode.BLR: Format.IBRANCH,
    Opcode.RET: Format.NONE,
    Opcode.PUSH: Format.REGLIST, Opcode.POP: Format.REGLIST,
    Opcode.NOP: Format.NONE, Opcode.HALT: Format.NONE,
}

#: Opcodes that may transfer control somewhere other than the next address.
CONTROL_FLOW_OPCODES = frozenset({
    Opcode.B, Opcode.BCC, Opcode.BL, Opcode.BR, Opcode.BLR,
    Opcode.RET, Opcode.HALT,
})

#: Opcodes that read memory.
LOAD_OPCODES = frozenset({Opcode.LDR, Opcode.LDRX, Opcode.POP})

#: Opcodes that write memory.
STORE_OPCODES = frozenset({Opcode.STR, Opcode.STRX, Opcode.PUSH})


@dataclass(frozen=True)
class Instruction:
    """A decoded KRISC instruction.

    Field meaning depends on ``opcode``'s :class:`Format`; unused fields
    are ``None``/empty.  ``address`` is filled in by the decoder and names
    the byte address the instruction was fetched from.
    """

    opcode: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    cond: Optional[Cond] = None
    reglist: Tuple[int, ...] = field(default=())
    address: Optional[int] = None

    @property
    def format(self) -> Format:
        return OPCODE_FORMATS[self.opcode]

    @property
    def is_control_flow(self) -> bool:
        return self.opcode in CONTROL_FLOW_OPCODES

    @property
    def is_call(self) -> bool:
        return self.opcode in (Opcode.BL, Opcode.BLR)

    @property
    def is_return(self) -> bool:
        return self.opcode is Opcode.RET

    @property
    def is_load(self) -> bool:
        return self.opcode in LOAD_OPCODES

    @property
    def is_store(self) -> bool:
        return self.opcode in STORE_OPCODES

    @property
    def accesses_memory(self) -> bool:
        return self.is_load or self.is_store

    def branch_target(self) -> Optional[int]:
        """Absolute byte address of the static branch target, if any.

        Returns ``None`` for non-branches and for indirect branches whose
        target is not statically encoded (``BR``/``BLR``/``RET``).
        """
        if self.opcode in (Opcode.B, Opcode.BL, Opcode.BCC):
            assert self.address is not None and self.imm is not None
            return self.address + 4 + 4 * self.imm
        return None

    def written_registers(self) -> Tuple[int, ...]:
        """Registers this instruction writes (excluding flags)."""
        from .registers import LR, SP

        fmt = self.format
        if fmt in (Format.ALU_RRR, Format.ALU_RRI, Format.MOV_RR,
                   Format.MOV_RI):
            return (self.rd,)
        if self.opcode in (Opcode.LDR, Opcode.LDRX):
            return (self.rd,)
        if self.opcode is Opcode.BL or self.opcode is Opcode.BLR:
            return (LR,)
        if self.opcode is Opcode.PUSH:
            return (SP,)
        if self.opcode is Opcode.POP:
            return tuple(self.reglist) + (SP,)
        return ()

    def read_registers(self) -> Tuple[int, ...]:
        """Registers this instruction reads."""
        from .registers import LR, SP

        op = self.opcode
        fmt = self.format
        if fmt is Format.ALU_RRR:
            return (self.rs1, self.rs2)
        if fmt is Format.ALU_RRI:
            return (self.rs1,)
        if fmt is Format.MOV_RR:
            return (self.rs1,)
        if op is Opcode.MOVHI:
            return (self.rd,)
        if fmt is Format.CMP_RR:
            return (self.rs1, self.rs2)
        if fmt is Format.CMP_RI:
            return (self.rs1,)
        if op is Opcode.LDR:
            return (self.rs1,)
        if op is Opcode.STR:
            return (self.rs1, self.rs2)
        if op is Opcode.LDRX:
            return (self.rs1, self.rs2)
        if op is Opcode.STRX:
            return (self.rs1, self.rs2, self.rd)
        if fmt is Format.IBRANCH:
            return (self.rs1,)
        if op is Opcode.RET:
            return (LR,)
        if op is Opcode.PUSH:
            return tuple(self.reglist) + (SP,)
        if op is Opcode.POP:
            return (SP,)
        return ()

    def __str__(self) -> str:
        return format_instruction(self)


def format_instruction(instr: Instruction) -> str:
    """Render ``instr`` in canonical assembly syntax."""
    op = instr.opcode
    name = op.name
    fmt = instr.format
    r = register_name
    if fmt is Format.ALU_RRR:
        return f"{name} {r(instr.rd)}, {r(instr.rs1)}, {r(instr.rs2)}"
    if fmt is Format.ALU_RRI:
        return f"{name} {r(instr.rd)}, {r(instr.rs1)}, #{instr.imm}"
    if fmt is Format.MOV_RR:
        return f"{name} {r(instr.rd)}, {r(instr.rs1)}"
    if fmt is Format.MOV_RI:
        return f"{name} {r(instr.rd)}, #{instr.imm}"
    if fmt is Format.CMP_RR:
        return f"{name} {r(instr.rs1)}, {r(instr.rs2)}"
    if fmt is Format.CMP_RI:
        return f"{name} {r(instr.rs1)}, #{instr.imm}"
    if fmt is Format.MEM:
        reg = instr.rd if op is Opcode.LDR else instr.rs2
        return f"{name} {r(reg)}, [{r(instr.rs1)}, #{instr.imm}]"
    if fmt is Format.MEM_X:
        reg = instr.rd
        return f"{name} {r(reg)}, [{r(instr.rs1)}, {r(instr.rs2)}]"
    if fmt is Format.BRANCH:
        target = instr.branch_target()
        where = f"0x{target:x}" if target is not None else f"#{instr.imm}"
        return f"{name} {where}"
    if fmt is Format.CBRANCH:
        target = instr.branch_target()
        where = f"0x{target:x}" if target is not None else f"#{instr.imm}"
        return f"B{instr.cond.name} {where}"
    if fmt is Format.IBRANCH:
        return f"{name} {r(instr.rs1)}"
    if fmt is Format.REGLIST:
        regs = ", ".join(r(i) for i in instr.reglist)
        return f"{name} {{{regs}}}"
    return name
