"""Linear disassembler for KRISC binaries.

This is a diagnostic tool (used by reports and tests); CFG
reconstruction in :mod:`repro.cfg` performs its own recursive-descent
decoding and does not rely on linear sweep.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from .encoding import DecodingError, INSTRUCTION_SIZE, decode_from_bytes
from .instructions import Instruction, format_instruction
from .program import Program


def disassemble_section(data: bytes, base: int
                        ) -> Iterator[Tuple[int, Optional[Instruction]]]:
    """Yield ``(address, instruction_or_None)`` for each word in ``data``.

    Words that do not decode yield ``None`` so callers can render them as
    raw data instead of aborting the sweep.
    """
    for offset in range(0, len(data) - len(data) % 4, INSTRUCTION_SIZE):
        address = base + offset
        try:
            yield address, decode_from_bytes(
                data[offset:offset + INSTRUCTION_SIZE], address)
        except DecodingError:
            yield address, None


def disassemble(program: Program) -> str:
    """Render the text section of ``program`` as annotated assembly."""
    text = program.text
    labels = {addr: name for name, addr in program.symbols.items()
              if text.contains(addr)}
    lines: List[str] = []
    for address, instr in disassemble_section(text.data, text.base):
        if address in labels:
            lines.append(f"{labels[address]}:")
        if instr is None:
            word = int.from_bytes(
                text.data[address - text.base:address - text.base + 4],
                "little")
            body = f".word 0x{word:08x}"
        else:
            body = format_instruction(instr)
            target = instr.branch_target()
            if target is not None and target in labels:
                body += f"    ; -> {labels[target]}"
        lines.append(f"  0x{address:05x}:  {body}")
    return "\n".join(lines) + "\n"
