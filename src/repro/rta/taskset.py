"""Task-set model for multi-task response-time analysis.

A *task set* is the RTA counterpart of :mod:`repro.stack.osek`'s
``TaskSpec`` list: named tasks with OSEK-style priorities and
preemption thresholds, extended with the timing attributes response-
time analysis needs (period, release jitter, deadline) and a workload
binding (the entry program whose WCET the aiT pipeline computes).

Task sets are plain JSON::

    {
      "name": "ecu_mix",
      "context_switch_cycles": 40,
      "tasks": [
        {"name": "ctrl", "workload": "fibcall", "priority": 3,
         "period": 40000, "jitter": 0},
        {"name": "log",  "workload": "bs", "priority": 1,
         "period": 120000, "deadline": 100000}
      ]
    }

Preemption eligibility follows the OSEK threshold rule shared with the
stack analysis: task *j* can preempt task *i* iff ``j.priority >
i.effective_threshold`` (thresholds default to the task's own
priority, i.e. fully preemptive scheduling).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class RTTask:
    """One task: workload binding plus scheduling attributes."""

    name: str
    workload: str          # entry symbol: a repro workload-suite name
    priority: int          # larger = more urgent (OSEK convention)
    period: int            # minimum inter-arrival time, in cycles
    jitter: int = 0        # release jitter, in cycles
    threshold: Optional[int] = None   # preemption threshold
    deadline: Optional[int] = None    # defaults to the period

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.period <= 0:
            raise ValueError(f"task {self.name}: period must be > 0")
        if self.jitter < 0:
            raise ValueError(f"task {self.name}: jitter must be >= 0")
        if self.threshold is not None and self.threshold < self.priority:
            raise ValueError(
                f"task {self.name}: threshold below priority")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"task {self.name}: deadline must be > 0")

    @property
    def effective_threshold(self) -> int:
        """Priority the task runs at once started (>= its priority)."""
        return self.threshold if self.threshold is not None \
            else self.priority

    @property
    def effective_deadline(self) -> int:
        return self.deadline if self.deadline is not None \
            else self.period


def can_preempt(preemptor: RTTask, victim: RTTask) -> bool:
    """OSEK threshold rule, identical to the stack analysis'."""
    return preemptor.priority > victim.effective_threshold


@dataclass(frozen=True)
class TaskSet:
    """A named set of tasks sharing one processor and its caches."""

    name: str
    tasks: Tuple[RTTask, ...]
    #: Kernel context-switch cost charged per preemption, in cycles.
    context_switch_cycles: int = 0

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("task set is empty")
        names = [task.name for task in self.tasks]
        if len(set(names)) != len(names):
            raise ValueError("duplicate task names")
        if self.context_switch_cycles < 0:
            raise ValueError("context_switch_cycles must be >= 0")

    def task(self, name: str) -> RTTask:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(name)

    def preemptors_of(self, victim: RTTask) -> List[RTTask]:
        """Tasks that can preempt ``victim`` (threshold rule)."""
        return [task for task in self.tasks
                if task is not victim and can_preempt(task, victim)]

    def with_priorities(self, priorities: Dict[str, int]) -> "TaskSet":
        """Copy with reassigned priorities (thresholds reset to the
        new priorities — sweep orderings compare plain preemptive
        schedules)."""
        tasks = tuple(replace(task, priority=priorities[task.name],
                              threshold=None)
                      for task in self.tasks)
        return replace(self, tasks=tasks)

    def reordered(self, ordering: str) -> "TaskSet":
        """Priority reassignment for one sweep ordering.

        ``given`` keeps the configured priorities (and thresholds);
        ``rate_monotonic`` ranks shorter periods higher;
        ``reverse`` inverts the configured priority order.
        """
        if ordering == "given":
            return self
        if ordering == "rate_monotonic":
            ranked = sorted(self.tasks,
                            key=lambda t: (-t.period, t.name))
        elif ordering == "reverse":
            ranked = sorted(self.tasks,
                            key=lambda t: (-t.priority, t.name))
        else:
            raise ValueError(f"unknown ordering: {ordering!r}")
        return self.with_priorities(
            {task.name: rank + 1 for rank, task in enumerate(ranked)})


#: Priority orderings the sweep scenario iterates by default.
ORDERINGS = ("given", "rate_monotonic", "reverse")


def parse_taskset(payload: Any) -> TaskSet:
    """Build a :class:`TaskSet` from decoded JSON, validating shape."""
    if not isinstance(payload, dict):
        raise ValueError("task set must be a JSON object")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError("task set needs a non-empty 'name'")
    raw_tasks = payload.get("tasks")
    if not isinstance(raw_tasks, list) or not raw_tasks:
        raise ValueError("task set needs a non-empty 'tasks' list")
    tasks = []
    for index, raw in enumerate(raw_tasks):
        if not isinstance(raw, dict):
            raise ValueError(f"tasks[{index}] must be an object")
        unknown = set(raw) - {"name", "workload", "priority", "period",
                              "jitter", "threshold", "deadline"}
        if unknown:
            raise ValueError(
                f"tasks[{index}]: unknown keys {sorted(unknown)}")
        for key in ("name", "workload", "priority", "period"):
            if key not in raw:
                raise ValueError(f"tasks[{index}]: missing '{key}'")
        tasks.append(RTTask(
            name=raw["name"], workload=raw["workload"],
            priority=int(raw["priority"]), period=int(raw["period"]),
            jitter=int(raw.get("jitter", 0)),
            threshold=(int(raw["threshold"])
                       if raw.get("threshold") is not None else None),
            deadline=(int(raw["deadline"])
                      if raw.get("deadline") is not None else None)))
    return TaskSet(
        name=name, tasks=tuple(tasks),
        context_switch_cycles=int(
            payload.get("context_switch_cycles", 0)))


def load_taskset(path: str) -> TaskSet:
    """Parse a task-set JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: invalid JSON ({exc})") from exc
    return parse_taskset(payload)
