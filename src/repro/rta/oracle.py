"""Preemptive-simulation oracle for RTA results (S7/S8).

For every (victim, preemptor) pair of a task set the oracle replays
the victim on the concrete simulator with the preemptor injected at
instruction boundaries (:meth:`repro.sim.cpu.Simulator.run_preemptive`,
which shares the caches between the two tasks exactly as a real
context switch does) and checks the two multi-task soundness
obligations of :mod:`repro.verify.checker`:

* **S7** — the observed preempted response never exceeds the analyzed
  response time ``R_i``;
* **S8** — the victim's extra cache misses per preemption never exceed
  the CRPD extra-miss budget ``|UCB_i ∩ ECB_j|`` (per cache, clipped
  at the associativity per set).

Like :func:`repro.verify.checker.verify_bounds` this corroborates the
static argument, it never replaces it."""

from __future__ import annotations

from typing import Optional, Sequence

from ..verify.checker import VerificationReport, verify_preemption
from .response import RTAResult


def verify_taskset(result: RTAResult,
                   fractions: Sequence[float] = (0.25, 0.5, 0.75),
                   max_steps: int = 2_000_000,
                   report: Optional[VerificationReport] = None
                   ) -> VerificationReport:
    """Check S7/S8 over every preemptable pair of the task set.

    Preemptions are injected at each of ``fractions`` of the victim's
    solo instruction count, one preemption per run.  A victim that was
    not proven schedulable skips S7 (no bound to check) but still
    checks S8 — the CRPD budget holds regardless of schedulability.
    """
    if report is None:
        report = VerificationReport()
    taskset = result.taskset
    for victim in taskset.tasks:
        analysis = result.details[victim.name]
        response = result.response_of(victim.name)
        for preemptor in taskset.preemptors_of(victim):
            fetch_budget, data_budget = result.miss_budgets(
                victim.name, preemptor.name)
            # One preemption's worth of the analyzed response: the
            # recurrence charges every preemptor at least one arrival
            # (⌈R/T⌉ ≥ 1 for R > 0), so R_i bounds the single-
            # preemption runs the oracle drives.
            verify_preemption(
                analysis.program,
                result.details[preemptor.name].program,
                config=result.config,
                response_bound=response.response,
                fetch_miss_budget=fetch_budget,
                data_miss_budget=data_budget,
                fractions=fractions,
                max_steps=max_steps,
                report=report,
                label=f"{victim.name}<-{preemptor.name}")
    return report
