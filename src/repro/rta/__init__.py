"""Multi-task response-time analysis (RTA) with cache-related
preemption delay (CRPD).

The single-task pipeline bounds each task in isolation; this package
composes those bounds into system-level schedulability verdicts:

* :mod:`repro.rta.taskset` — JSON task-set model (priorities, periods,
  jitter, OSEK preemption thresholds, workload bindings);
* :mod:`repro.rta.ucb` — useful/evicting cache blocks from the
  existing must/may cache fixpoint, giving per-pair CRPD bounds;
* :mod:`repro.rta.response` — the jitter-aware response-time
  recurrence solved on the shared WTO fixpoint kernel;
* :mod:`repro.rta.oracle` — preemptive-simulation checks (S7/S8);
* :mod:`repro.rta.sweep` — ordering × geometry schedulability sweeps
  with golden verdicts.
"""

from .oracle import verify_taskset
from .response import (RTAResult, TaskResponse, analyze_taskset,
                       response_times, solve_recurrence)
from .taskset import (ORDERINGS, RTTask, TaskSet, can_preempt,
                      load_taskset, parse_taskset)
from .ucb import (CacheUCB, TaskFootprint, analyze_ucb, crpd_cycles,
                  crpd_extra_misses, extra_miss_bound, footprint_of,
                  full_refill_cycles)

__all__ = [
    "ORDERINGS", "RTTask", "TaskSet", "can_preempt", "load_taskset",
    "parse_taskset", "CacheUCB", "TaskFootprint", "analyze_ucb",
    "crpd_cycles", "crpd_extra_misses", "extra_miss_bound",
    "footprint_of", "full_refill_cycles", "RTAResult", "TaskResponse",
    "analyze_taskset", "response_times", "solve_recurrence",
    "verify_taskset",
]
