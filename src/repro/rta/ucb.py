"""Useful and evicting cache blocks — the CRPD building blocks.

Cache-related preemption delay (CRPD) bounds what one preemption can
cost a task in *extra cache misses*.  Following Lee et al. / Altmeyer's
formulation on top of Ferdinand-style abstract cache analysis:

* A **useful cache block (UCB)** of task *i* at program point *p* is a
  memory block that (a) *may be cached* at *p* — read off the may-cache
  fixpoint state of :class:`repro.cache.analysis.CacheFixpoint` — and
  (b) *may be reused* at or after *p* — a backward live-lines fixpoint
  over the same access specs.  Only evicting such a block can cause an
  extra miss the single-task WCET did not already charge.

* The **evicting cache blocks (ECB)** of a preempting task *j* are all
  lines *j* may touch (any of them can age victim blocks out).

The per-preemption bound is then, per cache::

    extra_misses(i, j) = max over points p of
        Σ over cache sets s touched by ECB_j
            min(associativity, |UCB_i(p) in set s|)

The per-set clip at the associativity keeps the bound sound and tight
for set-associative LRU: one preemption can age each set by at most
``associativity`` positions, so at most that many useful blocks per
touched set are lost, no matter how many lines the preemptor drags
through the set.  ``CRPD(i, j)`` in cycles is the miss penalty times
the extra-miss bound, summed over the I- and D-cache.

An unknown-address access (value analysis lost the address) makes the
ECB side *top* (touches every set) and, where the may cache is
universal and liveness unknown, the UCB side top as well (every set
fully useful) — degrading toward the full cache refill bound, never
below it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..cache.analysis import (AccessSpec, CacheFixpoint,
                              dcache_access_specs, icache_access_specs)
from ..cache.config import CacheConfig
from ..cfg.expand import NodeId, TaskGraph

#: Marker for a "top" UCB point: every line of every set may be useful.
TOP = None


@dataclass(frozen=True)
class CacheUCB:
    """UCB points and ECB set of one task over one cache."""

    config: CacheConfig
    #: Distinct per-point useful-line sets; ``None`` entries are top.
    points: Tuple[Optional[FrozenSet[int]], ...]
    #: Every line the task may touch.
    ecb: FrozenSet[int]
    #: True when some access had an unknown address: the task may
    #: touch (and thus evict from) every cache set.
    ecb_unknown: bool

    def geometry(self) -> Tuple[int, int, int]:
        return (self.config.num_sets, self.config.associativity,
                self.config.line_size)


def _line_liveness(graph: TaskGraph,
                   accesses_of: Dict[NodeId, List[AccessSpec]]
                   ) -> Tuple[Dict[NodeId, Set[int]],
                              Dict[NodeId, bool]]:
    """Backward may-be-accessed-later fixpoint.

    ``live_in[n]`` holds every line some access at or after the entry
    of ``n`` may touch; ``unknown_in[n]`` records an unknown-address
    access at or after ``n`` (liveness is then top along that path).
    Union join over successors; terminates because line sets only
    grow within the finite universe of accessed lines.
    """
    gen: Dict[NodeId, Set[int]] = {}
    gen_unknown: Dict[NodeId, bool] = {}
    for node in graph.nodes():
        lines: Set[int] = set()
        unknown = False
        for spec in accesses_of.get(node, []):
            if spec.is_unknown:
                unknown = True
            else:
                lines.update(spec.lines)
        gen[node] = lines
        gen_unknown[node] = unknown

    live_in: Dict[NodeId, Set[int]] = {
        node: set(gen[node]) for node in graph.nodes()}
    unknown_in: Dict[NodeId, bool] = dict(gen_unknown)
    worklist = sorted(graph.nodes(), key=TaskGraph.node_key,
                      reverse=True)
    pending = set(worklist)
    while worklist:
        node = worklist.pop()
        pending.discard(node)
        out: Set[int] = set()
        unknown_out = False
        for edge in graph.successors(node):
            out |= live_in[edge.target]
            unknown_out = unknown_out or unknown_in[edge.target]
        new_in = gen[node] | out
        new_unknown = gen_unknown[node] or unknown_out
        if new_in != live_in[node] or new_unknown != unknown_in[node]:
            live_in[node] = new_in
            unknown_in[node] = new_unknown
            for edge in graph.predecessors(node):
                if edge.source not in pending:
                    pending.add(edge.source)
                    worklist.append(edge.source)
    return live_in, unknown_in


def _useful_at(state, live: Optional[Set[int]]
               ) -> Optional[FrozenSet[int]]:
    """UCB at one point: may-cached lines ∩ lines live afterwards.

    ``live=None`` means liveness is top.  Returns ``TOP`` when the may
    cache is universal *and* liveness is top — every line of every set
    may be both cached and reused."""
    may = state.may
    if may.universal:
        if live is None:
            return TOP
        return frozenset(live)
    cached = may.ages.keys()
    if live is None:
        return frozenset(cached)
    return frozenset(line for line in cached if line in live)


def analyze_ucb(graph: TaskGraph, config: CacheConfig,
                accesses_of: Dict[NodeId, List[AccessSpec]]
                ) -> CacheUCB:
    """UCB points and ECB set over one cache of one task.

    Reuses the existing must/may fixpoint (forced onto the pure-python
    domain so per-line may ages are directly inspectable) and pairs
    its entry states with a backward liveness pass.  Points are the
    instruction boundaries before each access plus every block entry;
    duplicates collapse, since only the maximum over points matters.
    """
    fixpoint = CacheFixpoint(graph, config, accesses_of, impl="python")
    entry_states = fixpoint.solve()
    live_in, unknown_in = _line_liveness(graph, accesses_of)

    ecb: Set[int] = set()
    ecb_unknown = False
    points: Set[Optional[FrozenSet[int]]] = set()
    for node in graph.nodes():
        state = entry_states.get(node)
        if state is None:
            continue        # unreachable under this expansion
        specs = accesses_of.get(node, [])
        # Suffix liveness inside the block: lines accessed by
        # specs[k:] plus whatever is live at block exit.
        exit_live: Optional[Set[int]] = set()
        exit_unknown = False
        for edge in graph.successors(node):
            exit_live |= live_in[edge.target]
            exit_unknown = exit_unknown or unknown_in[edge.target]
        suffixes: List[Optional[Set[int]]] = [None] * (len(specs) + 1)
        suffixes[len(specs)] = None if exit_unknown else exit_live
        for k in range(len(specs) - 1, -1, -1):
            spec = specs[k]
            below = suffixes[k + 1]
            if spec.is_unknown or below is None:
                suffixes[k] = None
            else:
                suffixes[k] = below | set(spec.lines)
        state = state.copy()
        points.add(_useful_at(state, suffixes[0]))
        for k, spec in enumerate(specs):
            if spec.is_unknown:
                ecb_unknown = True
                state.access_unknown()
            else:
                ecb.update(spec.lines)
                state.access_range(list(spec.lines))
            points.add(_useful_at(state, suffixes[k + 1]))
    ordered = tuple(sorted(
        points, key=lambda p: (p is TOP, tuple(sorted(p or ())))))
    return CacheUCB(config=config, points=ordered,
                    ecb=frozenset(ecb), ecb_unknown=ecb_unknown)


def extra_miss_bound(victim: CacheUCB, preemptor: CacheUCB) -> int:
    """Max useful blocks of ``victim`` one preemption by ``preemptor``
    can evict, on one cache (see module docstring for the formula)."""
    if victim.geometry() != preemptor.geometry():
        raise ValueError(
            "UCB/ECB computed under different cache geometries: "
            f"{victim.geometry()} vs {preemptor.geometry()}")
    config = victim.config
    if preemptor.ecb_unknown:
        touched: Optional[Set[int]] = None      # every set
    else:
        touched = {line % config.num_sets for line in preemptor.ecb}
        if not touched:
            return 0
    best = 0
    for point in victim.points:
        if point is TOP:
            sets = config.num_sets if touched is None else len(touched)
            count = sets * config.associativity
        else:
            per_set = Counter(
                line % config.num_sets for line in point
                if touched is None
                or (line % config.num_sets) in touched)
            count = sum(min(n, config.associativity)
                        for n in per_set.values())
        best = max(best, count)
    return best


@dataclass(frozen=True)
class TaskFootprint:
    """UCB/ECB of one task over both caches."""

    icache: CacheUCB
    dcache: CacheUCB


def footprint_of(result) -> TaskFootprint:
    """Derive a task's cache footprint from its (cached) WCET analysis
    artifacts — the same graph, value analysis, and cache configs the
    single-task bound used."""
    graph = result.graph
    i_config = result.icache.config
    d_config = result.dcache.config
    return TaskFootprint(
        icache=analyze_ucb(graph, i_config,
                           icache_access_specs(graph, i_config)),
        dcache=analyze_ucb(graph, d_config,
                           dcache_access_specs(graph, d_config,
                                               result.values)))


def crpd_extra_misses(victim: TaskFootprint, preemptor: TaskFootprint
                      ) -> Tuple[int, int]:
    """(I-cache, D-cache) extra-miss budgets for one preemption —
    the S8 obligation checked by the preemptive simulator oracle."""
    return (extra_miss_bound(victim.icache, preemptor.icache),
            extra_miss_bound(victim.dcache, preemptor.dcache))


def crpd_cycles(victim: TaskFootprint, preemptor: TaskFootprint) -> int:
    """CRPD(victim, preemptor) in cycles, both caches."""
    i_misses, d_misses = crpd_extra_misses(victim, preemptor)
    return (victim.icache.config.miss_penalty * i_misses
            + victim.dcache.config.miss_penalty * d_misses)


def full_refill_cycles(icache: CacheConfig, dcache: CacheConfig) -> int:
    """The naive CRPD reference: a preemption refills both caches
    entirely (every line of every set misses once)."""
    return (icache.miss_penalty * icache.num_sets * icache.associativity
            + dcache.miss_penalty * dcache.num_sets
            * dcache.associativity)
