"""Response-time analysis with CRPD, on the shared WTO kernel.

The classic Joseph–Pandya recurrence, extended with release jitter and
the cache-related preemption delay of :mod:`repro.rta.ucb`::

    R_i = C_i + Σ_{j ∈ hp(i)} ⌈(R_i + J_j) / T_j⌉ · (C_j + γ_ij + CS)

where ``hp(i)`` are the tasks that can preempt *i* (the OSEK threshold
rule shared with the stack analysis), ``γ_ij = CRPD(i, j)`` and ``CS``
the kernel context-switch cost.  The recurrence is a monotone function
on a finite chain — the integers up to the task's deadline, saturated
at ``deadline + 1`` — so it is solved on the same
:class:`~repro.analysis.fixpoint.FixpointKernel` every other fixpoint
in this repo runs on: a single self-loop node whose transfer *is* the
recurrence.  Saturation makes divergence (utilization > 1) terminate
in the "unschedulable" verdict instead of iterating forever.

Per-task WCETs (``C_i``) come from the ordinary phase pipeline through
a shared :class:`~repro.batch.cachestore.ArtifactCache`, so a task set
over N tasks costs N cached single-task analyses — tasks binding the
same workload, and repeated sweeps over the same set, dedup through
the store instead of recomputing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analysis.fixpoint import FixpointKernel, FixpointSemantics
from ..cache.config import MachineConfig
from .taskset import RTTask, TaskSet
from .ucb import (TaskFootprint, crpd_cycles, crpd_extra_misses,
                  footprint_of, full_refill_cycles)


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // denominator)


class _RecurrenceSemantics(FixpointSemantics):
    """The RTA recurrence as a transfer function on saturated ints.

    Domain: integers ordered by ≤, truncated at ``limit + 1`` (the
    *unschedulable* sentinel).  Join is max, the transfer is monotone,
    the chain is finite — the kernel's recursive strategy terminates
    unconditionally, with no widening."""

    widening = False

    def __init__(self, recurrence, limit: int):
        self.recurrence = recurrence
        self.limit = limit

    def transfer(self, node: Any, state: int) -> int:
        return min(self.recurrence(state), self.limit + 1)

    def join(self, old: int, new: int) -> int:
        return max(old, new)

    def leq(self, a: int, b: int) -> bool:
        return a <= b

    def is_bottom(self, state: int) -> bool:
        return False

    def copy(self, state: int) -> int:
        return state


def solve_recurrence(start: int, recurrence,
                     limit: int) -> Tuple[Optional[int], int]:
    """Least fixpoint of ``R = recurrence(R)`` above ``start``, or
    ``None`` once it climbs past ``limit``.  Returns ``(value,
    iterations)``; ``iterations`` counts transfer evaluations."""
    semantics = _RecurrenceSemantics(recurrence, limit)
    kernel = FixpointKernel(
        "R", lambda node: ("loop",), lambda edge: "R", semantics)
    states = kernel.solve(min(start, limit + 1))
    value = states["R"]
    iterations = kernel.stats.transfers
    if value > limit:
        return None, iterations
    return value, iterations


@dataclass(frozen=True)
class TaskResponse:
    """Analyzed response of one task."""

    name: str
    priority: int
    period: int
    deadline: int
    wcet_cycles: int                   # C_i
    response: Optional[int]            # R_i; None = not schedulable
    naive_response: Optional[int]      # R_i under full-refill CRPD
    crpd: Dict[str, int]               # γ_ij per preempting task
    iterations: int
    naive_iterations: int = 0

    @property
    def schedulable(self) -> bool:
        return self.response is not None


def response_times(taskset: TaskSet,
                   wcet_cycles: Mapping[str, int],
                   crpd: Mapping[Tuple[str, str], int],
                   naive_crpd: Optional[int] = None
                   ) -> List[TaskResponse]:
    """Solve the recurrence for every task of ``taskset``.

    ``crpd[(victim, preemptor)]`` supplies γ in cycles;
    ``naive_crpd`` (a single full-refill figure) additionally solves
    the naive reference recurrence every γ replaced by it — the bound
    a CRPD-oblivious analysis would have to use.
    """
    responses = []
    switch = taskset.context_switch_cycles
    for task in taskset.tasks:
        c_i = wcet_cycles[task.name]
        hp = taskset.preemptors_of(task)
        limit = task.effective_deadline
        gamma = {p.name: crpd[(task.name, p.name)] for p in hp}

        def recurrence(R: int, c_i=c_i, hp=hp, gamma=gamma) -> int:
            total = c_i
            for preemptor in hp:
                arrivals = _ceil_div(R + preemptor.jitter,
                                     preemptor.period)
                total += arrivals * (wcet_cycles[preemptor.name]
                                     + gamma[preemptor.name] + switch)
            return total

        response, iterations = solve_recurrence(c_i, recurrence, limit)
        naive_response: Optional[int] = None
        naive_iterations = 0
        if naive_crpd is not None:
            naive_gamma = {p.name: naive_crpd for p in hp}

            def naive_rec(R: int, c_i=c_i, hp=hp,
                          gamma=naive_gamma) -> int:
                total = c_i
                for preemptor in hp:
                    arrivals = _ceil_div(R + preemptor.jitter,
                                         preemptor.period)
                    total += arrivals * (wcet_cycles[preemptor.name]
                                         + gamma[preemptor.name]
                                         + switch)
                return total

            naive_response, naive_iterations = solve_recurrence(
                c_i, naive_rec, limit)
        responses.append(TaskResponse(
            name=task.name, priority=task.priority,
            period=task.period, deadline=limit,
            wcet_cycles=c_i, response=response,
            naive_response=naive_response, crpd=gamma,
            iterations=iterations,
            naive_iterations=naive_iterations))
    return responses


@dataclass
class TaskAnalysis:
    """Everything the oracle needs about one task."""

    task: RTTask
    program: Any                    # compiled Program
    wcet: Any                       # WCETResult
    footprint: TaskFootprint


@dataclass
class RTAResult:
    """Full analysis of one task set under one machine config."""

    taskset: TaskSet
    config: MachineConfig
    responses: List[TaskResponse]
    details: Dict[str, TaskAnalysis] = field(default_factory=dict)
    #: Full-refill CRPD figure the naive responses were solved with.
    naive_crpd_cycles: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def schedulable(self) -> bool:
        return all(r.schedulable for r in self.responses)

    def response_of(self, name: str) -> TaskResponse:
        for response in self.responses:
            if response.name == name:
                return response
        raise KeyError(name)

    def miss_budgets(self, victim: str,
                     preemptor: str) -> Tuple[int, int]:
        """(I-cache, D-cache) extra-miss budgets per preemption —
        the S8 obligation for this pair."""
        return crpd_extra_misses(self.details[victim].footprint,
                                 self.details[preemptor].footprint)

    def rows(self) -> List[Dict[str, Any]]:
        """JSON-friendly per-task summary (CLI and golden files)."""
        return [{
            "task": r.name,
            "priority": r.priority,
            "period": r.period,
            "deadline": r.deadline,
            "wcet_cycles": r.wcet_cycles,
            "response": r.response,
            "naive_response": r.naive_response,
            "crpd": dict(sorted(r.crpd.items())),
            "schedulable": r.schedulable,
        } for r in self.responses]


def analyze_taskset(taskset: TaskSet,
                    config: Optional[MachineConfig] = None,
                    cache=None) -> RTAResult:
    """Analyze a task set end to end.

    Per-task WCETs are ordinary cached ``analyze_wcet`` phase products
    (one shared ``cache`` across all tasks — pass the sweep's store to
    dedup across jobs); UCB/ECB footprints derive from the artifacts
    those analyses already carry.
    """
    from ..batch.cachestore import ArtifactCache
    from ..workloads.suite import analyze_workload, get_workload

    config = config or MachineConfig.default()
    if cache is None:
        cache = ArtifactCache()
    hits0, misses0 = cache.hits, cache.misses

    details: Dict[str, TaskAnalysis] = {}
    programs: Dict[str, Any] = {}
    footprints: Dict[str, TaskFootprint] = {}
    for task in taskset.tasks:
        workload = get_workload(task.workload)
        program = programs.get(task.workload)
        if program is None:
            program = workload.compile()
            programs[task.workload] = program
        wcet = analyze_workload(workload, config=config,
                                program=program, phase_cache=cache)
        footprint = footprints.get(task.workload)
        if footprint is None:
            footprint = footprint_of(wcet)
            footprints[task.workload] = footprint
        details[task.name] = TaskAnalysis(
            task=task, program=program, wcet=wcet,
            footprint=footprint)

    wcet_cycles = {name: analysis.wcet.wcet_cycles
                   for name, analysis in details.items()}
    crpd: Dict[Tuple[str, str], int] = {}
    for task in taskset.tasks:
        for preemptor in taskset.preemptors_of(task):
            crpd[(task.name, preemptor.name)] = crpd_cycles(
                details[task.name].footprint,
                details[preemptor.name].footprint)
    naive = full_refill_cycles(config.icache, config.dcache)
    responses = response_times(taskset, wcet_cycles, crpd,
                               naive_crpd=naive)
    return RTAResult(
        taskset=taskset, config=config, responses=responses,
        details=details, naive_crpd_cycles=naive,
        cache_hits=cache.hits - hits0,
        cache_misses=cache.misses - misses0)
