"""Schedulability sweeps: priority orderings × cache geometries.

The ``repro batch`` counterpart for task sets: one row per (ordering,
geometry) cell, each an :func:`repro.rta.response.analyze_taskset`
run against a shared artifact cache — per-task WCET phases dedup
across cells that agree on the geometry, so the sweep costs far fewer
analyses than rows × tasks.

Golden files pin the *verdicts* (schedulable or not, and the exact
response times) per cell, the schedulability analogue of the golden
WCET bounds in ``tests/golden_bounds.json``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..cache.config import CacheConfig, MachineConfig
from .response import analyze_taskset
from .taskset import ORDERINGS, TaskSet

#: Cache geometries ("sets x associativity x line size") the sweep
#: iterates by default; miss penalty stays at the default 10 cycles.
GEOMETRIES = ("16x2x16", "4x2x16", "4x1x8")


def parse_geometry(text: str) -> CacheConfig:
    """``"SETSxASSOCxLINE"`` → :class:`CacheConfig`."""
    parts = text.lower().split("x")
    if len(parts) != 3:
        raise ValueError(
            f"geometry {text!r} is not of the form SETSxASSOCxLINE")
    try:
        num_sets, associativity, line_size = (int(p) for p in parts)
    except ValueError:
        raise ValueError(f"geometry {text!r}: non-integer field") \
            from None
    return CacheConfig(num_sets=num_sets, associativity=associativity,
                       line_size=line_size)


def config_for(geometry: str,
               base: Optional[MachineConfig] = None) -> MachineConfig:
    """Machine config with both caches set to ``geometry``."""
    from dataclasses import replace
    base = base or MachineConfig.default()
    shape = parse_geometry(geometry)
    return replace(base, icache=shape, dcache=shape)


def cell_id(taskset: str, ordering: str, geometry: str) -> str:
    return f"{taskset}|{ordering}|{geometry}"


def sweep_taskset(taskset: TaskSet,
                  orderings: Sequence[str] = ORDERINGS,
                  geometries: Sequence[str] = GEOMETRIES,
                  cache=None,
                  base_config: Optional[MachineConfig] = None
                  ) -> List[Dict[str, Any]]:
    """One row per (ordering, geometry) cell, all against ``cache``."""
    from ..batch.cachestore import ArtifactCache

    if cache is None:
        cache = ArtifactCache()
    rows = []
    for geometry in geometries:
        config = config_for(geometry, base_config)
        for ordering in orderings:
            result = analyze_taskset(taskset.reordered(ordering),
                                     config=config, cache=cache)
            rows.append({
                "taskset": taskset.name,
                "ordering": ordering,
                "geometry": geometry,
                "schedulable": result.schedulable,
                "naive_crpd_cycles": result.naive_crpd_cycles,
                "cache_hits": result.cache_hits,
                "cache_misses": result.cache_misses,
                "tasks": result.rows(),
            })
    return rows


# -- Golden verdicts -------------------------------------------------------


def rows_to_golden(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Pin each cell's verdict and exact response times."""
    golden: Dict[str, Any] = {}
    for row in rows:
        golden[cell_id(row["taskset"], row["ordering"],
                       row["geometry"])] = {
            "schedulable": row["schedulable"],
            "responses": {task["task"]: task["response"]
                          for task in row["tasks"]},
        }
    return golden


def save_golden(path: str, rows: Sequence[Dict[str, Any]]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(rows_to_golden(rows), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def load_golden(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_with_golden(rows: Sequence[Dict[str, Any]],
                        golden: Dict[str, Any]) -> List[str]:
    """Mismatch descriptions (empty = bit-identical verdicts)."""
    problems = []
    for row in rows:
        cell = cell_id(row["taskset"], row["ordering"],
                       row["geometry"])
        expected = golden.get(cell)
        if expected is None:
            problems.append(f"{cell}: no golden verdict")
            continue
        if row["schedulable"] != expected["schedulable"]:
            problems.append(
                f"{cell}: schedulable={row['schedulable']}, golden "
                f"says {expected['schedulable']}")
        for task in row["tasks"]:
            want = expected["responses"].get(task["task"], "absent")
            if task["response"] != want:
                problems.append(
                    f"{cell}/{task['task']}: response "
                    f"{task['response']}, golden says {want}")
    return problems
