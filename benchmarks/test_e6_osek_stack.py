"""E6 — OSEK system-level stack analysis.

Paper claim (Section 2 / reference [3]): per-task bounds combine into
"an automated overall stack usage analysis for all tasks running on
one Electronic Control Unit" under OSEK scheduling.  Reproduced as:
preemption-aware system bounds vs the naive all-tasks sum over task-set
sweeps, plus validation against exhaustively enumerated legal
preemption nestings.
"""

import itertools
import random

from _common import print_table
from repro.stack import TaskSpec, analyze_system_stack


def _exhaustive_worst_chain(tasks):
    """Brute-force the worst legal preemption nesting (ground truth)."""
    best = 0
    for permutation in itertools.permutations(tasks):
        usage = 0
        stack = []
        for task in permutation:
            if not stack or task.priority > stack[-1].effective_threshold:
                stack.append(task)
                usage += task.stack_bound
        best = max(best, usage)
    return best


def test_e6_osek_system_stack(benchmark):
    rng = random.Random(99)
    rows = []
    savings = []
    for scenario in range(8):
        num_tasks = rng.randint(3, 7)
        tasks = []
        for index in range(num_tasks):
            priority = rng.randint(1, 4)
            threshold = priority if rng.random() < 0.7 else \
                min(4, priority + rng.randint(1, 2))
            tasks.append(TaskSpec(
                f"t{scenario}_{index}", rng.randrange(50, 500, 10),
                priority=priority, threshold=threshold))
        result = analyze_system_stack(tasks)
        truth = _exhaustive_worst_chain(tasks)
        assert result.bound == truth, "DP bound != exhaustive worst case"
        savings.append(result.savings / result.naive_sum)
        rows.append([f"set{scenario}", num_tasks, result.naive_sum,
                     result.bound,
                     f"{100 * result.savings / result.naive_sum:.0f}%"])
    print_table(
        "E6: system stack bound vs naive sum (random OSEK task sets)",
        ["task set", "tasks", "naive sum", "verified bound", "saved"],
        rows)
    average = sum(savings) / len(savings)
    print(f"average memory saved by preemption-aware analysis: "
          f"{100 * average:.0f}%")
    assert average > 0.05

    benchmark.extra_info["avg_saving_pct"] = round(100 * average, 1)
    tasks = [TaskSpec(f"t{i}", 100 + 10 * i, priority=1 + i % 4)
             for i in range(12)]
    benchmark(lambda: analyze_system_stack(tasks))
