"""E8 — loop bound analysis coverage and exactness.

Paper claim (Section 3): "loop bound analysis determines upper bounds
for the number of iterations of simple loops".  Reproduced as: success
rate and exactness of the derived bounds over a loop-pattern corpus,
validated against concrete iteration counts from the simulator.
"""

from _common import print_table
from repro.cfg import build_cfg, expand_task
from repro.analysis import analyze_loop_bounds, analyze_values
from repro.isa import assemble
from repro.lang import compile_program
from repro.sim import run_program

# (name, mini-C source with exactly one loop, expected header count)
PATTERNS = [
    ("count_up", """
int r; void main() { int i; int n = 0;
for (i = 0; i < 40; i = i + 1) { n = n + i; } r = n; }""", None),
    ("count_down", """
int r; void main() { int i = 40; int n = 0;
while (i > 0) { n = n + i; i = i - 1; } r = n; }""", None),
    ("stepped", """
int r; void main() { int i; int n = 0;
for (i = 0; i < 40; i = i + 3) { n = n + 1; } r = n; }""", None),
    ("le_bound", """
int r; void main() { int i; int n = 0;
for (i = 1; i <= 25; i = i + 1) { n = n + 1; } r = n; }""", None),
    ("ne_exit", """
int r; void main() { int i = 0; int n = 0;
while (i != 12) { i = i + 1; n = n + 2; } r = n; }""", None),
    ("doubling", """
int r; void main() { int i = 1; int n = 0;
while (i < 256) { i = i << 1; n = n + 1; } r = n; }""", None),
    ("double_step", """
int r; void main() { int i = 0; int n = 0;
do { i = i + 1; i = i + 1; n = n + 1; } while (i < 30); r = n; }""",
     None),
    ("downward_ge", """
int r; void main() { int i = 17; int n = 0;
while (i >= 3) { n = n + i; i = i - 2; } r = n; }""", None),
]


def _measured_header_executions(program):
    """Concrete executions of the most-executed branch-target address
    (the loop header) from the simulator's instruction counts."""
    execution = run_program(program)
    return execution


def test_e8_loop_bound_corpus(benchmark):
    rows = []
    bounded = exact = 0
    for name, source, _ in PATTERNS:
        program = compile_program(source)
        graph = expand_task(build_cfg(program))
        values = analyze_values(graph)
        bounds = analyze_loop_bounds(values)
        assert len(bounds) == 1, f"{name}: expected exactly one loop"
        (bound,) = bounds.values()
        header_addr = next(iter(bounds)).block
        execution = run_program(program)
        actual = execution.instruction_counts.get(header_addr, 0)
        status = "unbounded"
        if bound.is_bounded:
            bounded += 1
            assert bound.max_iterations >= actual, f"{name}: unsound"
            if bound.max_iterations == actual:
                exact += 1
                status = "exact"
            else:
                status = f"+{bound.max_iterations - actual}"
        rows.append([name, bound.method,
                     bound.max_iterations if bound.is_bounded else "-",
                     actual, status])
    print_table(
        "E8: loop bound analysis over the pattern corpus",
        ["pattern", "method", "bound", "actual iterations", "verdict"],
        rows)
    print(f"bounded: {bounded}/{len(PATTERNS)}, "
          f"exact: {exact}/{len(PATTERNS)}")
    assert bounded == len(PATTERNS)
    assert exact >= len(PATTERNS) - 1

    benchmark.extra_info["bounded"] = bounded
    benchmark.extra_info["exact"] = exact

    program = compile_program(PATTERNS[0][1])
    graph = expand_task(build_cfg(program))
    values = analyze_values(graph)
    benchmark(lambda: analyze_loop_bounds(values))
