"""E2 — value analysis precision on memory-access addresses.

Paper claim (Section 3): value analysis results "are usually so good
that only a few indirect accesses cannot be determined exactly".
Reproduced as: the fraction of memory accesses whose address the
interval analysis determines exactly / within a bounded range.
"""

from _common import CORE_KERNELS, analyzed, print_table
from repro.cfg import build_cfg, expand_task
from repro.analysis import analyze_values
from repro.workloads import get_workload


def test_e2_value_precision(benchmark):
    rows = []
    total_exact = total_bounded = total_unknown = 0
    for name in CORE_KERNELS:
        stats = analyzed(name).values.precision()
        total_exact += stats.exact
        total_bounded += stats.bounded
        total_unknown += stats.unknown
        rows.append([name, stats.exact, stats.bounded, stats.unknown,
                     f"{100 * stats.exact_ratio:.0f}%"])
    grand_total = total_exact + total_bounded + total_unknown
    rows.append(["TOTAL", total_exact, total_bounded, total_unknown,
                 f"{100 * total_exact / grand_total:.0f}%"])

    print_table(
        "E2: address determination by value analysis",
        ["kernel", "exact", "bounded", "unknown", "exact%"], rows)

    # The paper's qualitative claim: unknown addresses are rare.
    assert total_unknown / grand_total < 0.05
    assert total_exact / grand_total > 0.5

    benchmark.extra_info["exact_pct"] = round(
        100 * total_exact / grand_total, 1)
    benchmark.extra_info["unknown_pct"] = round(
        100 * total_unknown / grand_total, 1)

    program = get_workload("matmult").compile()
    graph = expand_task(build_cfg(program))
    benchmark(lambda: analyze_values(graph))
