#!/usr/bin/env python
"""Fixpoint-kernel performance harness (CI perf guard).

Runs the E7 scaling family (a pipeline of N filter-stage functions,
each with its own loop) through the full WCET analysis with both
fixpoint strategies, asserts the transfer-count budget of the shared
WTO kernel against the legacy FIFO reference, and appends the run to
``BENCH_fixpoint.json`` so later PRs can spot regressions in the
trajectory.  Each point also records the per-phase wall clock of the
analysis and the expanded-graph size (contexts/nodes/edges) under
every context policy, so context-explosion regressions are visible
across PRs, plus a per-timing-model row (``additive`` vs ``krisc5``:
WCET bound and phase timings) with two bound guards: krisc5 must
never exceed additive on the same point, and neither model's bound
may regress past the last recorded run.

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py [--repeat N]
        [--json PATH] [--quick]

``--quick`` is the CI smoke mode: fewer points, one repetition.
Exit status is non-zero if any budget assertion fails.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from test_e7_scaling import _generate_program      # noqa: E402

from repro.analysis import analyze_values          # noqa: E402
from repro.analysis.state import (AbstractMemory,  # noqa: E402
                                  AbstractState)
from repro.batch import (clear_process_caches,         # noqa: E402
                         compare_rows, load_golden)
from repro.workloads.suite import sweep_suite          # noqa: E402
from repro.cfg import (VIVU, FullCallString,       # noqa: E402
                       KLimitedCallString, build_cfg, expand_task)
from repro.lang import compile_program             # noqa: E402
from repro.wcet import analyze_wcet                # noqa: E402
from repro.workloads.synthetic import generate_large_source  # noqa: E402

STAGES = (1, 2, 4, 8, 16)
QUICK_STAGES = (1, 4)

#: Wall-clock budgets for the large synthetic point (ILP-engine guard):
#: the whole analysis must finish well inside interactive time, and the
#: path phase — the former bottleneck — gets its own tighter budget.
LARGE_TOTAL_BUDGET_SECONDS = 5.0
LARGE_PATH_BUDGET_SECONDS = 2.5

#: Timing models measured per point (per-model WCET + phase wall clock).
MODELS = ("additive", "krisc5")

#: Abstract-domain implementations compared on the large point, and the
#: regression guard on their combined value+icache phase wall clock:
#: the numpy implementation must stay at least this many times faster
#: than the pure-Python reference (measured headroom is ~3x, see the
#: ``domain_impls`` entry of the large point).
DOMAIN_IMPLS = ("python", "numpy")
DOMAIN_IMPL_SPEEDUP_GUARD = 2.0

#: Context policies whose expansion footprint every point records
#: (context-explosion regression guard).
POLICIES = (FullCallString(), KLimitedCallString(2), VIVU(peel=1))

#: Perf budget: on the largest E7 program the WTO kernel must need at
#: most half the block transfers of the FIFO reference (the headline
#: acceptance criterion of the kernel PR), and never regress past this.
TRANSFER_BUDGET_RATIO = 0.5

#: Batch-engine guards.  Full mode sweeps the whole 19 x 3 x 2 matrix;
#: quick (CI smoke) mode a 6-workload slice.  A warm-cache rerun must
#: beat the cold run by the stated factor and serve >= 90% of phase
#: executions from the cache; a 4-worker cold run through the DAG
#: scheduler must beat the sequential cold run by the parallel-speedup
#: factor (asserted only on machines with >= BATCH_PARALLEL_JOBS
#: cores — elsewhere the workers time-slice one another and the
#: speedup is recorded, not asserted) and must deduplicate at least
#: one cross-job phase task.  All bounds are checked bit-identical to
#: the golden set.
BATCH_FULL_MATRIX = "all:all:all"
BATCH_QUICK_MATRIX = "fibcall,bs,calltree,statemate,matmult,crc:all:all"
BATCH_WARM_SPEEDUP = 5.0
BATCH_QUICK_WARM_SPEEDUP = 3.0
BATCH_WARM_HIT_RATIO = 0.9
BATCH_PARALLEL_JOBS = 4
BATCH_PARALLEL_SPEEDUP = 2.0


def available_cores() -> int:
    """CPU cores this process may run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1
GOLDEN_BOUNDS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests", "golden_bounds.json")


def measure_point(stages: int, repeat: int) -> Dict:
    source = _generate_program(stages)
    program = compile_program(source)
    binary = build_cfg(program)
    graph = expand_task(binary)

    contexts_by_policy = {}
    for policy in POLICIES:
        start = time.perf_counter()
        expanded = expand_task(binary, policy=policy)
        contexts_by_policy[policy.describe()] = {
            "contexts": len(expanded.contexts()),
            "nodes": expanded.node_count(),
            "edges": expanded.edge_count(),
            "expand_seconds": round(time.perf_counter() - start, 4),
        }

    fifo = analyze_values(graph, strategy="fifo")
    wto = analyze_values(graph, strategy="wto")

    state_copies_before = AbstractState.copies
    state_mat_before = AbstractState.materializations
    memory_copies_before = AbstractMemory.copies
    memory_mat_before = AbstractMemory.materializations
    wall_times: List[float] = []
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = analyze_wcet(program)
        wall_times.append(time.perf_counter() - start)
    state_copies = AbstractState.copies - state_copies_before
    state_mat = AbstractState.materializations - state_mat_before
    memory_copies = AbstractMemory.copies - memory_copies_before
    memory_mat = AbstractMemory.materializations - memory_mat_before

    models = {}
    for model in MODELS:
        if model == "additive":
            modelled = result
        else:
            modelled = analyze_wcet(program, pipeline_model=model)
        entry = {
            "wcet_cycles": modelled.wcet_cycles,
            "pipeline_seconds": round(
                modelled.phase_seconds["pipeline"], 4),
            "phase_seconds": {phase: round(seconds, 4)
                              for phase, seconds
                              in modelled.phase_seconds.items()},
        }
        if modelled.timing.state_stats is not None:
            entry["state_stats"] = modelled.timing.state_stats.as_dict()
        models[model] = entry

    point = {
        "stages": stages,
        "instructions": result.binary_cfg.total_instructions(),
        "nodes": graph.node_count(),
        "edges": graph.edge_count(),
        "wcet_cycles": result.wcet_cycles,
        "states_identical": fifo.fixpoint.states_equal(wto.fixpoint),
        "fifo": fifo.fixpoint.stats.as_dict(),
        "wto": wto.fixpoint.stats.as_dict(),
        "cache_stats": {
            name: stats.as_dict()
            for name, stats in result.solver_stats.items()
            if name != "value"},
        "analyze_wcet_seconds": round(min(wall_times), 4),
        "value_phase_seconds": round(result.phase_seconds["value"], 4),
        "phase_seconds": {phase: round(seconds, 4)
                          for phase, seconds
                          in result.phase_seconds.items()},
        "contexts_by_policy": contexts_by_policy,
        "models": models,
        "state_copies_per_run": state_copies // repeat,
        "state_materializations_per_run": state_mat // repeat,
        "memory_copies_per_run": memory_copies // repeat,
        "memory_materializations_per_run": memory_mat // repeat,
    }
    return point


def measure_large_point(repeat: int) -> Dict:
    """The large synthetic corpus point (thousands of instructions,
    deep call tree, dense branching): exercises the sparse ILP engine
    at scale and guards its wall clock and bound across runs."""
    program = compile_program(generate_large_source())
    wall_times: List[float] = []
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        analyzed = analyze_wcet(program)
        wall = time.perf_counter() - start
        wall_times.append(wall)
        # Keep the fastest repetition's result so the per-phase guard
        # (path_seconds) is judged on the same run as min(wall_times) —
        # bounds are deterministic, but phase timings are not.
        if result is None or wall <= min(wall_times):
            result = analyzed

    # Per-implementation comparison of the two vectorized phases
    # (value analysis and I-cache analysis): best combined wall clock
    # over `repeat` runs each, plus the bit-identity of the bounds.
    domain_impls: Dict[str, Dict] = {}
    for impl in DOMAIN_IMPLS:
        best = None
        for _ in range(repeat):
            analyzed = analyze_wcet(program, domain_impl=impl)
            combined = (analyzed.phase_seconds["value"]
                        + analyzed.phase_seconds["icache"])
            if best is None or combined < best["combined_seconds"]:
                best = {
                    "wcet_cycles": analyzed.wcet_cycles,
                    "value_seconds": round(
                        analyzed.phase_seconds["value"], 4),
                    "icache_seconds": round(
                        analyzed.phase_seconds["icache"], 4),
                    "combined_seconds": combined,
                }
        best["combined_seconds"] = round(best["combined_seconds"], 4)
        domain_impls[impl] = best
    speedup = (domain_impls["python"]["combined_seconds"]
               / max(domain_impls["numpy"]["combined_seconds"], 1e-9))

    phase_seconds = {phase: round(seconds, 4)
                     for phase, seconds in result.phase_seconds.items()}
    return {
        "stages": "large",
        "kind": "large",
        "instructions": result.binary_cfg.total_instructions(),
        "nodes": result.graph.node_count(),
        "edges": result.graph.edge_count(),
        "wcet_cycles": result.wcet_cycles,
        "analyze_wcet_seconds": round(min(wall_times), 4),
        "path_seconds": phase_seconds["path"],
        "phase_seconds": phase_seconds,
        "lp_supernodes": result.path.lp_supernodes,
        "ilp_stats": result.solver_stats["path"].as_dict(),
        "domain_impls": domain_impls,
        "domain_impl_speedup": round(speedup, 2),
        "models": {"additive": {"wcet_cycles": result.wcet_cycles,
                                "phase_seconds": phase_seconds}},
    }


def measure_batch_sweep(quick: bool) -> Dict:
    """Drive the workload matrix through the batch engine three ways —
    cold sequential, warm sequential, cold parallel — and record wall
    clocks, cache hit ratios, and golden-bounds mismatches."""
    matrix = BATCH_QUICK_MATRIX if quick else BATCH_FULL_MATRIX
    golden = load_golden(GOLDEN_BOUNDS_PATH)
    temp = tempfile.mkdtemp(prefix="repro-batch-perf-")
    try:
        sequential_dir = os.path.join(temp, "seq")
        parallel_dir = os.path.join(temp, "par")
        # Parallel first, with cleared memos before each cold sweep:
        # fork-spawned workers inherit the parent's compiled-program
        # memo, so measuring parallel after sequential would hand the
        # "cold" parallel run pre-compiled binaries.
        clear_process_caches()
        parallel = sweep_suite(matrix, parallel=BATCH_PARALLEL_JOBS,
                               cache_dir=parallel_dir)
        clear_process_caches()
        cold = sweep_suite(matrix, parallel=1,
                           cache_dir=sequential_dir)
        # Cleared again so the warm sweep deserialises from disk — the
        # cross-run path real warm reruns take — rather than being
        # served by the cold run's in-memory memo.
        clear_process_caches()
        warm = sweep_suite(matrix, parallel=1,
                           cache_dir=sequential_dir)
    finally:
        shutil.rmtree(temp, ignore_errors=True)
        # Don't keep artifacts of the deleted temp dirs pinned in the
        # process-level cache memo.
        clear_process_caches()

    mismatches = []
    for label, sweep in (("cold", cold), ("warm", warm),
                         ("parallel", parallel)):
        mismatches.extend(f"{label}: {mismatch}"
                          for mismatch in compare_rows(sweep.rows,
                                                       golden))
    return {
        "matrix": matrix,
        "jobs": len(cold.jobs),
        "parallel_jobs": BATCH_PARALLEL_JOBS,
        "cores": available_cores(),
        "cold_seconds": round(cold.wall_seconds, 4),
        "warm_seconds": round(warm.wall_seconds, 4),
        "parallel_seconds": round(parallel.wall_seconds, 4),
        "warm_speedup": round(cold.wall_seconds
                              / max(warm.wall_seconds, 1e-9), 2),
        "parallel_speedup": round(cold.wall_seconds
                                  / max(parallel.wall_seconds, 1e-9), 2),
        "warm_hit_ratio": round(warm.hit_ratio(), 4),
        "scheduler": parallel.scheduler,
        "golden_mismatches": mismatches,
    }


def check_batch_sweep(batch: Dict, quick: bool) -> List[str]:
    failures = list(batch["golden_mismatches"])
    required = BATCH_QUICK_WARM_SPEEDUP if quick else BATCH_WARM_SPEEDUP
    if batch["warm_speedup"] < required:
        failures.append(
            f"warm-cache sweep only {batch['warm_speedup']:.1f}x faster "
            f"than cold (required {required}x)")
    if batch["warm_hit_ratio"] < BATCH_WARM_HIT_RATIO:
        failures.append(
            f"warm-cache hit ratio {batch['warm_hit_ratio']:.0%} below "
            f"{BATCH_WARM_HIT_RATIO:.0%}")
    scheduler = batch.get("scheduler") or {}
    if scheduler.get("deduped_tasks", 0) < 1:
        failures.append(
            "DAG scheduler deduplicated no phase tasks on the "
            "parallel cold sweep (cross-job sharing broken)")
    # Parallel-speedup regression guard: only meaningful when the
    # machine can actually run the workers concurrently; on fewer
    # cores the speedup is recorded but not asserted.
    if batch["cores"] >= batch["parallel_jobs"] \
            and batch["parallel_speedup"] < BATCH_PARALLEL_SPEEDUP:
        failures.append(
            f"parallel cold sweep only {batch['parallel_speedup']:.2f}x "
            f"faster than sequential cold with "
            f"{batch['parallel_jobs']} workers on {batch['cores']} "
            f"cores (required {BATCH_PARALLEL_SPEEDUP}x)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3,
                        help="wall-clock repetitions per point (min wins)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer points, 1 repetition")
    parser.add_argument("--json", default=os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_fixpoint.json"))
    args = parser.parse_args(argv)
    stage_list = QUICK_STAGES if args.quick else STAGES
    repeat = 1 if args.quick else args.repeat

    points = []
    header = (f"{'stages':>6} {'nodes':>6} {'fifo xfer':>10} "
              f"{'wto xfer':>9} {'ratio':>6} {'widen':>6} "
              f"{'value ms':>9} {'total ms':>9} "
              f"{'wcet add':>9} {'wcet k5':>9}")
    print(header)
    print("-" * len(header))
    for stages in stage_list:
        point = measure_point(stages, repeat)
        points.append(point)
        ratio = point["wto"]["transfers"] / point["fifo"]["transfers"]
        print(f"{stages:>6} {point['nodes']:>6} "
              f"{point['fifo']['transfers']:>10} "
              f"{point['wto']['transfers']:>9} {ratio:>6.2f} "
              f"{point['wto']['widenings']:>6} "
              f"{point['value_phase_seconds'] * 1000:>9.1f} "
              f"{point['analyze_wcet_seconds'] * 1000:>9.1f} "
              f"{point['models']['additive']['wcet_cycles']:>9} "
              f"{point['models']['krisc5']['wcet_cycles']:>9}")

    large = measure_large_point(repeat)
    points.append(large)
    print(f"\nlarge synthetic point: {large['instructions']} "
          f"instructions, {large['nodes']} task-graph nodes -> "
          f"{large['lp_supernodes']} LP supernodes; "
          f"analyze {large['analyze_wcet_seconds'] * 1000:.0f} ms "
          f"(path {large['path_seconds'] * 1000:.0f} ms, "
          f"{large['ilp_stats']['pivots']} pivots), "
          f"WCET {large['wcet_cycles']}")
    impls = large["domain_impls"]
    print(f"domain impls (value+icache): python "
          f"{impls['python']['combined_seconds'] * 1000:.0f} ms, numpy "
          f"{impls['numpy']['combined_seconds'] * 1000:.0f} ms "
          f"({large['domain_impl_speedup']:.2f}x)")

    batch = measure_batch_sweep(args.quick)
    print(f"\nbatch sweep ({batch['jobs']} jobs, {batch['matrix']}): "
          f"cold {batch['cold_seconds']:.2f}s, "
          f"warm {batch['warm_seconds']:.2f}s "
          f"({batch['warm_speedup']:.1f}x, "
          f"hit ratio {batch['warm_hit_ratio']:.0%}), "
          f"parallel x{batch['parallel_jobs']} "
          f"{batch['parallel_seconds']:.2f}s "
          f"({batch['parallel_speedup']:.1f}x on "
          f"{batch['cores']} cores)")
    scheduler = batch.get("scheduler") or {}
    if scheduler:
        print(f"DAG scheduler: {scheduler['phase_refs']} phase refs -> "
              f"{scheduler['unique_tasks']} tasks "
              f"({scheduler['deduped_tasks']} deduped), "
              f"{scheduler['steals']} steals")

    failures = check_batch_sweep(batch, args.quick)
    if large["analyze_wcet_seconds"] > LARGE_TOTAL_BUDGET_SECONDS:
        failures.append(
            f"large point analyze_wcet took "
            f"{large['analyze_wcet_seconds']:.2f}s "
            f"> budget {LARGE_TOTAL_BUDGET_SECONDS}s")
    if large["path_seconds"] > LARGE_PATH_BUDGET_SECONDS:
        failures.append(
            f"large point path phase took {large['path_seconds']:.2f}s "
            f"> budget {LARGE_PATH_BUDGET_SECONDS}s")
    impl_bounds = {impl: entry["wcet_cycles"]
                   for impl, entry in large["domain_impls"].items()}
    if len(set(impl_bounds.values())) != 1:
        failures.append(
            f"domain implementations disagree on the large point's "
            f"bound: {impl_bounds}")
    if large["domain_impl_speedup"] < DOMAIN_IMPL_SPEEDUP_GUARD:
        failures.append(
            f"numpy domain impl only {large['domain_impl_speedup']:.2f}x "
            f"faster than python on combined value+icache "
            f"(required {DOMAIN_IMPL_SPEEDUP_GUARD}x)")

    largest = points[len(points) - 2]     # largest E7 point
    ratio = largest["wto"]["transfers"] / largest["fifo"]["transfers"]
    if ratio > TRANSFER_BUDGET_RATIO:
        failures.append(
            f"transfer budget exceeded on {largest['stages']} stages: "
            f"wto/fifo = {ratio:.2f} > {TRANSFER_BUDGET_RATIO}")
    for point in points:
        if point.get("kind") == "large":
            continue                  # guarded by its budgets above
        # Precision guard: the strategies must land on identical entry
        # states (widening *counts* legitimately differ with iteration
        # order, so they are recorded but not asserted).
        if not point["states_identical"]:
            failures.append(
                f"fixpoint states diverged between strategies at "
                f"{point['stages']} stages")
        # Context-explosion guard: k-limiting must never expand the
        # graph beyond the full-call-string baseline.
        sizes = point["contexts_by_policy"]
        if sizes["k-callstring(k=2)"]["nodes"] \
                > sizes["full-callstring"]["nodes"]:
            failures.append(
                f"k-limited expansion larger than full call strings at "
                f"{point['stages']} stages")
        # Model-tightness guard: the overlapped pipeline bound must
        # never exceed the additive one on the same program.
        models = point["models"]
        if models["krisc5"]["wcet_cycles"] \
                > models["additive"]["wcet_cycles"]:
            failures.append(
                f"krisc5 bound {models['krisc5']['wcet_cycles']} looser "
                f"than additive {models['additive']['wcet_cycles']} at "
                f"{point['stages']} stages")

    trajectory = {"runs": []}
    if os.path.exists(args.json):
        try:
            with open(args.json) as handle:
                trajectory = json.load(handle)
        except (OSError, ValueError):
            pass

    # Bound-regression guard: neither model's bound may exceed the one
    # recorded by the most recent prior run of the same point (bounds
    # are deterministic, so any increase is an analysis regression).
    previous = {}
    for prior in trajectory.get("runs", []):
        for point in prior.get("points", []):
            for model, entry in point.get("models", {}).items():
                previous[(point["stages"], model)] = entry["wcet_cycles"]
    for point in points:
        for model, entry in point["models"].items():
            recorded = previous.get((point["stages"], model))
            if recorded is not None and entry["wcet_cycles"] > recorded:
                failures.append(
                    f"{model} bound regressed at {point['stages']} "
                    f"stages: {entry['wcet_cycles']} > recorded "
                    f"{recorded}")

    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "transfer_budget_ratio": TRANSFER_BUDGET_RATIO,
        "quick": args.quick,
        "points": points,
        "batch": batch,
        "ok": not failures,
    }
    trajectory.setdefault("runs", []).append(run)
    with open(args.json, "w") as handle:
        json.dump(trajectory, handle, indent=1)
        handle.write("\n")
    print(f"\nwrote {args.json} ({len(trajectory['runs'])} runs)")

    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("perf budget OK "
          f"(wto/fifo transfer ratio {ratio:.2f} on largest program)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
