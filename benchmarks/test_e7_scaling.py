"""E7 — analysis-time scaling with program size.

Paper claim (Section 3): aiT obtains its bounds "in reasonable time".
Reproduced as: end-to-end analysis runtime (and its per-phase split)
over a family of generated programs of growing size.
"""

import time

from _common import print_table
from repro.lang import compile_program
from repro.wcet import analyze_wcet


def _generate_program(num_stages: int) -> str:
    """A pipeline of ``num_stages`` filter stages, each its own loop
    and function, sized to scale the instruction count linearly."""
    parts = ["int data[32];", "int result;"]
    for stage in range(num_stages):
        parts.append(f"""
int stage{stage}(int seed) {{
    int acc = seed;
    int i;
    for (i = 0; i < 16; i = i + 1) {{
        acc = acc + ((data[i] ^ seed) >> 1) + {stage + 1};
        data[i] = acc & 0xFFFF;
    }}
    return acc;
}}""")
    calls = "\n    ".join(
        f"r = stage{stage}(r + {stage});" for stage in range(num_stages))
    parts.append(f"""
void main() {{
    int i;
    for (i = 0; i < 32; i = i + 1) {{ data[i] = i * 7; }}
    int r = 1;
    {calls}
    result = r;
}}""")
    return "\n".join(parts)


def test_e7_scaling(benchmark):
    rows = []
    points = []
    for stages in (1, 2, 4, 8, 16):
        program = compile_program(_generate_program(stages))
        start = time.perf_counter()
        result = analyze_wcet(program)
        elapsed = time.perf_counter() - start
        instructions = result.binary_cfg.total_instructions()
        points.append((instructions, elapsed))
        dominant = max(result.phase_seconds,
                       key=result.phase_seconds.get)
        rows.append([stages, instructions,
                     result.graph.node_count(),
                     f"{elapsed * 1000:.0f} ms", dominant,
                     result.wcet_cycles])
    print_table(
        "E7: analysis time vs program size",
        ["stages", "instructions", "task-graph nodes", "total time",
         "dominant phase", "WCET"], rows)

    # "Reasonable time": the largest program analyses in seconds, and
    # growth is roughly polynomial of low degree (not exponential).
    assert points[-1][1] < 30.0
    small_i, small_t = points[0]
    large_i, large_t = points[-1]
    size_factor = large_i / small_i
    time_factor = large_t / max(small_t, 1e-9)
    assert time_factor < size_factor ** 3

    benchmark.extra_info["largest_instructions"] = large_i
    benchmark.extra_info["largest_seconds"] = round(large_t, 3)
    program = compile_program(_generate_program(4))
    benchmark(lambda: analyze_wcet(program))
