"""Shared helpers for the experiment benchmarks.

Each ``test_e*.py`` file regenerates one experiment of EXPERIMENTS.md:
it computes the experiment's table, prints it (so the harness output
documents the reproduction), attaches the headline numbers to the
pytest-benchmark ``extra_info``, and benchmarks a representative
analysis call.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.cache.config import MachineConfig
from repro.workloads import (Workload, analyze_workload, get_workload,
                             observed_worst_case, workload_names)

#: Kernels used when an experiment needs a representative subset.
CORE_KERNELS = ("fibcall", "insertsort", "bsort", "matmult", "crc",
                "fir", "bs", "ns", "cnt", "statemate", "edn",
                "calltree", "duff", "fdct")


@lru_cache(maxsize=None)
def compiled(name: str):
    workload = get_workload(name)
    return workload, workload.compile()


@lru_cache(maxsize=None)
def analyzed(name: str):
    workload, program = compiled(name)
    return analyze_workload(workload)


@lru_cache(maxsize=None)
def observed(name: str, runs: int = 20) -> Tuple[int, int]:
    workload, program = compiled(name)
    return observed_worst_case(workload, program, runs=runs)


def print_table(title: str, header: List[str],
                rows: List[List[str]]) -> None:
    print()
    print(title)
    widths = [max(len(str(row[i])) for row in [header] + rows)
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w)
                        for cell, w in zip(row, widths)))
    print()
