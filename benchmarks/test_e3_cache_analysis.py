"""E3 — cache analysis classification and its effect on the WCET.

Paper claim (Section 3): "cache analysis classifies memory references
as cache misses or hits", whose results feed pipeline analysis and
tighten the bound.  Reproduced as (a) classification-rate tables over
a cache-geometry sweep and (b) WCET with cache analysis vs the
all-miss assumption a cache-oblivious analyzer must make.
"""

from _common import analyzed, print_table
from repro.cache.abstract import Classification
from repro.cache.analysis import DCacheResult, ICacheResult
from repro.cache.config import CacheConfig, MachineConfig
from repro.path.ipet import analyze_paths
from repro.pipeline.analysis import analyze_pipeline
from repro.workloads import analyze_workload, get_workload

KERNELS = ("fir", "matmult", "crc", "bsort")


def _all_miss_wcet(result):
    """Re-run pipeline+path with every access forced NOT_CLASSIFIED."""
    icache = ICacheResult(
        result.icache.config,
        {node: [Classification.NOT_CLASSIFIED] * len(items)
         for node, items in result.icache.classifications.items()},
        result.icache.stats)
    dcache = DCacheResult(
        result.dcache.config,
        {node: [type(item)(item.access, Classification.NOT_CLASSIFIED)
                for item in items]
         for node, items in result.dcache.classified.items()},
        result.dcache.stats)
    timing = analyze_pipeline(result.graph, result.config, icache, dcache)
    path = analyze_paths(result.graph, timing, result.loop_bounds,
                         result.values)
    return path.wcet_cycles


def test_e3_classification_rates(benchmark):
    rows = []
    for name in KERNELS:
        result = analyzed(name)
        for label, stats in (("I", result.icache.stats),
                             ("D", result.dcache.stats)):
            rows.append([
                name, label, stats.total,
                f"{100 * stats.ratio(Classification.ALWAYS_HIT):.0f}%",
                f"{100 * stats.ratio(Classification.ALWAYS_MISS):.0f}%",
                f"{100 * stats.ratio(Classification.PERSISTENT):.0f}%",
                f"{100 * stats.ratio(Classification.NOT_CLASSIFIED):.0f}%",
            ])
    print_table(
        "E3a: cache classification rates (default 2-way 16x16B caches)",
        ["kernel", "cache", "refs", "AH", "AM", "PS", "NC"], rows)

    rows = []
    speedups = []
    for name in KERNELS:
        result = analyzed(name)
        pessimal = _all_miss_wcet(result)
        speedups.append(pessimal / result.wcet_cycles)
        rows.append([name, result.wcet_cycles, pessimal,
                     f"{pessimal / result.wcet_cycles:.2f}x"])
    print_table(
        "E3b: WCET with cache analysis vs all-miss assumption",
        ["kernel", "WCET (cache analysis)", "WCET (all-miss)",
         "improvement"], rows)

    # Cache analysis must tighten the bound on cache-friendly kernels.
    assert max(speedups) > 1.5
    assert all(s >= 1.0 for s in speedups)

    benchmark.extra_info["max_improvement"] = round(max(speedups), 2)
    result = analyzed("fir")
    from repro.cache.analysis import analyze_icache
    benchmark(lambda: analyze_icache(result.graph, result.config.icache))


def test_e3_geometry_sweep(benchmark):
    workload = get_workload("fir")
    rows = []
    wcets = {}
    for num_sets, assoc in ((1, 1), (4, 1), (4, 2), (16, 2), (32, 4)):
        cache = CacheConfig(num_sets=num_sets, associativity=assoc,
                            line_size=16, miss_penalty=10)
        config = MachineConfig(icache=cache, dcache=cache)
        result = analyze_workload(workload, config=config)
        wcets[(num_sets, assoc)] = result.wcet_cycles
        stats = result.icache.stats
        rows.append([
            f"{num_sets}x{assoc}x16", cache.capacity,
            f"{100 * stats.ratio(Classification.ALWAYS_HIT):.0f}%",
            result.wcet_cycles])
    print_table(
        "E3c: WCET bound vs cache geometry (fir)",
        ["geometry", "bytes", "I-cache AH", "WCET bound"], rows)

    # Monotone trend: bigger caches never increase the verified bound.
    bounds = [wcets[k] for k in ((1, 1), (4, 1), (4, 2), (16, 2),
                                 (32, 4))]
    assert all(a >= b for a, b in zip(bounds, bounds[1:]))

    benchmark.extra_info["wcet_small"] = bounds[0]
    benchmark.extra_info["wcet_large"] = bounds[-1]
    benchmark(lambda: analyze_workload(workload))
