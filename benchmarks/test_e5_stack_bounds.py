"""E5 — StackAnalyzer bounds vs measurement.

Paper claim (Section 2): "Measuring the maximum stack usage with a
debugger is no solution since one only obtains results for single
program runs with fixed inputs.  Even repeated measurements cannot
guarantee that the maximum stack usage is ever observed."  Reproduced
as: the verified bound covers every simulated run, while single-run
measurement can under-estimate what later runs reach.
"""

from _common import CORE_KERNELS, compiled, observed, print_table
from repro.stack import analyze_stack
from repro.workloads import simulate_workload


def test_e5_stack_bounds(benchmark):
    rows = []
    for name in CORE_KERNELS:
        workload, program = compiled(name)
        bound = analyze_stack(program).bound
        single = simulate_workload(workload, program).max_stack_usage
        _, many = observed(name)
        rows.append([name, bound, single, many,
                     "=" if bound == many else ">"])
        assert bound >= many, f"{name}: stack bound unsound"
    print_table(
        "E5: verified stack bound vs measured maxima",
        ["kernel", "verified bound", "1 run", "20 runs", "bound vs 20"],
        rows)

    exact = sum(1 for row in rows if row[4] == "=")
    print(f"bound exactly reached by some run: {exact}/{len(rows)} "
          "kernels")
    benchmark.extra_info["exact_bounds"] = exact
    benchmark.extra_info["kernels"] = len(rows)

    _workload, program = compiled("calltree")
    benchmark(lambda: analyze_stack(program))
