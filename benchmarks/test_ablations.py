"""A1-A6 — ablations of the design choices in DESIGN.md.

Each ablation disables one ingredient of the full analysis and
measures the cost in precision (or shows why the ingredient is
necessary), on representative kernels:

* D1 widening thresholds + narrowing,
* D2 abstract domain (constant propagation vs intervals),
* D3 cache classification components (persistence, may analysis),
* D4 value-analysis-driven D-cache addresses,
* D5 infeasible-path constraints,
* D6 ILP integrality vs LP relaxation.
"""

import pytest

from _common import analyzed, print_table
from repro.analysis import Const, analyze_loop_bounds, analyze_values
from repro.cache.abstract import Classification
from repro.cache.analysis import DCacheResult, ICacheResult
from repro.cfg import build_cfg, expand_task
from repro.path.ipet import UnboundedLoopError, analyze_paths
from repro.pipeline.analysis import analyze_pipeline
from repro.wcet import analyze_wcet
from repro.workloads import (analyze_workload, get_workload,
                             observed_worst_case, workload_names)


def test_a1_widening_thresholds_and_narrowing(benchmark):
    """D1: without thresholds and narrowing, widened loop counters keep
    an infinite upper bound after the loop; the full strategy recovers
    the exact post-loop value."""
    from repro.isa import assemble

    program = assemble("""
    main:
        MOVI R0, #0
    loop:
        ADDI R0, R0, #1
        CMPI R0, #100
        BLT loop
    done:
        MOVI R1, #0
        HALT
    """)
    graph = expand_task(build_cfg(program))
    done_node = next(n for n in graph.nodes()
                     if n.block == program.symbols["done"])

    rows = []
    widths = {}
    for label, thresholds, narrowing in (
            ("thresholds+narrowing", True, 2),
            ("narrowing only", False, 2),
            ("plain widening", False, 0)):
        values = analyze_values(graph,
                                use_widening_thresholds=thresholds,
                                narrowing_passes=narrowing)
        lo, hi = values.fixpoint.state_at(done_node).get(0) \
            .signed_bounds()
        widths[label] = hi - lo
        rows.append([label, f"[{lo}, {hi}]", hi - lo])
        # Soundness in every configuration: 100 is the actual value.
        assert lo <= 100 <= hi
    print_table(
        "A1: counter interval after the loop under widening strategies",
        ["configuration", "R0 at exit", "width"], rows)
    assert widths["thresholds+narrowing"] == 0
    assert widths["plain widening"] > widths["thresholds+narrowing"]

    benchmark(lambda: analyze_values(graph))


def test_a2_domain_choice(benchmark):
    """D2: constant propagation cannot bound input-ranged loops that
    intervals handle; interval analysis dominates on address precision."""
    program = get_workload("matmult").compile()
    graph = expand_task(build_cfg(program))
    interval_values = analyze_values(graph)
    const_values = analyze_values(graph, domain=Const)

    interval_stats = interval_values.precision()
    const_stats = const_values.precision()
    rows = [
        ["interval", interval_stats.exact, interval_stats.bounded,
         interval_stats.unknown],
        ["constprop", const_stats.exact, const_stats.bounded,
         const_stats.unknown],
    ]
    print_table("A2: address precision by domain (matmult)",
                ["domain", "exact", "bounded", "unknown"], rows)
    assert interval_stats.unknown <= const_stats.unknown
    assert interval_stats.exact >= const_stats.exact

    benchmark(lambda: analyze_values(graph, domain=Const))


def _reclassified_wcet(result, strip_persistence=False, strip_may=False):
    def strip(outcome):
        if strip_persistence and outcome is Classification.PERSISTENT:
            return Classification.NOT_CLASSIFIED
        if strip_may and outcome is Classification.ALWAYS_MISS:
            return Classification.NOT_CLASSIFIED
        return outcome

    icache = ICacheResult(
        result.icache.config,
        {node: [strip(o) for o in items]
         for node, items in result.icache.classifications.items()},
        result.icache.stats)
    dcache = DCacheResult(
        result.dcache.config,
        {node: [type(item)(item.access, strip(item.classification))
                for item in items]
         for node, items in result.dcache.classified.items()},
        result.dcache.stats)
    timing = analyze_pipeline(result.graph, result.config, icache,
                              dcache)
    return analyze_paths(result.graph, timing, result.loop_bounds,
                         result.values).wcet_cycles


def test_a3_cache_components(benchmark):
    """D3: dropping persistence analysis loosens the bound whenever
    first-miss classification was carrying weight."""
    rows = []
    for name in ("fir", "matmult", "crc"):
        result = analyzed(name)
        full = result.wcet_cycles
        no_persistence = _reclassified_wcet(result,
                                            strip_persistence=True)
        rows.append([name, full, no_persistence,
                     f"{no_persistence / full:.2f}x"])
        assert no_persistence >= full
    print_table(
        "A3: WCET without persistence (PS treated as NC)",
        ["kernel", "full analysis", "no persistence", "penalty"], rows)
    result = analyzed("fir")
    benchmark(lambda: _reclassified_wcet(result, strip_persistence=True))


def test_a4_value_analysis_for_dcache(benchmark):
    """D4: without value-analysis addresses the D-cache analysis sees
    unknown accesses everywhere and the bound inflates."""
    rows = []
    for name in ("fir", "matmult"):
        workload = get_workload(name)
        smart = analyze_workload(workload,
                                 use_value_analysis_for_dcache=True)
        blind = analyze_workload(workload,
                                 use_value_analysis_for_dcache=False)
        rows.append([name, smart.wcet_cycles, blind.wcet_cycles,
                     f"{blind.wcet_cycles / smart.wcet_cycles:.2f}x"])
        assert blind.wcet_cycles >= smart.wcet_cycles
    print_table(
        "A4: D-cache analysis with vs without value analysis",
        ["kernel", "with addresses", "unknown addresses", "penalty"],
        rows)
    workload = get_workload("fir")
    benchmark(lambda: analyze_workload(
        workload, use_value_analysis_for_dcache=False))


def test_a5_infeasible_paths_see_e4(benchmark):
    """D5 is quantified in E4; here we only assert the switch works on
    a corpus kernel without changing soundness."""
    workload = get_workload("statemate")
    pruned = analyze_workload(workload, use_infeasible_paths=True)
    unpruned = analyze_workload(workload, use_infeasible_paths=False)
    assert pruned.wcet_cycles <= unpruned.wcet_cycles
    benchmark(lambda: analyze_workload(workload,
                                       use_infeasible_paths=False))


def test_a7_strided_vs_plain_intervals(benchmark):
    """A7 (domain extension): strided intervals expose sparse address
    sets for scaled array accesses, trimming D-cache candidate lines
    and never loosening the bound."""
    from repro.analysis import StridedInterval
    from repro.lang import compile_program
    from repro.sim import run_program

    # Column walk through a 16x16 matrix: stride-64 accesses.
    SOURCE = """
    int m[256];
    int colsum;
    void main() {
        int j;
        colsum = 0;
        for (j = 0; j < 16; j = j + 1) {
            colsum = colsum + m[j * 16 + 3];
        }
    }
    """
    program = compile_program(SOURCE)
    interval = analyze_wcet(program)
    strided = analyze_wcet(program, domain=StridedInterval)
    execution = run_program(program)

    def candidate_lines(result):
        total = 0
        for item in result.dcache.all_accesses():
            values = item.access.address.possible_values(1024)
            if values is not None:
                total += len({result.dcache.config.line_of(v)
                              for v in values})
            else:
                lo, hi = item.access.byte_range
                total += (result.dcache.config.line_of(hi)
                          - result.dcache.config.line_of(lo) + 1)
        return total

    rows = [
        ["interval", candidate_lines(interval), interval.wcet_cycles],
        ["strided interval", candidate_lines(strided),
         strided.wcet_cycles],
    ]
    print_table(
        "A7: D-cache candidate lines and WCET by domain (column walk)",
        ["domain", "total candidate lines", "WCET bound"], rows)
    assert strided.wcet_cycles >= execution.cycles
    assert interval.wcet_cycles >= execution.cycles
    assert strided.wcet_cycles <= interval.wcet_cycles
    assert candidate_lines(strided) <= candidate_lines(interval)

    benchmark(lambda: analyze_wcet(program, domain=StridedInterval))


def test_a8_pipeline_model_tightness(benchmark):
    """A8 (timing-model differential over the whole corpus): the
    overlapped krisc5 model is simulator-sound and never looser than
    the additive model — overlap can only tighten — and the krisc5
    machine itself is never slower than the additive one."""
    rows = []
    strictly_tighter = 0
    names = workload_names()
    for name in names:
        workload = get_workload(name)
        program = workload.compile()
        additive = analyzed(name)
        krisc5 = analyze_workload(workload, pipeline_model="krisc5")
        sim_additive, _ = observed_worst_case(workload, program, runs=5)
        sim_krisc5, _ = observed_worst_case(workload, program,
                                            config=krisc5.config, runs=5)
        assert krisc5.wcet_cycles <= additive.wcet_cycles, (
            f"{name}: krisc5 bound {krisc5.wcet_cycles} looser than "
            f"additive {additive.wcet_cycles}")
        assert sim_additive <= additive.wcet_cycles
        assert sim_krisc5 <= krisc5.wcet_cycles, (
            f"{name}: krisc5 bound {krisc5.wcet_cycles} below observed "
            f"{sim_krisc5}")
        assert sim_krisc5 <= sim_additive, (
            f"{name}: overlapped machine slower than additive one")
        if krisc5.wcet_cycles < additive.wcet_cycles:
            strictly_tighter += 1
        rows.append([name, additive.wcet_cycles, krisc5.wcet_cycles,
                     f"{krisc5.wcet_cycles / additive.wcet_cycles:.2f}x",
                     sim_krisc5])
    print_table(
        "A8: additive vs krisc5 WCET bounds (whole corpus)",
        ["kernel", "additive", "krisc5", "ratio", "observed (krisc5)"],
        rows)
    assert strictly_tighter >= 8, (
        f"krisc5 strictly tighter on only {strictly_tighter} of "
        f"{len(names)} workloads")
    workload = get_workload("matmult")
    benchmark(lambda: analyze_workload(workload, pipeline_model="krisc5"))


def test_a8b_adverse_machine_soundness(benchmark):
    """A8b: the krisc5 bound covers randomised runs away from the
    default machine point too (tiny direct-mapped caches, larger
    penalties, state-set cap 1) — the regime that exposed the
    input-array modelling gap the `memory_ranges` annotation closes."""
    from repro.cache.config import CacheConfig, MachineConfig

    adverse = MachineConfig(
        icache=CacheConfig(num_sets=2, associativity=1, line_size=8,
                           miss_penalty=13),
        dcache=CacheConfig(num_sets=2, associativity=1, line_size=8,
                           miss_penalty=13),
        load_use_stall=2, pipeline_state_cap=1,
        pipeline_model="krisc5")
    rows = []
    for name in ("branchy", "statemate", "cnt", "lcdnum", "insertsort"):
        workload = get_workload(name)
        program = workload.compile()
        krisc5 = analyze_workload(workload, config=adverse)
        additive = analyze_workload(
            workload, config=adverse.with_model("additive"))
        observed, _ = observed_worst_case(workload, program,
                                          config=adverse, runs=40)
        assert observed <= krisc5.wcet_cycles, (
            f"{name}: adverse-config bound {krisc5.wcet_cycles} below "
            f"observed {observed}")
        assert krisc5.wcet_cycles <= additive.wcet_cycles
        rows.append([name, additive.wcet_cycles, krisc5.wcet_cycles,
                     observed])
    print_table(
        "A8b: adverse machine point (2x1x8 caches, pen 13, cap 1)",
        ["kernel", "additive", "krisc5", "observed"], rows)
    workload = get_workload("branchy")
    benchmark(lambda: analyze_workload(workload, config=adverse))


def test_a6_ilp_vs_lp_relaxation(benchmark):
    """D6: the LP relaxation is itself a sound WCET bound; integrality
    confirms it is (usually) already exact on IPET programs."""
    rows = []
    for name in ("fibcall", "matmult", "statemate", "calltree"):
        result = analyzed(name)
        rows.append([name, f"{result.path.lp_bound:.1f}",
                     result.wcet_cycles,
                     "yes" if result.path.integral else "no"])
        assert result.path.lp_bound >= result.wcet_cycles - 1e-6
    print_table(
        "A6: LP relaxation vs integer optimum",
        ["kernel", "LP bound", "ILP WCET", "relaxation integral"], rows)
    workload = get_workload("matmult")
    benchmark(lambda: analyze_workload(workload, integer=False))
