"""E1 — WCET bound soundness and tightness across the corpus.

Paper claim (Section 3): aiT "takes into account the combination of all
the different hardware characteristics while still obtaining tight
upper bounds for the WCET".  Reproduced as: for every kernel, the
verified bound covers the observed worst case over randomised inputs,
with a tightness ratio close to 1.
"""

import statistics

from _common import CORE_KERNELS, analyzed, observed, print_table
from repro.workloads import analyze_workload, get_workload


def test_e1_wcet_tightness(benchmark):
    rows = []
    ratios = []
    for name in CORE_KERNELS:
        result = analyzed(name)
        worst_cycles, _ = observed(name)
        ratio = result.wcet_cycles / worst_cycles
        ratios.append(ratio)
        rows.append([name, result.wcet_cycles, worst_cycles,
                     f"{ratio:.2f}x"])
        assert result.wcet_cycles >= worst_cycles, f"{name} unsound"

    print_table(
        "E1: verified WCET bound vs observed worst case "
        "(20 random input sets)",
        ["kernel", "WCET bound", "observed max", "ratio"], rows)
    print(f"geometric-mean tightness: "
          f"{statistics.geometric_mean(ratios):.2f}x")

    benchmark.extra_info["geomean_tightness"] = round(
        statistics.geometric_mean(ratios), 3)
    benchmark.extra_info["kernels"] = len(rows)
    workload = get_workload("fir")
    benchmark(lambda: analyze_workload(workload))
