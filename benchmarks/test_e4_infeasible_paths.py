"""E4 — infeasible-path elimination by value analysis.

Paper claim (Section 3): "Value analysis can also determine that
certain conditions always evaluate to true or always evaluate to
false.  As a consequence, certain paths controlled by such conditions
are never executed.  Therefore, their execution time does not
contribute to the overall WCET".  Reproduced as: WCET with and without
the infeasible-edge ILP constraints on kernels with statically-decided
guards (ablation D5).
"""

from _common import print_table
from repro.lang import compile_program
from repro.wcet import analyze_wcet

# Mode-guarded control task: the calibration branch is dead for the
# compiled-in mode, and value analysis can prove it.
GUARDED = """
int mode;
int out[16];
int result;

void calibrate() {
    // Straight-line burn-in sequence (no loop, so only path analysis
    // can exclude it).
    out[0] = 3;   out[1] = out[0] * out[0];
    out[2] = out[1] * 5;  out[3] = out[2] * out[1];
    out[4] = out[3] * 7;  out[5] = out[4] * out[3];
    out[6] = out[5] * 9;  out[7] = out[6] * out[5];
    out[8] = out[7] * 11; out[9] = out[8] * out[7];
    out[10] = out[9] * 13; out[11] = out[10] * out[9];
    out[12] = out[11] * 15; out[13] = out[12] * out[11];
    out[14] = out[13] * 17; out[15] = out[14] * out[13];
}

void normal() {
    int i;
    for (i = 0; i < 4; i = i + 1) {
        out[i] = i + 1;
    }
}

void main() {
    mode = 1;
    if (mode == 0) {
        calibrate();
    } else {
        normal();
    }
    result = out[0];
}
"""

CLAMP = """
int r;
void main() {
    int x = 25;
    int acc = 0;
    int i;
    for (i = 0; i < 10; i = i + 1) {
        if (x > 100) {          // never true: x is 25
            acc = acc + x * x * x;
        }
        acc = acc + x;
    }
    r = acc;
}
"""


def test_e4_infeasible_paths(benchmark):
    rows = []
    improvements = []
    for name, source in (("mode_guard", GUARDED), ("dead_clamp", CLAMP)):
        program = compile_program(source)
        pruned = analyze_wcet(program, use_infeasible_paths=True)
        unpruned = analyze_wcet(program, use_infeasible_paths=False)
        decided = sum(1 for outcome
                      in pruned.values.condition_outcomes.values()
                      if outcome is not None)
        improvement = unpruned.wcet_cycles / pruned.wcet_cycles
        improvements.append(improvement)
        rows.append([name, decided, len(pruned.values.infeasible_edges),
                     pruned.wcet_cycles, unpruned.wcet_cycles,
                     f"{improvement:.2f}x"])
    print_table(
        "E4: WCET with/without infeasible-path elimination",
        ["program", "decided conds", "dead edges", "WCET pruned",
         "WCET unpruned", "improvement"], rows)

    assert all(i >= 1.0 for i in improvements)
    assert max(improvements) > 1.2

    benchmark.extra_info["max_improvement"] = round(max(improvements), 2)
    program = compile_program(GUARDED)
    benchmark(lambda: analyze_wcet(program, use_infeasible_paths=True))
