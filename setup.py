from setuptools import find_packages, setup

setup(
    name="repro-wcet-date05",
    version="0.5.0",
    description="WCET and stack-usage verification by abstract "
                "interpretation (DATE 2005 reproduction)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # The sparse ILP engine (repro/ilp/) imports numpy unconditionally.
    install_requires=["numpy"],
    extras_require={
        # Everything the test suite needs, on every CI matrix leg:
        # hypothesis drives the fuzz matrices in
        # tests/test_random_programs.py and tests/test_ilp_sparse.py.
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
