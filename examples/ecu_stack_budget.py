"""Sizing the shared stack of an ECU running multiple OSEK tasks.

Paper Section 2: per-task worst-case stack bounds from StackAnalyzer
feed "an automated overall stack usage analysis for all tasks running
on one Electronic Control Unit" (reference [3]).  This example
compiles three control tasks, bounds each task's stack statically, and
derives the whole-system bound under priority-preemptive scheduling —
showing the memory saved versus the naive sum.

Run:  python examples/ecu_stack_budget.py
"""

from repro.lang import compile_program
from repro.stack import TaskSpec, analyze_stack, analyze_system_stack

# A 1 kHz current-control loop: shallow, highest priority.
CURRENT_LOOP = """
int setpoint;
int measurement;
int command;

void main() {
    int error = setpoint - measurement;
    int p = error * 12;
    int clamped = p >> 4;
    if (clamped > 255) { clamped = 255; }
    if (clamped < -255) { clamped = 0 - 255; }
    command = clamped;
}
"""

# A 100 Hz speed controller with a filter call chain: deeper stack.
SPEED_LOOP = """
int history[8];
int target;
int speed_cmd;

int smooth() {
    int local[8];
    int i;
    for (i = 0; i < 8; i = i + 1) { local[i] = history[i]; }
    int acc = 0;
    for (i = 0; i < 8; i = i + 1) { acc = acc + local[i]; }
    return acc >> 3;
}

int control(int sp) {
    int measured = smooth();
    return (sp - measured) * 3;
}

void main() {
    speed_cmd = control(target);
}
"""

# A 10 Hz diagnostics task: deepest call tree, lowest priority.
DIAGNOSTICS = """
int log[16];
int status;

int checksum(int from, int to) {
    int buf[16];
    int i;
    for (i = from; i < to; i = i + 1) { buf[i] = log[i] ^ 0x5A; }
    int acc = 0;
    for (i = from; i < to; i = i + 1) { acc = acc + buf[i]; }
    return acc;
}

int scan() {
    int low = checksum(0, 8);
    int high = checksum(8, 16);
    return low ^ high;
}

void main() {
    status = scan();
}
"""


# A second background task: same priority level as diagnostics, so
# OSEK guarantees the two never preempt each other.
LOGGER = """
int ring[32];
int cursor;

void main() {
    int frame[24];
    int i;
    for (i = 0; i < 24; i = i + 1) { frame[i] = i ^ cursor; }
    int acc = 0;
    for (i = 0; i < 24; i = i + 1) { acc = acc + frame[i]; }
    ring[cursor & 31] = acc;
    cursor = cursor + 1;
}
"""


def main():
    tasks = []
    for name, source, priority in (
            ("diagnostics", DIAGNOSTICS, 1),
            ("logger", LOGGER, 1),
            ("speed_loop", SPEED_LOOP, 5),
            ("current_loop", CURRENT_LOOP, 10)):
        program = compile_program(source)
        bound = analyze_stack(program)
        print(f"{name:>13}: verified stack bound {bound.bound:4d} bytes "
              f"(priority {priority})")
        tasks.append(TaskSpec(name, bound.bound, priority=priority))

    system = analyze_system_stack(tasks, kernel_overhead_per_preemption=16)
    print()
    print(system.summary())
    print(f"reserving the naive sum would waste {system.savings} bytes")


if __name__ == "__main__":
    main()
