"""Quickstart: verify timing and stack bounds of a small task.

Assembles a KRISC task, runs the full aiT-style analysis pipeline
(CFG reconstruction -> value analysis -> loop bounds -> cache ->
pipeline -> IPET), runs StackAnalyzer, and validates both bounds
against concrete simulation.

Run:  python examples/quickstart.py
"""

from repro.isa import assemble
from repro.report import wcet_report
from repro.sim import run_program
from repro.stack import analyze_stack
from repro.wcet import analyze_wcet

SOURCE = """
; Compute sum of squares 1..N and store it, with a helper call.
main:
    MOVI R4, #1          ; i
    MOVI R5, #0          ; acc
loop:
    MOV R0, R4
    BL square
    ADD R5, R5, R0
    ADDI R4, R4, #1
    CMPI R4, #20
    BLE loop
    LDA R1, result
    STR R5, [R1]
    HALT

square:
    PUSH {R4}
    MOV R4, R0
    MUL R0, R4, R4
    POP {R4}
    RET

.data
result: .word 0
"""


def main():
    program = assemble(SOURCE)

    # Static analysis: bounds valid for every run.
    wcet = analyze_wcet(program)
    stack = analyze_stack(program)

    # Ground truth: one concrete run on the simulated hardware.
    execution = run_program(program)

    print(wcet_report(wcet, stack))
    print(f"simulated run:   {execution.cycles} cycles, "
          f"{execution.max_stack_usage} bytes of stack")
    print(f"verified bounds: {wcet.wcet_cycles} cycles, "
          f"{stack.bound} bytes of stack")
    assert wcet.wcet_cycles >= execution.cycles
    assert stack.bound >= execution.max_stack_usage
    print("soundness check passed: bounds cover the observed run")

    # Tighter: VIVU context sensitivity peels the first iteration of
    # every loop into its own context (--context-policy vivu on the
    # CLI), so steady-state iterations keep their cache hits.
    from repro.cfg import VIVU
    peeled = analyze_wcet(program, context_policy=VIVU(peel=1))
    print(f"VIVU(peel=1):    {peeled.wcet_cycles} cycles "
          f"(vs {wcet.wcet_cycles} with full call strings)")
    assert peeled.wcet_cycles >= execution.cycles


if __name__ == "__main__":
    main()
