"""Choosing cache hardware from verified WCET bounds.

Paper Section 4: "Precise stack usage and timing predictions enable
the most cost-efficient hardware to be chosen."  This example sweeps
I/D-cache sizes for a filter kernel and prints the verified WCET under
each configuration, exposing the knee where more cache stops paying.

Run:  python examples/hardware_sizing.py
"""

from repro.cache.config import CacheConfig, MachineConfig
from repro.workloads import analyze_workload, get_workload


def main():
    workload = get_workload("fir")
    print(f"workload: {workload.name} ({workload.description})\n")
    print(f"{'sets':>5} {'assoc':>6} {'capacity':>9} {'WCET bound':>11}")
    for num_sets, assoc in ((1, 1), (2, 1), (4, 1), (4, 2), (8, 2),
                            (16, 2), (16, 4), (32, 4)):
        cache = CacheConfig(num_sets=num_sets, associativity=assoc,
                            line_size=16, miss_penalty=10)
        config = MachineConfig(icache=cache, dcache=cache)
        result = analyze_workload(workload, config=config)
        print(f"{num_sets:>5} {assoc:>6} {cache.capacity:>8}B "
              f"{result.wcet_cycles:>11}")
    print("\nEach row is a verified bound: safe to provision against.")


if __name__ == "__main__":
    main()
