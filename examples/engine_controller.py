"""Verifying an automotive-style control task written in mini-C.

The paper's motivating domain is embedded control software ("e.g., in
the automotive industries").  This example compiles a fixed-point
engine-map interpolation + filter task from mini-C to a KRISC binary,
verifies its WCET and stack bound, prints the analysis report, and
exports the annotated control-flow graph as DOT (the stand-in for
aiT's aiSee visualisation).

Run:  python examples/engine_controller.py [out.dot]
"""

import sys

from repro.lang import compile_program
from repro.report import wcet_dot, wcet_report, worst_case_path_table
from repro.sim import run_program
from repro.stack import analyze_stack
from repro.wcet import analyze_wcet

CONTROL_TASK = """
// 8x8 engine map (fixed point, scaled by 256).
int engine_map[64] = {
     10,  12,  14,  17,  20,  24,  28,  33,
     12,  14,  17,  20,  24,  28,  33,  39,
     14,  17,  20,  24,  28,  33,  39,  46,
     17,  20,  24,  28,  33,  39,  46,  54,
     20,  24,  28,  33,  39,  46,  54,  63,
     24,  28,  33,  39,  46,  54,  63,  74,
     28,  33,  39,  46,  54,  63,  74,  87,
     33,  39,  46,  54,  63,  74,  87, 102
};
int rpm_samples[16] = {3100, 3180, 3240, 3300, 3350, 3420, 3460, 3520,
                       3590, 3610, 3640, 3700, 3750, 3790, 3820, 3850};
int load_input;
int fuel_command;
int filtered_rpm;

// 4-tap moving average, shift instead of divide.
int filter_rpm() {
    int acc = 0;
    int i;
    for (i = 12; i < 16; i = i + 1) {
        acc = acc + rpm_samples[i];
    }
    return acc >> 2;
}

// Bilinear-ish interpolation on the map (shift-scaled).
int lookup(int rpm, int load) {
    int row = (rpm >> 9) & 7;     // rpm / 512, clamped to 3 bits
    int col = load & 7;
    int base = engine_map[row * 8 + col];
    int frac = rpm & 511;
    int next;
    if (col < 7) {
        next = engine_map[row * 8 + col + 1];
    } else {
        next = base;
    }
    return base + (((next - base) * frac) >> 9);
}

void main() {
    filtered_rpm = filter_rpm();
    load_input = 5;
    int cmd = lookup(filtered_rpm, load_input);
    // Rate limiter: clamp command slew.
    if (cmd > 90) { cmd = 90; }
    if (cmd < 5)  { cmd = 5; }
    fuel_command = cmd;
}
"""


def main():
    program = compile_program(CONTROL_TASK)
    wcet = analyze_wcet(program)
    stack = analyze_stack(program)
    execution = run_program(program)

    print(wcet_report(wcet, stack))
    print("worst-case execution profile:")
    print(worst_case_path_table(wcet))
    print(f"observed run: {execution.cycles} cycles "
          f"(bound {wcet.wcet_cycles}; "
          f"tightness {wcet.wcet_cycles / execution.cycles:.2f}x)")
    assert wcet.wcet_cycles >= execution.cycles

    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as handle:
            handle.write(wcet_dot(wcet))
        print(f"annotated CFG written to {sys.argv[1]} "
              "(render with: dot -Tsvg)")


if __name__ == "__main__":
    main()
