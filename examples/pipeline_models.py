#!/usr/bin/env python
"""Comparing the two machine timing models on one workload.

Analyses the ``matmult`` kernel under the additive model (every
instruction pays the sum of its worst-case components) and the
overlapped ``krisc5`` 5-stage pipeline model (abstract pipeline-state
analysis), then simulates the same binary under both machines to show
that each bound covers its machine and that overlap only tightens.

Run with::

    PYTHONPATH=src python examples/pipeline_models.py [workload]
"""

import sys

from repro.workloads import (analyze_workload, get_workload,
                             observed_worst_case)


def main() -> int:
    name = sys.argv[1] if len(sys.argv) > 1 else "matmult"
    workload = get_workload(name)
    program = workload.compile()

    additive = analyze_workload(workload)
    krisc5 = analyze_workload(workload, pipeline_model="krisc5")

    sim_additive, _ = observed_worst_case(workload, program, runs=10)
    sim_krisc5, _ = observed_worst_case(workload, program,
                                        config=krisc5.config, runs=10)

    print(f"workload: {name} — {workload.description}")
    print(f"{'model':<10} {'WCET bound':>11} {'observed worst':>15} "
          f"{'slack':>7}")
    for label, result, observed in (
            ("additive", additive, sim_additive),
            ("krisc5", krisc5, sim_krisc5)):
        slack = result.wcet_cycles / observed
        print(f"{label:<10} {result.wcet_cycles:>11} {observed:>15} "
              f"{slack:>6.2f}x")

    saved = additive.wcet_cycles - krisc5.wcet_cycles
    print(f"\nfetch/execute overlap tightens the verified bound by "
          f"{saved} cycles "
          f"({100 * saved / additive.wcet_cycles:.1f}%).")
    states = krisc5.timing.state_stats
    print(f"pipeline-state analysis tracked at most "
          f"{states.peak_states} states per block "
          f"({states.cap_merges} cap merges at cap "
          f"{krisc5.config.pipeline_state_cap}).")

    assert sim_additive <= additive.wcet_cycles
    assert sim_krisc5 <= krisc5.wcet_cycles
    assert krisc5.wcet_cycles <= additive.wcet_cycles
    print("soundness: both bounds cover their machine; "
          "krisc5 ≤ additive.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
