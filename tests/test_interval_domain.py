"""Unit and property tests for the interval domain."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import INT_MAX, INT_MIN, Interval, to_signed


def ivl(lo, hi):
    return Interval(lo, hi)


small_ints = st.integers(min_value=-1000, max_value=1000)
word_ints = st.integers(min_value=INT_MIN, max_value=INT_MAX)


@st.composite
def intervals(draw):
    a = draw(small_ints)
    b = draw(small_ints)
    return Interval(min(a, b), max(a, b))


class TestLattice:
    def test_const(self):
        value = Interval.const(5)
        assert value.as_constant() == 5
        assert value.contains(5)
        assert not value.contains(6)

    def test_const_wraps_to_signed(self):
        assert Interval.const(0xFFFFFFFF).as_constant() == -1

    def test_top_bottom(self):
        assert Interval.top().is_top()
        assert Interval.bottom().is_bottom()
        assert not Interval.top().is_bottom()

    def test_join(self):
        assert ivl(0, 5).join(ivl(3, 10)) == ivl(0, 10)
        assert ivl(0, 5).join(Interval.bottom()) == ivl(0, 5)

    def test_meet(self):
        assert ivl(0, 5).meet(ivl(3, 10)) == ivl(3, 5)
        assert ivl(0, 2).meet(ivl(5, 9)).is_bottom()

    def test_leq(self):
        assert ivl(2, 3).leq(ivl(0, 5))
        assert not ivl(0, 5).leq(ivl(2, 3))
        assert Interval.bottom().leq(ivl(1, 1))

    @given(intervals(), intervals())
    def test_join_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert a.leq(joined)
        assert b.leq(joined)

    @given(intervals(), intervals())
    def test_meet_is_lower_bound(self, a, b):
        met = a.meet(b)
        assert met.leq(a)
        assert met.leq(b)

    @given(intervals(), intervals(), small_ints)
    def test_join_soundness(self, a, b, x):
        if a.contains(x) or b.contains(x):
            assert a.join(b).contains(x)

    @given(intervals(), intervals())
    def test_widen_is_upper_bound(self, a, b):
        widened = a.widen(b)
        assert a.leq(widened)
        assert b.leq(widened)

    def test_widening_terminates(self):
        current = ivl(0, 0)
        for i in range(100):
            previous = current
            current = current.widen(ivl(0, i + 1))
        assert current == previous  # stabilised long before 100 steps

    def test_widening_with_thresholds(self):
        widened = ivl(0, 3).widen(ivl(0, 4), thresholds=(10, 100))
        assert widened == ivl(0, 10)

    def test_narrowing_recovers_bound(self):
        widened = ivl(0, INT_MAX)
        narrowed = widened.narrow(ivl(0, 9))
        assert narrowed == ivl(0, 9)


class TestArithmetic:
    def test_add(self):
        assert ivl(1, 2).add(ivl(10, 20)) == ivl(11, 22)

    def test_sub(self):
        assert ivl(1, 2).sub(ivl(10, 20)) == ivl(-19, -8)

    def test_mul_signs(self):
        assert ivl(-2, 3).mul(ivl(4, 5)) == ivl(-10, 15)

    def test_overflow_goes_top(self):
        assert ivl(INT_MAX, INT_MAX).add(Interval.const(1)).is_top()

    def test_shl(self):
        assert ivl(1, 2).shl(Interval.const(4)) == ivl(16, 32)

    def test_shr_nonnegative(self):
        assert ivl(16, 64).shr(Interval.const(2)) == ivl(4, 16)

    def test_asr_negative(self):
        assert ivl(-8, 8).asr(Interval.const(1)) == ivl(-4, 4)

    def test_bitand_nonnegative_bound(self):
        result = ivl(0, 100).bitand(ivl(0, 15))
        assert result.lo >= 0 and result.hi <= 15

    def test_bitand_constants(self):
        assert Interval.const(0b1100).bitand(Interval.const(0b1010)) \
            == Interval.const(0b1000)

    @given(intervals(), intervals(), small_ints, small_ints)
    @settings(max_examples=300)
    def test_arithmetic_soundness(self, a, b, x, y):
        """Galois soundness: concrete op result lies in abstract result."""
        if not (a.contains(x) and b.contains(y)):
            return
        assert a.add(b).contains(to_signed(x + y))
        assert a.sub(b).contains(to_signed(x - y))
        assert a.mul(b).contains(to_signed(x * y))
        assert a.bitand(b).contains(to_signed(x & y))
        assert a.bitor(b).contains(to_signed(x | y))
        assert a.bitxor(b).contains(to_signed(x ^ y))

    @given(intervals(), st.integers(min_value=0, max_value=31), small_ints)
    def test_shift_soundness(self, a, shift, x):
        if not a.contains(x):
            return
        amount = Interval.const(shift)
        assert a.shl(amount).contains(to_signed(x << shift))
        assert a.asr(amount).contains(to_signed(x >> shift))
        unsigned = (x & 0xFFFFFFFF) >> shift
        assert a.shr(amount).contains(to_signed(unsigned))


class TestComparisons:
    def test_refine_lt(self):
        assert ivl(0, 10).refine_signed("<", Interval.const(5)) == ivl(0, 4)

    def test_refine_ge(self):
        assert ivl(0, 10).refine_signed(">=", Interval.const(5)) \
            == ivl(5, 10)

    def test_refine_eq(self):
        assert ivl(0, 10).refine_signed("==", Interval.const(7)) \
            == Interval.const(7)

    def test_refine_ne_shrinks_endpoint(self):
        assert ivl(0, 10).refine_signed("!=", Interval.const(0)) \
            == ivl(1, 10)
        assert ivl(0, 10).refine_signed("!=", Interval.const(10)) \
            == ivl(0, 9)
        assert ivl(0, 10).refine_signed("!=", Interval.const(5)) \
            == ivl(0, 10)

    def test_refine_to_bottom(self):
        assert ivl(5, 10).refine_signed("<", Interval.const(5)).is_bottom()

    def test_compare_definite(self):
        assert ivl(0, 4).compare_signed("<", Interval.const(5)) is True
        assert ivl(5, 9).compare_signed("<", Interval.const(5)) is False
        assert ivl(0, 9).compare_signed("<", Interval.const(5)) is None

    def test_compare_eq(self):
        assert Interval.const(3).compare_signed(
            "==", Interval.const(3)) is True
        assert ivl(0, 2).compare_signed("==", ivl(5, 6)) is False
        assert ivl(0, 5).compare_signed("==", ivl(5, 6)) is None

    @given(intervals(), intervals(), small_ints,
           st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    @settings(max_examples=300)
    def test_refinement_soundness(self, a, b, x, op):
        """Values satisfying the predicate survive refinement."""
        if not a.contains(x):
            return
        import operator
        ops = {"<": operator.lt, "<=": operator.le, ">": operator.gt,
               ">=": operator.ge, "==": operator.eq, "!=": operator.ne}
        lo, hi = b.signed_bounds()
        if b.is_bottom():
            return
        for y in {lo, hi}:
            if b.contains(y) and ops[op](x, y):
                assert a.refine_signed(op, b).contains(x)
                break

    @given(intervals(), intervals(),
           st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    @settings(max_examples=300)
    def test_compare_decisions_are_correct(self, a, b, op):
        """A definite answer must match every pair of concretisations."""
        import operator
        ops = {"<": operator.lt, "<=": operator.le, ">": operator.gt,
               ">=": operator.ge, "==": operator.eq, "!=": operator.ne}
        decision = a.compare_signed(op, b)
        if decision is None or a.is_bottom() or b.is_bottom():
            return
        for x in {a.lo, a.hi}:
            for y in {b.lo, b.hi}:
                assert ops[op](x, y) == decision
