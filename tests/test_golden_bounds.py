"""Golden-bounds regression suite.

PRs 2-4 claimed "bounds bit-identical on all 19 workloads x {full,
klimited, vivu} x {additive, krisc5}" in commit messages; this suite
turns that claim into an executed test.  ``tests/golden_bounds.json``
records the WCET bound of every matrix point; the full sweep runs once
per session through the batch engine (sharing phase artifacts
in-memory) and every point is asserted bit-identical.

Regenerate after an intentional bound change with::

    PYTHONPATH=src python -m pytest tests/test_golden_bounds.py \
        --update-golden

(equivalently: ``python -m repro batch --write-golden
tests/golden_bounds.json``).
"""

import os

import pytest

from repro.batch import (compare_rows, expand_matrix, flatten_golden,
                         golden_from_rows, load_golden, run_sweep,
                         save_golden)
from repro.workloads.suite import workload_names

GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "golden_bounds.json")


@pytest.fixture(scope="module")
def sweep():
    """One full-matrix sweep, shared by every test in the module."""
    return run_sweep(expand_matrix("all:all:all"), parallel=1)


@pytest.fixture(scope="module")
def golden(request, sweep):
    if request.config.getoption("--update-golden"):
        save_golden(GOLDEN_PATH, golden_from_rows(sweep.rows))
    return load_golden(GOLDEN_PATH)


def test_sweep_has_no_failed_jobs(sweep):
    assert sweep.errors == []


def test_golden_covers_the_full_matrix(golden):
    expected = {(spec.workload, spec.policy, spec.model)
                for spec in expand_matrix("all:all:all")}
    assert set(flatten_golden(golden)) == expected


@pytest.mark.parametrize("workload", workload_names())
def test_bounds_bit_identical(workload, sweep, golden):
    rows = [row for row in sweep.rows if row["workload"] == workload]
    assert len(rows) == 6          # 3 policies x 2 models
    assert compare_rows(rows, golden) == []


def test_krisc5_never_looser_than_additive(golden):
    """The S6 model-tightness obligation, stated over the golden set
    itself so it keeps holding for whatever bounds get recorded."""
    for workload, policies in golden.items():
        for policy, models in policies.items():
            assert models["krisc5"] <= models["additive"], \
                f"{workload}/{policy}"
